//! Offline drop-in subset of the `proptest 1.x` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its property tests actually use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * strategies for integer ranges, tuples, [`Just`], and `&str`
//!   treated as a (small-subset) regex — character classes and
//!   `{m,n}` / `{m}` / `?` / `+` / `*` quantifiers,
//! * [`collection::vec`] and [`collection::btree_map`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! There is **no shrinking**: a failing case is reported with the seed
//! case index so it can be replayed (the generators are fully
//! deterministic per test-function name). That trades debugging
//! convenience for zero dependencies; the properties themselves are
//! checked just as strictly.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Deterministic test RNG (splitmix64 core — self-contained so this
// crate needs no dependencies).
// ---------------------------------------------------------------------

/// Deterministic RNG driving every strategy.
#[derive(Clone, Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    fn from_seed(seed: u64) -> Self {
        TestRunner {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Builds the deterministic runner for a named test.
pub fn runner_for(test_name: &str) -> TestRunner {
    // FNV-1a over the test name: same test, same stream, every run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRunner::from_seed(h)
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps the full-workspace suite
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 96 }
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |runner| self.generate(runner)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRunner) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.gen)(runner)
    }
}

/// Uniform choice between boxed alternatives (the [`prop_oneof!`]
/// backend).
#[derive(Clone)]
pub struct UnionStrategy<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> UnionStrategy<T> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        UnionStrategy { options }
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = runner.below(self.options.len() as u64) as usize;
        self.options[i].generate(runner)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let drawn = (runner.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(drawn) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

// ---------------------------------------------------------------------
// String strategies: a small regex subset
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RegexAtom {
    /// A set of candidate characters (from a class or a literal).
    Chars(Vec<char>),
}

#[derive(Clone, Debug)]
struct RegexPiece {
    atom: RegexAtom,
    min: u32,
    max: u32,
}

/// Parses the supported regex subset: literals, `[...]` classes with
/// ranges, and `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers (unbounded
/// quantifiers are capped at 8 repetitions).
fn parse_regex_subset(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unclosed character class in {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                RegexAtom::Chars(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 2;
                RegexAtom::Chars(vec![c])
            }
            c => {
                i += 1;
                RegexAtom::Chars(vec![c])
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|off| i + off)
                        .unwrap_or_else(|| panic!("unclosed quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, runner: &mut TestRunner) -> String {
        let pieces = parse_regex_subset(self);
        let mut out = String::new();
        for piece in &pieces {
            let reps = piece.min + runner.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..reps {
                match &piece.atom {
                    RegexAtom::Chars(set) => {
                        assert!(!set.is_empty(), "empty character class in {self:?}");
                        out.push(set[runner.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------

/// Strategies producing collections of strategy-generated elements.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + runner.below(span) as usize;
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// See [`btree_map`].
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates `BTreeMap`s with up to `size` entries (duplicate keys
    /// collapse, as in upstream proptest).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, runner: &mut TestRunner) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + runner.below(span) as usize;
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.generate(runner), self.value.generate(runner));
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategy arms (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure, aborting
/// the whole test — there is no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::runner_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __runner);)+
                let __check = || -> () { $body };
                __check();
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10u8) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The customary glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut runner = crate::runner_for("regex_subset_shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut runner);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let t = Strategy::generate(&"[a-z]{1,5}", &mut runner);
            assert!((1..=5).contains(&t.len()), "{t:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut runner = crate::runner_for("oneof_hits_every_arm");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strategy.generate(&mut runner) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: args bind, ranges stay in bounds.
        #[test]
        fn macro_generates_cases(x in 0..10u8, v in collection::vec(0..100u32, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn btree_map_respects_bounds(m in collection::btree_map(0..50u8, 0..50u8, 0..4)) {
            prop_assert!(m.len() < 4);
        }
    }
}
