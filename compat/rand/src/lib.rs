//! Offline drop-in subset of the `rand 0.8` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — deterministic xoshiro256**
//!   generators,
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion (the
//!   same construction the real crate documents),
//! * [`Rng::gen_range`] over integer `Range` / `RangeInclusive`,
//! * [`Rng::gen_bool`].
//!
//! Determinism, not statistical quality, is the contract here: every
//! seeded generator produces the same stream on every platform, which
//! is what the test suites and workload generators rely on. The
//! concrete streams differ from upstream `rand`'s — no test in this
//! workspace asserts exact values drawn from a seed, only properties
//! of the resulting structures.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (e.g. `rng.gen_range(0..10)`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_range_for_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let drawn = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(drawn) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                // span == 0 means the range covers the whole type.
                let drawn = if span == 0 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as u128).wrapping_add(drawn) as $t
            }
        }
    )*};
}

impl_sample_range_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** state, seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Xoshiro256 { s }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator (deterministic xoshiro256** here).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A small fast generator (same engine as [`StdRng`] in this stub).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
            let z = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
