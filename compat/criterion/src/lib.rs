//! Offline drop-in subset of the `criterion 0.5` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_with_input` /
//! `bench_function` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — each benchmark is warmed up,
//! then timed for `sample_size` samples, and the mean / min / max are
//! printed. No HTML reports, no outlier analysis. The goal is a
//! runnable `cargo bench` that produces comparable wall-clock numbers
//! in this sandbox, not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording `target_samples` samples.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up + calibration: aim for samples of >= ~1ms or 1 iter,
        // whichever is larger.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / one.as_nanos()).max(1) as u64;
        self.iters_per_sample = per_sample;

        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<60} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let min = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().map(per_iter).fold(0.0f64, f64::max);
        println!(
            "{id:<60} mean {:>12} min {:>12} max {:>12}",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `routine` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut routine = routine;
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_size,
        };
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.into().id));
        self
    }

    /// Runs `routine` without an input value.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut routine = routine;
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into().id));
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function(&mut self, id: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut routine = routine;
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: 10,
        };
        routine(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn group_runs() {
        smoke_group();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
