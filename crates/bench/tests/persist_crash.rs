//! The headline durability test: `kill -9` a writer process mid-commit
//! loop, reopen the data directory, and check recovery lands on the
//! last fully-committed epoch with answers identical to an in-memory
//! reference. Uses the `store_recovery` binary's `--crash-writer` /
//! `--verify` modes (the same ones the CI persist-smoke stage drives).

use owql_algebra::pattern::Pattern;
use owql_store::{PersistConfig, Store, StoreOptions};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_store_recovery")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owql-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Commit `i` of the writer's deterministic workload (must match
/// `store_recovery::workload_triple`).
fn workload_triple(i: u64) -> owql_rdf::Triple {
    let s = format!("s{i}");
    let o = format!("o{}", i % 5);
    owql_rdf::Triple::new(&s, "p", &o)
}

/// Spawns the crash writer, SIGKILLs it after `min_commits` confirmed
/// commits, and returns how many commits were confirmed on stdout.
fn run_and_kill_writer(dir: &PathBuf, min_commits: u64) -> u64 {
    let mut child = Command::new(bin())
        .arg("--crash-writer")
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn crash writer");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut confirmed = 0u64;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("read writer stdout");
        if let Some(n) = line.strip_prefix("committed ") {
            confirmed = n.parse().expect("epoch number");
        }
        if confirmed >= min_commits {
            break;
        }
    }
    // SIGKILL: no destructors, no flushes — the real crash.
    child.kill().expect("kill -9 writer");
    child.wait().expect("reap writer");
    confirmed
}

#[test]
fn killed_writer_recovers_to_last_committed_epoch() {
    let dir = tmp_dir("kill9");
    let confirmed = run_and_kill_writer(&dir, 50);
    assert!(confirmed >= 50, "writer confirmed {confirmed} commits");

    // Reopen in-process and differential-check against a reference
    // that replays exactly the recovered epoch's workload prefix.
    let store = Store::open(
        &dir,
        StoreOptions::default(),
        PersistConfig::default()
            .no_fsync()
            .checkpoint_every(0)
            .inline_indexer(),
    )
    .expect("reopen after crash");
    let epoch = store.epoch();
    // Every confirmed commit was fsync'd before its epoch published;
    // the kill may have cut an in-flight commit whose record was
    // already durable, so epoch can exceed `confirmed` — never trail it.
    assert!(
        epoch >= confirmed,
        "recovered epoch {epoch} lost confirmed commit {confirmed}"
    );

    let reference = Store::new();
    for i in 1..=epoch {
        reference.insert(workload_triple(i));
    }
    assert_eq!(store.to_graph(), reference.to_graph(), "graphs agree");
    for probe in [
        Pattern::t("?x", "p", "?y"),
        Pattern::t("?x", "p", "o2"),
        Pattern::t("?x", "p", "?y").and(Pattern::t("?z", "p", "?y")),
    ] {
        assert_eq!(
            store.query(&probe),
            reference.query(&probe),
            "answers diverge for {probe}"
        );
    }
    drop(store);

    // The shipped verifier agrees (this is what CI runs).
    let status = Command::new(bin())
        .arg("--verify")
        .arg(&dir)
        .status()
        .expect("run verifier");
    assert!(status.success(), "--verify rejected the recovered store");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash → recover → keep writing → crash again: epochs stay monotone
/// across generations of writers and nothing committed is ever lost.
#[test]
fn repeated_crashes_accumulate_monotonically() {
    let dir = tmp_dir("kill9-repeat");
    let mut last_epoch = 0u64;
    for round in 0..3 {
        let confirmed = run_and_kill_writer(&dir, last_epoch + 20);
        assert!(confirmed >= last_epoch + 20, "round {round}");
        let store = Store::open(
            &dir,
            StoreOptions::default(),
            PersistConfig::default()
                .no_fsync()
                .checkpoint_every(0)
                .inline_indexer(),
        )
        .expect("reopen");
        let epoch = store.epoch();
        assert!(
            epoch >= confirmed && epoch > last_epoch,
            "round {round}: epoch {epoch}, confirmed {confirmed}, last {last_epoch}"
        );
        assert_eq!(store.len() as u64, epoch, "one distinct triple per epoch");
        last_epoch = epoch;
    }
    let status = Command::new(bin())
        .arg("--verify")
        .arg(&dir)
        .status()
        .expect("run verifier");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
