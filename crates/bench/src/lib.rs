//! Shared workloads and query suites for the benchmark harness and the
//! `experiments` driver.
//!
//! The paper is a theory paper: its "evaluation" is the complexity
//! landscape of Section 7 plus the worked examples. The harness makes
//! that landscape *measurable*:
//!
//! * scaling of pattern evaluation per fragment (AF / AUF / AOF / SP /
//!   USP) over growing social graphs,
//! * cost of the NS operator and of NS-elimination (Theorem 5.1
//!   blowup),
//! * OPT vs NS on the paper's motivating optional-information
//!   workloads (the Section 8 future-work question),
//! * hardness-reduction instances: evaluation cost vs source-instance
//!   size for Theorems 7.1–7.4,
//! * engine ablations (reference vs indexed, maximal-answer variants).

use owql_algebra::pattern::Pattern;
use owql_parser::parse_pattern;
use owql_rdf::generate::{social_network, university, SocialOptions, UniversityOptions};
use owql_rdf::Graph;

/// A social graph with `people` people (fixed seed, paper-Figure-2
/// shape: partial emails and birthplaces).
pub fn social(people: usize) -> Graph {
    social_network(
        SocialOptions {
            people,
            avg_follows: 4,
            email_probability: 0.5,
            birthplace_probability: 0.8,
        },
        0xBEEF,
    )
}

/// A university graph with `professors` professors across 10
/// universities (paper-Figure-3 shape).
pub fn campus(professors: usize) -> Graph {
    university(
        UniversityOptions {
            universities: 10,
            professors_per_university: professors / 10,
            email_probability: 0.5,
            second_affiliation_probability: 0.2,
        },
        0xFACE,
    )
}

/// The per-fragment query suite used by the `eval_fragments` bench and
/// experiment E11: one representative query per fragment of the
/// paper's hierarchy, all over the social-graph vocabulary.
pub fn fragment_suite() -> Vec<(&'static str, Pattern)> {
    let q = |text: &str| parse_pattern(text).expect("suite query parses");
    vec![
        (
            "AF (conjunctive)",
            q("((?a, follows, ?b) AND (?b, follows, ?c))"),
        ),
        (
            "AUF (monotone)",
            q("(((?p, was_born_in, Chile) UNION (?p, was_born_in, Belgium)) AND (?p, email, ?e))"),
        ),
        (
            "AOF well-designed",
            q("(((?p, was_born_in, Chile) OPT (?p, email, ?e)) OPT (?p, name, ?n))"),
        ),
        (
            "SP (simple: NS of AUF)",
            q("NS(((?p, was_born_in, Chile) UNION \
                ((?p, was_born_in, Chile) AND (?p, email, ?e))))"),
        ),
        (
            "USP (union of simple)",
            q("(NS(((?p, was_born_in, Chile) UNION \
                 ((?p, was_born_in, Chile) AND (?p, email, ?e)))) UNION \
               NS(((?p, was_born_in, Belgium) UNION \
                 ((?p, was_born_in, Belgium) AND (?p, name, ?n)))))"),
        ),
    ]
}

/// OPT/NS query pairs over the social vocabulary (experiment E12): the
/// same information need phrased with OPT and with NS.
pub fn opt_ns_pairs() -> Vec<(&'static str, Pattern, Pattern)> {
    let q = |text: &str| parse_pattern(text).expect("pair query parses");
    vec![
        (
            "one optional",
            q("((?p, was_born_in, Chile) OPT (?p, email, ?e))"),
            q("NS(((?p, was_born_in, Chile) UNION \
                ((?p, was_born_in, Chile) AND (?p, email, ?e))))"),
        ),
        (
            "two optionals",
            q("(((?p, name, ?n) OPT (?p, email, ?e)) OPT (?p, was_born_in, ?c))"),
            q(
                "NS((((?p, name, ?n) UNION ((?p, name, ?n) AND (?p, email, ?e))) UNION \
                (((?p, name, ?n) AND (?p, was_born_in, ?c)) UNION \
                 (((?p, name, ?n) AND (?p, email, ?e)) AND (?p, was_born_in, ?c)))))",
            ),
        ),
    ]
}

/// Shared churn workload for the `store_churn` bench and driver:
/// interleaved writes and NS-query reads against a live `owql-store`.
pub mod churn {
    use crate::social;
    use owql_algebra::pattern::Pattern;
    use owql_parser::parse_pattern;
    use owql_rdf::Triple;
    use owql_store::{Store, StoreOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The read side of the workload: the paper's SP-style
    /// optional-email query under closed-world maximal answers.
    pub fn ns_query() -> Pattern {
        parse_pattern(
            "NS(((?p, was_born_in, Chile) UNION \
               ((?p, was_born_in, Chile) AND (?p, email, ?e))))",
        )
        .expect("churn query parses")
    }

    /// A store seeded with the `people`-person social graph, tuned so
    /// compaction fires a handful of times over a bench run.
    pub fn seeded_store(people: usize) -> Store {
        let store = Store::with_options(StoreOptions {
            min_compact: 256,
            compact_fraction: 0.2,
            cache_capacity: 64,
        });
        let mut tx = store.begin();
        tx.insert_graph(&social(people));
        store.commit(tx);
        store
    }

    /// Applies one write batch: `ops` interleaved inserts (new follow
    /// edges, emails, birthplaces) and deletes of existing triples.
    pub fn mutate(store: &Store, people: usize, rng: &mut StdRng, ops: usize) {
        let mut tx = store.begin();
        for _ in 0..ops {
            let a = rng.gen_range(0..people);
            let b = rng.gen_range(0..people);
            let person = format!("person{a}");
            let other = format!("person{b}");
            let t = match rng.gen_range(0..4u8) {
                0 => Triple::new(person.as_str(), "follows", other.as_str()),
                1 => {
                    let email = format!("person{a}@example.org");
                    Triple::new(person.as_str(), "email", email.as_str())
                }
                2 => Triple::new(person.as_str(), "was_born_in", "Chile"),
                _ => Triple::new(person.as_str(), "name", "Renamed"),
            };
            if rng.gen_bool(0.7) {
                tx.insert(t);
            } else {
                tx.delete(t);
            }
        }
        store.commit(tx);
    }

    /// One read/write round: a write batch followed by `reads` cached
    /// NS queries. Returns the answer count (to keep work observable).
    pub fn round(
        store: &Store,
        people: usize,
        rng: &mut StdRng,
        ops: usize,
        reads: usize,
    ) -> usize {
        mutate(store, people, rng, ops);
        let q = ns_query();
        let mut total = 0;
        for _ in 0..reads {
            total += store.query(&q).len();
        }
        total
    }

    /// A deterministic RNG for the workload.
    pub fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5702E)
    }
}

/// Shared workload for the parallel-evaluation bench, driver, and CI
/// smoke job: the large-graph UNION/NS shapes the `owql-exec` pool fans
/// out (wide UNION spines, partitionable AND-spines, big
/// subsumption-maximality inputs).
pub mod par {
    use crate::social;
    use owql_algebra::pattern::Pattern;
    use owql_rdf::Graph;

    /// The social graph sized for the parallel workload.
    pub fn graph(people: usize) -> Graph {
        social(people)
    }

    /// The headline workload: NS over a wide UNION of per-country
    /// optional-extension conjunctions — the paper's SP-fragment
    /// "maximal answers over open-world options" query at scale. The
    /// answer set layers `{p,c} ⊂ {p,c,e} ⊂ {p,c,e,n}`-style domains,
    /// so subsumption-maximality dominates evaluation.
    pub fn union_ns_query() -> Pattern {
        Pattern::union_all(country_disjuncts()).ns()
    }

    /// The same wide UNION without the NS wrapper (merge-dominated).
    pub fn wide_union_query() -> Pattern {
        Pattern::union_all(country_disjuncts())
    }

    /// A partitionable AND-spine: a two-hop follows join hung with a
    /// birthplace lookup — the candidate set fans out to thousands of
    /// bindings that the pool splits into per-worker chunks.
    pub fn spine_query() -> Pattern {
        Pattern::t("?a", "follows", "?b")
            .and(Pattern::t("?b", "follows", "?c"))
            .and(Pattern::t("?a", "was_born_in", "?x"))
    }

    fn country_disjuncts() -> Vec<Pattern> {
        let mut disjuncts = Vec::new();
        for country in ["Chile", "Belgium", "Sweden"] {
            let base = Pattern::t("?p", "was_born_in", country);
            disjuncts.push(base.clone());
            disjuncts.push(base.clone().and(Pattern::t("?p", "email", "?e")));
            disjuncts.push(base.clone().and(Pattern::t("?p", "name", "?n")));
            disjuncts.push(
                base.clone()
                    .and(Pattern::t("?p", "email", "?e"))
                    .and(Pattern::t("?p", "name", "?n")),
            );
        }
        disjuncts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_eval::{evaluate, Engine, ExecOpts};
    use owql_exec::Pool;
    use owql_rdf::GraphIndex;

    fn eval(engine: &Engine<GraphIndex>, p: &Pattern) -> owql_algebra::MappingSet {
        engine
            .run(p, &ExecOpts::seq(), &Pool::sequential())
            .expect("unlimited budget cannot time out")
            .mappings
    }

    #[test]
    fn workloads_scale_with_parameter() {
        assert!(social(50).len() < social(200).len());
        assert!(campus(50).len() < campus(200).len());
    }

    #[test]
    fn suite_queries_answer_on_their_workload() {
        let g = social(120);
        let engine = Engine::new(&g);
        for (name, p) in fragment_suite() {
            let out = eval(&engine, &p);
            assert!(!out.is_empty(), "{name} produced nothing");
            assert_eq!(out, evaluate(&p, &g), "{name}");
        }
    }

    #[test]
    fn parallel_workload_queries_answer_and_agree() {
        let g = par::graph(150);
        let engine = Engine::new(&g);
        let pool = Pool::new(4);
        for (name, q) in [
            ("union_ns", par::union_ns_query()),
            ("wide_union", par::wide_union_query()),
            ("spine", par::spine_query()),
        ] {
            let seq = eval(&engine, &q);
            assert!(!seq.is_empty(), "{name} produced nothing");
            let par = engine
                .run(&q, &ExecOpts::parallel(), &pool)
                .expect("unlimited budget cannot time out")
                .mappings;
            assert_eq!(par, seq, "{name}");
        }
    }

    /// The OPT/NS pairs in the harness are answer-identical on the
    /// workload (their mandatory sides are subsumption-free).
    #[test]
    fn opt_ns_pairs_agree() {
        let g = social(80);
        let engine = Engine::new(&g);
        for (name, opt, ns) in opt_ns_pairs() {
            assert_eq!(eval(&engine, &opt), eval(&engine, &ns), "{name}");
        }
    }
}
