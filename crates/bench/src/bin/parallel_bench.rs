//! Parallel-evaluation summary driver: runs the large-graph UNION/NS
//! workload through the sequential engine and through
//! parallel-mode `Engine::run` at 1, 2, and 8 workers, and writes
//! machine-readable results to `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p owql-bench --bin parallel_bench -- [--quick] [out.json]
//! ```
//!
//! The sequential baseline is today's sequential `Engine::run` over the same
//! store snapshot; parallel runs go through the `owql-exec` pool. Every
//! run cross-checks that the parallel answer set equals the sequential
//! one before timing is reported. `hardware_threads` records the cores
//! the container actually granted — on a single-core runner the
//! 8-worker gain comes from the parallel path's domain-grouped
//! subsumption filtering and consuming UNION merge; with real cores the
//! pool adds wall-clock scaling on top.

use owql_bench::par;
use owql_eval::ExecOpts;
use owql_exec::Pool;
use owql_obs::Profile;
use owql_store::{Store, StoreOptions};
use std::fmt::Write as _;
use std::time::Instant;

struct QueryRun {
    query: &'static str,
    answers: usize,
    sequential_ms: f64,
    /// `(workers, ms, speedup_vs_sequential)`.
    widths: Vec<(usize, f64, f64)>,
    /// Best-of-reps columnar 8-worker run, tracing off.
    columnar_untraced_ms: f64,
    /// Best-of-reps columnar 8-worker run, tracing on (native columnar
    /// tracing — no term-engine fallback).
    columnar_traced_ms: f64,
    /// One traced 8-worker run: per-operator totals, NS pruning, pool
    /// counters.
    profile: Profile,
}

struct SizeRun {
    people: usize,
    triples: usize,
    queries: Vec<QueryRun>,
}

/// Best-of-`reps` timing: the minimum observed wall clock is the
/// noise-robust estimate of what the code path costs — the artifact
/// feeds a CI gate (`scripts/check_bench.py`), and averaging lets one
/// scheduler preemption on a small runner poison a committed speedup.
fn time_ms(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut answers = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        answers = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, answers)
}

fn measure(people: usize, reps: usize) -> SizeRun {
    // Cache off: this driver measures evaluation, not cache hits (the
    // store_churn driver covers the cache).
    let store = Store::with_options(StoreOptions {
        cache_capacity: 0,
        ..StoreOptions::default()
    });
    let mut tx = store.begin();
    tx.insert_graph(&par::graph(people));
    store.commit(tx);
    let snapshot = store.snapshot();
    let engine = snapshot.engine();

    let queries: Vec<(&'static str, _)> = vec![
        ("union_ns", par::union_ns_query()),
        ("wide_union", par::wide_union_query()),
        ("spine", par::spine_query()),
    ];
    let mut out = Vec::new();
    for (name, q) in queries {
        let run = |opts: &ExecOpts, pool: &Pool| {
            engine
                .run(&q, opts, pool)
                .expect("unlimited budget cannot time out")
        };
        let seq_pool = Pool::sequential();
        let expected = run(&ExecOpts::seq(), &seq_pool).mappings;
        let (sequential_ms, answers) =
            time_ms(reps, || run(&ExecOpts::seq(), &seq_pool).mappings.len());
        let mut widths = Vec::new();
        for workers in [1usize, 2, 8] {
            let pool = Pool::new(workers);
            assert_eq!(
                run(&ExecOpts::parallel(), &pool).mappings,
                expected,
                "parallel answers diverged: {name} at {workers} workers"
            );
            let (ms, _) = time_ms(reps, || run(&ExecOpts::parallel(), &pool).mappings.len());
            widths.push((workers, ms, sequential_ms / ms));
        }
        // Tracing-overhead measurement (CI gate: traced stays within
        // 1.15x of untraced on these workloads): best-of-reps columnar
        // 8-worker runs with the recorder disabled and enabled. Both
        // legs force the columnar path so the ratio isolates the
        // recorder seam, not an engine switch.
        let pool8 = Pool::new(8);
        let untraced_opts = ExecOpts::parallel().with_columnar(true);
        let traced_opts = ExecOpts::parallel().with_columnar(true).traced();
        let (columnar_untraced_ms, _) =
            time_ms(reps, || run(&untraced_opts, &pool8).mappings.len());
        let (columnar_traced_ms, _) = time_ms(reps, || run(&traced_opts, &pool8).mappings.len());
        // One instrumented 8-worker run (outside the timed loops) for
        // the per-operator breakdown embedded in the artifact.
        let traced = run(&traced_opts, &pool8);
        assert_eq!(traced.mappings, expected, "traced answers diverged: {name}");
        out.push(QueryRun {
            query: name,
            answers,
            sequential_ms,
            widths,
            columnar_untraced_ms,
            columnar_traced_ms,
            profile: traced.profile.expect("traced run has a profile"),
        });
    }
    SizeRun {
        people,
        triples: snapshot.len(),
        queries: out,
    }
}

fn main() -> std::io::Result<()> {
    let mut quick = false;
    let mut out_path = "BENCH_parallel.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[400, 1200], 3)
    } else {
        (&[1000, 3000], 5)
    };

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // `hardware_threads` is what the container grants;
    // `owql_threads` is the OWQL_THREADS override (if any) that
    // `Pool::from_env` would honor — the two were previously conflated.
    let owql_threads = std::env::var("OWQL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let mut runs = Vec::new();
    for &people in sizes {
        let run = measure(people, reps);
        for q in &run.queries {
            let widths: Vec<String> = q
                .widths
                .iter()
                .map(|(w, ms, s)| format!("w{w}={ms:.1}ms ({s:.2}x)"))
                .collect();
            println!(
                "people={:5} {:11} answers={:6}  seq={:8.1}ms  {}  trace={:.2}x",
                run.people,
                q.query,
                q.answers,
                q.sequential_ms,
                widths.join("  "),
                q.columnar_traced_ms / q.columnar_untraced_ms.max(1e-9),
            );
        }
        runs.push(run);
    }

    let mut json = String::from("{\n  \"benchmark\": \"parallel_eval\",\n");
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    match owql_threads {
        Some(n) => {
            let _ = writeln!(json, "  \"owql_threads\": {n},");
        }
        None => json.push_str("  \"owql_threads\": null,\n"),
    }
    let _ = writeln!(
        json,
        "  \"workload\": \"large-graph UNION/NS suite over the social graph; sequential = \
         sequential Engine::run, parallel = ExecMode::Parallel via the owql-exec pool, answers \
         cross-checked equal before timing; per-query profile = one traced 8-worker run\","
    );
    let _ = writeln!(
        json,
        "  \"spine_fix\": \"partitioned AND-spines now fall back to the sequential join below \
         2 chunks of MIN_BINDINGS_PER_CHUNK=4096 candidates (profiles showed chunk dealing + \
         per-chunk dedup dominating); before: spine w2/w8 speedups 0.956/0.875 (1000 people) \
         and 0.871/0.955 (3000 people)\","
    );
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"people\": {}, \"triples\": {}, \"queries\": [",
            run.people, run.triples
        );
        for (j, q) in run.queries.iter().enumerate() {
            let _ = write!(
                json,
                "      {{\"query\": \"{}\", \"answers\": {}, \"sequential_ms\": {:.3}, \
                 \"workers\": [",
                q.query, q.answers, q.sequential_ms
            );
            for (k, (w, ms, s)) in q.widths.iter().enumerate() {
                let _ = write!(
                    json,
                    "{{\"workers\": {w}, \"ms\": {ms:.3}, \"speedup\": {s:.3}}}"
                );
                if k + 1 < q.widths.len() {
                    json.push_str(", ");
                }
            }
            let _ = write!(
                json,
                "],\n       \"columnar_untraced_ms\": {:.3}, \"columnar_traced_ms\": {:.3}, \
                 \"trace_overhead\": {:.3},",
                q.columnar_untraced_ms,
                q.columnar_traced_ms,
                q.columnar_traced_ms / q.columnar_untraced_ms.max(1e-9),
            );
            json.push_str("\n       \"profile\": {\"operators\": [");
            for (k, op) in q.profile.operators.iter().enumerate() {
                let _ = write!(
                    json,
                    "{{\"op\": \"{}\", \"count\": {}, \"rows_out\": {}}}",
                    op.kind, op.count, op.rows_out
                );
                if k + 1 < q.profile.operators.len() {
                    json.push_str(", ");
                }
            }
            let _ = write!(
                json,
                "], \"ns_candidates\": {}, \"ns_survivors\": {}, \"pool_chunks\": {}, \
                 \"pool_steals\": {}}}}}",
                q.profile.ns.candidates,
                q.profile.ns.survivors,
                q.profile.pool.chunks,
                q.profile.pool.steals
            );
            json.push_str(if j + 1 < run.queries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("    ]}");
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");
    Ok(())
}
