//! Workload exporter: writes the harness's synthetic graphs to disk in
//! the N-Triples or Turtle exchange formats, for use outside the test
//! suite (e.g. loading into another engine for comparison).
//!
//! ```text
//! cargo run -p owql-bench --bin workloads -- <out-dir> [scale]
//! ```
//!
//! Produces `social_<n>.nt`, `campus_<n>.nt`, `organizations.nt`, and
//! the paper's figure graphs (`figure_1.ttl`, ...), printing a
//! statistics line per file.

use owql_bench::{campus, social};
use owql_rdf::stats::GraphStats;
use owql_rdf::{datasets, generate, ntriples, turtle, Graph};
use std::path::Path;

fn write_graph(dir: &Path, name: &str, g: &Graph, as_turtle: bool) -> std::io::Result<()> {
    let (ext, text) = if as_turtle {
        ("ttl", turtle::write(g))
    } else {
        ("nt", ntriples::write(g))
    };
    let path = dir.join(format!("{name}.{ext}"));
    std::fs::write(&path, text)?;
    println!(
        "{}: {}",
        path.display(),
        GraphStats::of(g).to_string().lines().next().unwrap_or("")
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| "workloads".to_owned());
    let scale: usize = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(1);
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir)?;

    for people in [100 * scale, 400 * scale] {
        write_graph(dir, &format!("social_{people}"), &social(people), false)?;
    }
    for profs in [100 * scale, 400 * scale] {
        write_graph(dir, &format!("campus_{profs}"), &campus(profs), false)?;
    }
    write_graph(
        dir,
        "organizations",
        &generate::organizations(50 * scale, 200 * scale, 0xE1),
        false,
    )?;
    write_graph(dir, "figure_1", &datasets::figure_1(), true)?;
    write_graph(dir, "figure_2_g2", &datasets::figure_2_g2(), true)?;
    write_graph(dir, "figure_3", &datasets::figure_3(), true)?;
    Ok(())
}
