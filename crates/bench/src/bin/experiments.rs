//! The experiment driver: regenerates every figure, example table, and
//! complexity-landscape measurement of the paper (experiment index in
//! DESIGN.md; results recorded in EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p owql-bench --bin experiments [e1|e2|...|e12|all]`

use owql_algebra::construct::example_6_1;
use owql_algebra::pattern::Pattern;
use owql_algebra::well_designed::well_designed_aof;
use owql_bench::{campus, fragment_suite, opt_ns_pairs, social};
use owql_eval::{construct, evaluate, Engine, ExecOpts};
use owql_exec::Pool;

/// Sequential evaluation through the unified entry point.
fn eval_seq(engine: &Engine, p: &owql_algebra::Pattern) -> owql_algebra::MappingSet {
    engine
        .run(p, &ExecOpts::seq(), &Pool::sequential())
        .expect("unlimited budget cannot time out")
        .mappings
}
use owql_logic::coloring::{chromatic_number, UGraph};
use owql_logic::dpll::solve_formula;
use owql_logic::Formula;
use owql_parser::parse_pattern;
use owql_rdf::{datasets, ntriples};
use owql_theory::checks::{self, CheckOptions};
use owql_theory::reduction::{bh, construct_np, dp, pnp, sat_gadget};
use owql_theory::rewrite::ns_elimination::blowup_series;
use owql_theory::rewrite::pattern_tree::wd_to_simple;
use owql_theory::synthesis::{synthesize_aufs, SynthesisOptions, SynthesisOutcome};
use owql_theory::witness;
use std::time::Instant;

fn header(id: &str, title: &str) {
    println!("\n════════════════════════════════════════════════════════════════");
    println!("{id}: {title}");
    println!("════════════════════════════════════════════════════════════════");
}

fn print_mappings(title: &str, set: &owql_algebra::MappingSet) {
    println!("{title} ({} rows)", set.len());
    for m in set.iter_sorted() {
        println!("    {m}");
    }
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// E1 — Figure 1 + Example 2.2.
fn e1() {
    header("E1", "Figure 1 and Example 2.2 (founders/supporters query)");
    let g = datasets::figure_1();
    println!("Figure 1 graph:\n{}", ntriples::write(&g));
    let engine = Engine::new(&g);
    print_mappings(
        "⟦(?o, stands_for, sharing_rights)⟧G:",
        &eval_seq(
            &engine,
            &parse_pattern("(?o, stands_for, sharing_rights)").unwrap(),
        ),
    );
    print_mappings(
        "⟦(?p, founder, ?o)⟧G:",
        &eval_seq(&engine, &parse_pattern("(?p, founder, ?o)").unwrap()),
    );
    print_mappings(
        "⟦(?p, supporter, ?o)⟧G:",
        &eval_seq(&engine, &parse_pattern("(?p, supporter, ?o)").unwrap()),
    );
    print_mappings(
        "⟦(?p, founder, ?o) UNION (?p, supporter, ?o)⟧G:",
        &eval_seq(
            &engine,
            &parse_pattern("((?p, founder, ?o) UNION (?p, supporter, ?o))").unwrap(),
        ),
    );
    let full = parse_pattern(
        "(SELECT {?p} WHERE ((?o, stands_for, sharing_rights) AND \
          ((?p, founder, ?o) UNION (?p, supporter, ?o))))",
    )
    .unwrap();
    print_mappings("final SELECT {?p} table:", &eval_seq(&engine, &full));
}

/// E2 — Figure 2 + Example 3.1.
fn e2() {
    header(
        "E2",
        "Figure 2 and Example 3.1 (OPT: not monotone, weakly monotone)",
    );
    let p = parse_pattern("((?X, was_born_in, Chile) OPT (?X, email, ?Y))").unwrap();
    let g1 = datasets::figure_2_g1();
    let g2 = datasets::figure_2_g2();
    let out1 = evaluate(&p, &g1);
    let out2 = evaluate(&p, &g2);
    print_mappings("⟦P⟧G1:", &out1);
    print_mappings("⟦P⟧G2:", &out2);
    println!("⟦P⟧G1 ⊆ ⟦P⟧G2 (monotone)?        {}", out1.subset_of(&out2));
    println!(
        "⟦P⟧G1 ⊑ ⟦P⟧G2 (weakly monotone)? {}",
        out1.subsumed_by(&out2)
    );
    let wm = checks::weakly_monotone(&p, &CheckOptions::default());
    println!("bounded weak-monotonicity check: {wm:?}");
}

/// E3 — Example 3.3.
fn e3() {
    header(
        "E3",
        "Example 3.3 (weak-monotonicity failure + well-designedness violation)",
    );
    let p = parse_pattern(
        "((?X, was_born_in, Chile) AND ((?Y, was_born_in, Chile) OPT (?Y, email, ?X)))",
    )
    .unwrap();
    print_mappings("⟦P⟧G1:", &evaluate(&p, &datasets::figure_2_g1()));
    print_mappings("⟦P⟧G2:", &evaluate(&p, &datasets::figure_2_g2()));
    println!("well designed? {:?}", well_designed_aof(&p));
    println!(
        "bounded weak-monotonicity check: refuted = {}",
        !checks::weakly_monotone(&p, &CheckOptions::default()).holds()
    );
}

/// E4 — Theorem 3.5 witness.
fn e4() {
    header(
        "E4",
        "Theorem 3.5 witness (weakly monotone beyond well-designedness)",
    );
    let p = witness::theorem_3_5_pattern();
    println!("P = {p}");
    println!("well designed? {:?}", well_designed_aof(&p));
    print_mappings(
        "⟦P⟧{(a,b,c),(l,d,e)}:",
        &evaluate(&p, &witness::theorem_3_5_g1()),
    );
    print_mappings(
        "⟦P⟧{(a,b,c),(l,f,g)}:",
        &evaluate(&p, &witness::theorem_3_5_g2()),
    );
    print_mappings("⟦P⟧{(a,b,c)}:", &evaluate(&p, &witness::theorem_3_5_g()));
    let wm = checks::weakly_monotone(&p, &CheckOptions::default());
    println!("bounded weak-monotonicity check: {wm:?}");
    let sp = witness::theorem_3_5_sp_equivalent();
    println!("Corollary 5.5: exact SP-SPARQL equivalent:\n  {sp}");
}

/// E5 — Theorem 3.6 witness.
fn e5() {
    header(
        "E5",
        "Theorem 3.6 witness (escapes unions of well-designed patterns)",
    );
    let p = witness::theorem_3_6_pattern();
    println!("P = {p}");
    let [g1, g2, g3, g4] = witness::theorem_3_6_graphs();
    for (name, g) in [("G1", &g1), ("G2", &g2), ("G3", &g3), ("G4", &g4)] {
        print_mappings(&format!("⟦P⟧{name}:"), &evaluate(&p, g));
    }
    println!(
        "answers over G4 pairwise incompatible (Prop B.1 for AOF)? {}",
        checks::answers_pairwise_incompatible(&p, &g4)
    );
    println!(
        "bounded weak-monotonicity check holds: {}",
        checks::weakly_monotone(&p, &CheckOptions::default()).holds()
    );
    let sp = witness::theorem_3_6_sp_equivalent();
    println!("exact SP-SPARQL equivalent (one NS suffices):\n  {sp}");
}

/// E6 — FO translation cross-validation.
fn e6() {
    header(
        "E6",
        "Lemmas C.1/C.2: SPARQL→FO translation cross-validation",
    );
    use owql_theory::fo::translate::{evaluate_via_fo, translate_pattern};
    let samples = [
        "((?X, was_born_in, Chile) OPT (?X, email, ?Y))",
        "NS(((?x, a, b) UNION ((?x, a, b) AND (?x, c, ?y))))",
        "(SELECT {?x} WHERE ((?x, a, ?y) AND (?y, b, ?z)))",
    ];
    println!("{:<64} {:>9} {:>8}", "pattern", "|φ_P|", "agree");
    for text in samples {
        let p = parse_pattern(text).unwrap();
        let phi = translate_pattern(&p);
        let g = owql_rdf::generate::uniform(8, 3, 3, 3, 1).union(&datasets::figure_2_g2());
        let agree = evaluate_via_fo(&p, &g) == evaluate(&p, &g);
        println!("{:<64} {:>9} {:>8}", text, phi.size(), agree);
    }
}

/// E7 — NS elimination blowup (Theorem 5.1).
fn e7() {
    header(
        "E7",
        "Theorem 5.1: NS-elimination size blowup (nested-NS family)",
    );
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "depth", "input size", "output size", "desugared size"
    );
    for pt in blowup_series(4) {
        println!(
            "{:>6} {:>12} {:>14} {:>16}",
            pt.depth, pt.input_size, pt.output_size, pt.desugared_size
        );
    }
    println!("(sizes are AST node counts; growth is super-exponential in depth)");
}

/// E8 — Proposition 5.6: well-designed → simple patterns.
fn e8() {
    header(
        "E8",
        "Proposition 5.6: well-designed patterns as single-NS simple patterns",
    );
    let samples = [
        "((?p, was_born_in, Chile) OPT (?p, email, ?e))",
        "(((?p, name, ?n) OPT (?p, email, ?e)) OPT (?p, was_born_in, ?c))",
        "((?p, name, ?n) OPT ((?p, email, ?e) OPT (?p, follows, ?f)))",
    ];
    let g = social(150);
    let engine = Engine::new(&g);
    println!(
        "{:<66} {:>9} {:>10} {:>7}",
        "well-designed input", "disjuncts", "same ans", "answers"
    );
    for text in samples {
        let p = parse_pattern(text).unwrap();
        let simple = wd_to_simple(&p).expect("well designed");
        let Pattern::Ns(inner) = &simple else {
            unreachable!()
        };
        let same = eval_seq(&engine, &p) == eval_seq(&engine, &simple);
        println!(
            "{:<66} {:>9} {:>10} {:>7}",
            text,
            inner.disjuncts().len(),
            same,
            eval_seq(&engine, &p).len()
        );
    }
}

/// E9 — Figures 3/4 + Example 6.1.
fn e9() {
    header("E9", "Figures 3/4 and Example 6.1 (CONSTRUCT)");
    let q = example_6_1();
    let g = datasets::figure_3();
    println!("Q = {q}\n");
    print_mappings(
        "⟦pattern of Q⟧Figure3 (the µ1/µ2/µ3 table):",
        &evaluate(&q.pattern, &g),
    );
    let out = construct(&q, &g);
    println!(
        "\nans(Q, Figure 3) — the Figure 4 graph:\n{}",
        ntriples::write(&out)
    );
    println!(
        "matches Figure 4 exactly: {}",
        out == datasets::figure_4_expected()
    );
}

/// E10 — Lemma 6.3 + Proposition 6.7.
fn e10() {
    header(
        "E10",
        "Lemma 6.3 (NS invariance) and Proposition 6.7 (SELECT-free CONSTRUCT)",
    );
    use owql_theory::rewrite::construct_core::with_ns_pattern;
    use owql_theory::rewrite::select_free::construct_select_free;
    let g = campus(200);
    let q = example_6_1();
    let ns_same = construct(&q, &g) == construct(&with_ns_pattern(&q), &g);
    println!(
        "Lemma 6.3 on Example 6.1 over a {}-triple campus graph: equal = {ns_same}",
        g.len()
    );

    let aufs = owql_parser::parse_construct(
        "CONSTRUCT {(?u, employs, ?n)} WHERE \
         (SELECT {?u, ?n} WHERE ((?p, works_at, ?u) AND (?p, name, ?n)))",
    )
    .unwrap();
    let auf = construct_select_free(&aufs);
    println!(
        "Prop 6.7: AUFS query → AUF query; fragment(AUF) = {}, outputs equal = {}",
        auf.in_fragment(owql_algebra::analysis::Operators::AUF),
        construct(&aufs, &g) == construct(&auf, &g)
    );
}

/// E11 — the complexity landscape, empirically.
fn e11() {
    header("E11", "Section 7: hardness reductions, verified and timed");

    // Theorem 7.1 (DP): SAT-UNSAT instances with growing variable count.
    println!("Theorem 7.1 — Eval(SP–SPARQL), SAT-UNSAT instances:");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>10}",
        "vars", "graph", "pattern", "decide (ms)", "answer"
    );
    for n in [4usize, 6, 8, 10, 12] {
        // φ = parity-ish satisfiable chain; ψ = contradiction padded to n vars.
        let phi = Formula::conj((0..n - 1).map(|i| Formula::var(i).or(Formula::var(i + 1))));
        let psi = Formula::var(0)
            .and(Formula::var(0).not())
            .and(Formula::conj((0..n).map(Formula::var)));
        let inst = dp::sat_unsat_instance(&phi, &psi, &format!("e11dp{n}"));
        let (answer, ms) = time_ms(|| inst.instance.decide());
        println!(
            "{:>6} {:>8} {:>10} {:>12.2} {:>10}",
            n,
            inst.instance.graph.len(),
            inst.instance.pattern.size(),
            ms,
            answer
        );
        assert!(answer, "oracle: φ sat, ψ unsat");
    }

    // Theorem 7.2 (BH2k): chromatic membership.
    println!("\nTheorem 7.2 — Eval(USP–SPARQLk), chromatic-number membership:");
    println!(
        "{:>18} {:>4} {:>10} {:>9} {:>12} {:>7}",
        "graph", "χ", "M", "disjuncts", "decide (ms)", "answer"
    );
    let cases: Vec<(&str, UGraph, Vec<usize>)> = vec![
        ("C4", UGraph::cycle(4), vec![2]),
        ("C5", UGraph::cycle(5), vec![3]),
        ("C5", UGraph::cycle(5), vec![2, 3]),
        ("K3", UGraph::complete(3), vec![1, 3]),
        (
            "K3+K1 (disjoint)",
            UGraph::complete(3).disjoint_union(&UGraph::new(1)),
            vec![3],
        ),
    ];
    for (name, h, ms_set) in cases {
        let chi = chromatic_number(&h);
        let inst = bh::chromatic_in_set_instance(&h, &ms_set, &format!("e11bh_{name}_{ms_set:?}"));
        let (answer, ms) = time_ms(|| inst.decide());
        println!(
            "{:>18} {:>4} {:>10} {:>9} {:>12.2} {:>7}",
            name,
            chi,
            format!("{ms_set:?}"),
            inst.pattern.disjuncts().len(),
            ms,
            answer
        );
        assert_eq!(answer, ms_set.contains(&chi));
    }
    println!("  (paper's literal M1 = {:?} instance built structurally; evaluation is 2^(7|V|) — the point)", bh::m_k(1));

    // Theorem 7.3 (PNP||): MAX-ODD-SAT.
    println!("\nTheorem 7.3 — Eval(USP–SPARQL), MAX-ODD-SAT instances:");
    println!(
        "{:>30} {:>4} {:>9} {:>12} {:>7} {:>7}",
        "φ", "m", "disjuncts", "decide (ms)", "answer", "oracle"
    );
    let cases: Vec<(Formula, usize)> = vec![
        (Formula::var(0).and(Formula::var(1).not()), 2),
        (Formula::var(0).or(Formula::var(1)), 2),
        (
            Formula::var(0).and(Formula::var(1).not().or(Formula::var(2).not())),
            4,
        ),
        (Formula::conj((0..3).map(Formula::var)), 4),
    ];
    for (phi, m) in cases {
        let oracle = pnp::is_max_odd_sat(&phi, m);
        let inst =
            pnp::max_odd_sat_instance(&phi, m, &format!("e11mos{m}_{}", phi.to_string().len()));
        let (answer, ms) = time_ms(|| inst.decide());
        println!(
            "{:>30} {:>4} {:>9} {:>12.2} {:>7} {:>7}",
            phi.to_string(),
            m,
            inst.pattern.disjuncts().len(),
            ms,
            answer,
            oracle
        );
        assert_eq!(answer, oracle);
    }

    // Theorem 7.4 (NP): CONSTRUCT[AUF].
    println!("\nTheorem 7.4 — Eval(CONSTRUCT[AUF]), SAT instances:");
    println!(
        "{:>6} {:>12} {:>7} {:>7}",
        "vars", "decide (ms)", "answer", "oracle"
    );
    for n in [4usize, 8, 12, 14] {
        let phi = Formula::conj((0..n - 1).map(|i| Formula::var(i).or(Formula::var(i + 1).not())));
        let oracle = solve_formula(&phi).is_sat();
        let inst = construct_np::sat_construct_instance(&phi, &format!("e11cn{n}"));
        let (answer, ms) = time_ms(|| inst.decide());
        println!("{:>6} {:>12.2} {:>7} {:>7}", n, ms, answer, oracle);
        assert_eq!(answer, oracle);
    }

    // The exponential wall itself.
    println!("\nExponential evaluation cost of the SAT gadget (the hardness, measured):");
    println!("{:>6} {:>14} {:>12}", "vars", "assignments", "eval (ms)");
    for n in [8usize, 10, 12, 14, 16] {
        let g =
            sat_gadget::sat_gadget(&Formula::var(0).or(Formula::var(1)), n, &format!("e11w{n}"));
        let (out, ms) = time_ms(|| evaluate(&g.sat_pattern, &g.graph));
        println!("{:>6} {:>14} {:>12.2}", n, out.len(), ms);
    }
}

/// E12 — OPT vs NS and engine ablations on workloads.
fn e12() {
    header(
        "E12",
        "Section 8 future work: OPT vs NS in practice + engine ablation",
    );
    println!("OPT vs NS (indexed engine), social graphs:");
    println!(
        "{:>8} {:>8} {:>18} {:>12} {:>12} {:>8}",
        "people", "triples", "query", "OPT (ms)", "NS (ms)", "answers"
    );
    for people in [100usize, 400, 1600] {
        let g = social(people);
        let engine = Engine::new(&g);
        for (name, opt, ns) in opt_ns_pairs() {
            let (out_opt, t_opt) = time_ms(|| eval_seq(&engine, &opt));
            let (out_ns, t_ns) = time_ms(|| eval_seq(&engine, &ns));
            assert_eq!(out_opt, out_ns);
            println!(
                "{:>8} {:>8} {:>18} {:>12.2} {:>12.2} {:>8}",
                people,
                g.len(),
                name,
                t_opt,
                t_ns,
                out_opt.len()
            );
        }
    }

    println!("\nEngine ablation (reference scan vs indexed engine), fragment suite:");
    println!(
        "{:>8} {:>26} {:>14} {:>14} {:>8}",
        "triples", "fragment", "reference (ms)", "indexed (ms)", "answers"
    );
    for people in [200usize, 800] {
        let g = social(people);
        let engine = Engine::new(&g);
        for (name, p) in fragment_suite() {
            let (out_ref, t_ref) = time_ms(|| evaluate(&p, &g));
            let (out_idx, t_idx) = time_ms(|| eval_seq(&engine, &p));
            assert_eq!(out_ref, out_idx);
            println!(
                "{:>8} {:>26} {:>14.2} {:>14.2} {:>8}",
                g.len(),
                name,
                t_ref,
                t_idx,
                out_idx.len()
            );
        }
    }

    println!("\nTheorem 4.1 synthesis (bounded) on the audit patterns:");
    for text in [
        "((?X, was_born_in, Chile) OPT (?X, email, ?Y))",
        "((?X, a, b) OPT ((?X, c, ?Y) UNION (?X, d, ?Z)))",
    ] {
        let p = parse_pattern(text).unwrap();
        match synthesize_aufs(&p, &SynthesisOptions::default()) {
            SynthesisOutcome::Found {
                pattern,
                graphs_tested,
            } => {
                println!("  {text}\n    ≡s {pattern}   [{graphs_tested} test graphs]");
            }
            SynthesisOutcome::NotFound => {
                println!("  {text}\n    (no bounded AUF equivalent found)")
            }
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let experiments: Vec<(&str, fn())> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
    ];
    let mut ran = false;
    for (id, f) in &experiments {
        if arg == "all" || arg == *id {
            f();
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown experiment {arg:?}; use e1..e12 or all");
        std::process::exit(1);
    }
}
