//! Load generator for the owql-server front-end: boots an in-process
//! server over the parallel workload graph, drives it over real TCP
//! with concurrent clients through three phases — a client ramp, a
//! sustained mixed-shape phase with mid-run churn writes, and a
//! deliberate overload phase against a small admission queue — and
//! writes `BENCH_server.json` with per-phase latency percentiles,
//! throughput, and shed rate.
//!
//! Latencies are accumulated in the stack's shared log2
//! [`owql_obs::Histogram`] — the same fixed bucket boundaries the
//! server exports on `GET /metrics` — so the artifact's percentiles
//! and the live Prometheus series bucket identically, and each phase
//! records its raw `histogram_buckets` alongside the quantiles.
//!
//! Run with: `cargo run --release -p owql-bench --bin load_gen [out.json]`

use owql_bench::par;
use owql_obs::Histogram;
use owql_rdf::Triple;
use owql_server::{Server, ServerConfig};
use owql_store::Store;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed request, as seen by a client.
#[derive(Clone, Copy, Debug)]
struct Sample {
    status: u16,
    latency: Duration,
}

/// Issues one `POST /query` and returns the status + wall latency.
/// Connection failures surface as status 0.
fn one_request(addr: SocketAddr, target: &str, body: &str) -> Sample {
    let start = Instant::now();
    let status = (|| -> std::io::Result<u16> {
        let mut conn = TcpStream::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        write!(
            conn,
            "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        let mut response = String::new();
        conn.read_to_string(&mut response)?;
        Ok(response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0))
    })()
    .unwrap_or(0);
    Sample {
        status,
        latency: start.elapsed(),
    }
}

/// The mixed query shapes: `(target, body)` pairs cycled by clients.
fn shapes() -> Vec<(String, String)> {
    vec![
        // Cheap scan through the epoch-keyed cache.
        ("/query".to_owned(), "(?a, follows, ?b)".to_owned()),
        // Sequential uncached join.
        ("/query?cache=0".to_owned(), par::spine_query().to_string()),
        // Parallel uncached NS-over-UNION (the subsumption-heavy shape).
        (
            "/query?cache=0&mode=parallel".to_owned(),
            par::union_ns_query().to_string(),
        ),
        // Traced parallel wide UNION.
        (
            "/query?cache=0&mode=parallel&trace=1".to_owned(),
            par::wide_union_query().to_string(),
        ),
    ]
}

/// Drives `clients` concurrent client threads for `duration`, cycling
/// the query shapes, and returns every sample. `backoff` is how long a
/// client sleeps after a `429` before retrying (the well-behaved-client
/// analogue of `Retry-After`); zero models a retry storm.
fn drive(addr: SocketAddr, clients: usize, duration: Duration, backoff: Duration) -> Vec<Sample> {
    let samples = Arc::new(Mutex::new(Vec::new()));
    let shapes = Arc::new(shapes());
    std::thread::scope(|scope| {
        for c in 0..clients {
            let samples = samples.clone();
            let shapes = shapes.clone();
            scope.spawn(move || {
                let deadline = Instant::now() + duration;
                let mut local = Vec::new();
                let mut i = c; // stagger shape cycling across clients
                while Instant::now() < deadline {
                    let (target, body) = &shapes[i % shapes.len()];
                    let sample = one_request(addr, target, body);
                    let shed = sample.status == 429;
                    local.push(sample);
                    i += 1;
                    if shed && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                samples.lock().expect("samples lock").extend(local);
            });
        }
    });
    Arc::try_unwrap(samples)
        .expect("client threads joined")
        .into_inner()
        .expect("samples lock")
}

/// Per-phase aggregate written to the JSON artifact.
struct PhaseReport {
    phase: &'static str,
    clients: usize,
    wall: Duration,
    samples: Vec<Sample>,
}

impl PhaseReport {
    fn to_json(&self) -> String {
        let total = self.samples.len();
        let ok = self.samples.iter().filter(|s| s.status == 200).count();
        let shed = self.samples.iter().filter(|s| s.status == 429).count();
        let timeouts = self.samples.iter().filter(|s| s.status == 504).count();
        let other = total - ok - shed - timeouts;
        // Latency percentiles over *served* requests (sheds answer in
        // microseconds and would flatter the tail), bucketed by the
        // shared log2 histogram so the artifact agrees with /metrics.
        let histogram = Histogram::new();
        for sample in self.samples.iter().filter(|s| s.status == 200) {
            histogram.record(sample.latency);
        }
        let snap = histogram.snapshot();
        let secs = self.wall.as_secs_f64();
        format!(
            concat!(
                "{{\"phase\": \"{}\", \"clients\": {}, \"wall_s\": {:.3}, ",
                "\"requests\": {}, \"ok\": {}, \"shed\": {}, \"timeouts\": {}, \"other\": {}, ",
                "\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, ",
                "\"throughput_rps\": {:.1}, \"shed_rate\": {:.4}, ",
                "\"histogram_buckets\": {}}}"
            ),
            self.phase,
            self.clients,
            secs,
            total,
            ok,
            shed,
            timeouts,
            other,
            snap.quantile_ms(0.50),
            snap.quantile_ms(0.95),
            snap.quantile_ms(0.99),
            total as f64 / secs,
            shed as f64 / total.max(1) as f64,
            snap.buckets_to_json(""),
        )
    }
}

fn run_phase(
    addr: SocketAddr,
    phase: &'static str,
    clients: usize,
    duration: Duration,
    backoff: Duration,
) -> PhaseReport {
    let start = Instant::now();
    let samples = drive(addr, clients, duration, backoff);
    let report = PhaseReport {
        phase,
        clients,
        wall: start.elapsed(),
        samples,
    };
    println!("  {}", report.to_json());
    report
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".to_owned());

    let store = Arc::new(Store::new());
    let mut tx = store.begin();
    tx.insert_graph(&par::graph(400));
    store.commit(tx);
    let triples = store.len();

    // A small queue so the overload phase genuinely sheds: 16 clients
    // against 2 workers × (queue of 4) cannot all be admitted.
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 4,
        pool_threads: 2,
        default_deadline: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    };
    let server = Server::start(store.clone(), config).expect("failed to bind");
    let addr = server.addr();
    println!("load_gen: serving {triples} triples on {addr}");

    let mut reports = Vec::new();

    // Phase 1 — ramp: 1 → 4 clients warming the path end to end.
    println!("phase ramp:");
    for clients in [1usize, 2, 4] {
        reports.push(run_phase(
            addr,
            "ramp",
            clients,
            Duration::from_millis(400),
            Duration::from_millis(50),
        ));
    }

    // Phase 2 — sustained: 8 concurrent clients, mixed shapes, while a
    // churn writer commits mid-run (each commit bumps the epoch and
    // invalidates the cache).
    println!("phase sustained (with churn writer):");
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = store.clone();
        let stop = stop_writer.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                store.insert(Triple::new(
                    &format!("churn{i}"),
                    "follows",
                    &format!("churn{}", i + 1),
                ));
                i += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            i
        })
    };
    reports.push(run_phase(
        addr,
        "sustained",
        8,
        Duration::from_secs(3),
        Duration::from_millis(50),
    ));
    stop_writer.store(true, Ordering::Relaxed);
    let churn_commits = writer.join().expect("writer panicked");

    // Phase 3 — overload: 16 clients retrying without backoff against
    // the 2-worker / 4-slot queue; the excess must be shed with 429.
    println!("phase overload:");
    let overload = run_phase(addr, "overload", 16, Duration::from_secs(2), Duration::ZERO);
    let overload_shed = overload.samples.iter().filter(|s| s.status == 429).count();
    reports.push(overload);

    let metrics_json = server.metrics().to_json();
    server.shutdown();

    let mut json = String::from("{\n  \"bench\": \"owql-server load_gen\",\n");
    let _ = writeln!(json, "  \"triples\": {triples},");
    let _ = writeln!(json, "  \"churn_commits\": {churn_commits},");
    let _ = writeln!(json, "  \"server_metrics\": {metrics_json},");
    json.push_str("  \"phases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&r.to_json());
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write artifact");
    println!("wrote {out_path}");

    assert!(
        overload_shed > 0,
        "overload phase shed nothing — queue bound not exercised"
    );
}
