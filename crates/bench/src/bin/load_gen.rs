//! Load generator for the owql-server front-end: boots an in-process
//! server over the parallel workload graph, drives it over real TCP
//! with concurrent keep-alive clients through three phases — a client
//! ramp, a sustained mixed-shape phase with mid-run churn writes, and
//! a deliberate overload phase at 2× the admission capacity — and
//! writes `BENCH_server.json` with per-phase latency percentiles,
//! throughput, and shed rate.
//!
//! Clients speak HTTP/1.1 keep-alive: one persistent connection per
//! client thread, responses framed by `Content-Length` or chunked
//! transfer-encoding (de-framed incrementally, chunk by chunk).
//! A client that is shed with `429` keeps its connection — the server
//! must not cost it the socket — and backs off briefly before
//! retrying.
//!
//! Latencies are accumulated in the stack's shared log2
//! [`owql_obs::Histogram`] — the same fixed bucket boundaries the
//! server exports on `GET /metrics` — so the artifact's percentiles
//! and the live Prometheus series bucket identically, and each phase
//! records its raw `histogram_buckets` alongside the quantiles.
//!
//! Run with: `cargo run --release -p owql-bench --bin load_gen [out.json]`

use owql_bench::par;
use owql_obs::Histogram;
use owql_rdf::Triple;
use owql_server::{Server, ServerConfig};
use owql_store::Store;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed request, as seen by a client.
#[derive(Clone, Copy, Debug)]
struct Sample {
    status: u16,
    latency: Duration,
}

/// A keep-alive HTTP/1.1 client: one persistent connection, requests
/// issued serially, responses framed by `Content-Length` or chunked
/// encoding. Reconnects transparently after an IO error or a
/// `Connection: close` response (e.g. server drain).
struct ClientConn {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    buf: Vec<u8>,
}

impl ClientConn {
    fn new(addr: SocketAddr) -> ClientConn {
        ClientConn {
            addr,
            conn: None,
            buf: Vec::new(),
        }
    }

    /// Issues a batch of pipelined `POST`s (pre-encoded wire bytes) in
    /// one write and reads the responses back in order, appending one
    /// sample per request. Latency is measured from the batch write,
    /// so later samples include their queueing delay behind earlier
    /// responses — the honest number for a pipelining client.
    /// Connection failures surface as status 0.
    fn request_batch(&mut self, wires: &[&[u8]], out: &mut Vec<Sample>) {
        let start = Instant::now();
        if let Err(_e) = self.try_batch(wires, start, out) {
            self.conn = None;
            self.buf.clear();
            out.push(Sample {
                status: 0,
                latency: start.elapsed(),
            });
        }
    }

    fn try_batch(
        &mut self,
        wires: &[&[u8]],
        start: Instant,
        out: &mut Vec<Sample>,
    ) -> std::io::Result<()> {
        if self.conn.is_none() {
            let conn = TcpStream::connect(self.addr)?;
            conn.set_read_timeout(Some(Duration::from_secs(30)))?;
            conn.set_nodelay(true)?;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connected above");
        // One write syscall for the whole pipeline: requests were
        // encoded once per shape, not re-formatted per call.
        if let [wire] = wires {
            conn.write_all(wire)?;
        } else {
            let mut pipelined = Vec::with_capacity(wires.iter().map(|w| w.len()).sum());
            for wire in wires {
                pipelined.extend_from_slice(wire);
            }
            conn.write_all(&pipelined)?;
        }
        for _ in wires {
            let (status, close) = self.read_response()?;
            out.push(Sample {
                status,
                latency: start.elapsed(),
            });
            if close {
                self.conn = None;
                self.buf.clear();
                // Any responses behind the close are gone; the caller
                // reconnects on the next batch.
                break;
            }
        }
        Ok(())
    }

    /// Reads exactly one response frame off the persistent socket,
    /// leaving any pipelined successor bytes in the buffer. Returns
    /// `(status, connection_closed)`. Only headers and chunk size
    /// lines transit the buffer — body payloads are discarded straight
    /// out of the read scratch, so a large response costs no client
    /// memcpy (the clients share the core with the server under test;
    /// cycles they burn are cycles it can't serve with).
    fn read_response(&mut self) -> std::io::Result<(u16, bool)> {
        let mut chunk = [0u8; 64 * 1024];
        let head_end = loop {
            if let Some(end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break end;
            }
            self.fill(&mut chunk)?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_ascii_lowercase();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(std::io::ErrorKind::InvalidData)?;
        let close = head.contains("connection: close");
        let chunked = head.contains("transfer-encoding: chunked");
        let length: Option<usize> = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .and_then(|v| v.trim().parse().ok());
        self.buf.drain(..head_end + 4);
        if chunked {
            // De-frame incrementally: parse each size line, then skip
            // the payload without buffering it.
            loop {
                let line_end = loop {
                    if let Some(end) = self.buf.iter().take(18).position(|&b| b == b'\n') {
                        break end;
                    }
                    self.fill(&mut chunk)?;
                };
                let size_str = std::str::from_utf8(&self.buf[..line_end])
                    .map_err(|_| std::io::ErrorKind::InvalidData)?
                    .trim();
                let size = usize::from_str_radix(size_str, 16)
                    .map_err(|_| std::io::ErrorKind::InvalidData)?;
                self.buf.drain(..line_end + 1);
                // Payload plus its trailing CRLF (the terminal frame
                // has no payload, just the bare CRLF).
                self.discard(size + 2, &mut chunk)?;
                if size == 0 {
                    break;
                }
            }
        } else {
            let length = length.ok_or(std::io::ErrorKind::InvalidData)?;
            self.discard(length, &mut chunk)?;
        }
        Ok((status, close))
    }

    /// One read off the socket into the buffer (header/size-line path).
    fn fill(&mut self, chunk: &mut [u8]) -> std::io::Result<()> {
        let n = self.conn.as_mut().expect("caller connected").read(chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Consumes exactly `n` stream bytes: buffered bytes first, the
    /// rest read straight into the scratch and dropped. Never reads
    /// past `n`, so pipelined successor bytes stay intact.
    fn discard(&mut self, mut n: usize, chunk: &mut [u8]) -> std::io::Result<()> {
        let buffered = n.min(self.buf.len());
        self.buf.drain(..buffered);
        n -= buffered;
        let conn = self.conn.as_mut().expect("caller connected");
        while n > 0 {
            let want = n.min(chunk.len());
            let got = conn.read(&mut chunk[..want])?;
            if got == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            n -= got;
        }
        Ok(())
    }
}

/// The mixed query shapes: `(target, body)` pairs cycled by clients.
fn shapes() -> Vec<(String, String)> {
    vec![
        // Cheap scan through the epoch-keyed cache.
        ("/query".to_owned(), "(?a, follows, ?b)".to_owned()),
        // Sequential uncached join.
        ("/query?cache=0".to_owned(), par::spine_query().to_string()),
        // Parallel uncached NS-over-UNION (the subsumption-heavy shape).
        (
            "/query?cache=0&mode=parallel".to_owned(),
            par::union_ns_query().to_string(),
        ),
        // Traced parallel wide UNION.
        (
            "/query?cache=0&mode=parallel&trace=1".to_owned(),
            par::wide_union_query().to_string(),
        ),
    ]
}

/// Drives `clients` concurrent keep-alive client threads for
/// `duration`, cycling the query shapes, and returns every sample.
/// `backoff` is how long a client sleeps after a `429` before retrying
/// (the well-behaved-client analogue of `Retry-After`); zero models a
/// retry storm. `depth` is the pipeline depth: each client keeps that
/// many requests on the wire per round trip (1 = plain keep-alive).
fn drive(
    addr: SocketAddr,
    clients: usize,
    duration: Duration,
    backoff: Duration,
    depth: usize,
) -> Vec<Sample> {
    let samples = Arc::new(Mutex::new(Vec::new()));
    // Encode each shape to wire bytes once; clients replay them.
    let shapes: Arc<Vec<Vec<u8>>> = Arc::new(
        shapes()
            .iter()
            .map(|(target, body)| {
                format!(
                    "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes()
            })
            .collect(),
    );
    std::thread::scope(|scope| {
        for c in 0..clients {
            let samples = samples.clone();
            let shapes = shapes.clone();
            scope.spawn(move || {
                let deadline = Instant::now() + duration;
                let mut conn = ClientConn::new(addr);
                let mut local = Vec::new();
                let mut batch: Vec<&[u8]> = Vec::with_capacity(depth);
                let mut i = c; // stagger shape cycling across clients
                while Instant::now() < deadline {
                    batch.clear();
                    batch.extend((0..depth).map(|k| shapes[(i + k) % shapes.len()].as_slice()));
                    i += depth;
                    let served = local.len();
                    conn.request_batch(&batch, &mut local);
                    let shed = local[served..].iter().any(|s| s.status == 429);
                    if shed && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                samples.lock().expect("samples lock").extend(local);
            });
        }
    });
    Arc::try_unwrap(samples)
        .expect("client threads joined")
        .into_inner()
        .expect("samples lock")
}

/// Per-phase aggregate written to the JSON artifact.
struct PhaseReport {
    phase: &'static str,
    clients: usize,
    wall: Duration,
    samples: Vec<Sample>,
}

impl PhaseReport {
    fn to_json(&self) -> String {
        let total = self.samples.len();
        let ok = self.samples.iter().filter(|s| s.status == 200).count();
        let shed = self.samples.iter().filter(|s| s.status == 429).count();
        let timeouts = self.samples.iter().filter(|s| s.status == 504).count();
        let other = total - ok - shed - timeouts;
        // Latency percentiles over *served* requests (sheds answer in
        // microseconds and would flatter the tail), bucketed by the
        // shared log2 histogram so the artifact agrees with /metrics.
        let histogram = Histogram::new();
        for sample in self.samples.iter().filter(|s| s.status == 200) {
            histogram.record(sample.latency);
        }
        let snap = histogram.snapshot();
        let secs = self.wall.as_secs_f64();
        format!(
            concat!(
                "{{\"phase\": \"{}\", \"clients\": {}, \"wall_s\": {:.3}, ",
                "\"requests\": {}, \"ok\": {}, \"shed\": {}, \"timeouts\": {}, \"other\": {}, ",
                "\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, ",
                "\"throughput_rps\": {:.1}, \"shed_rate\": {:.4}, ",
                "\"histogram_buckets\": {}}}"
            ),
            self.phase,
            self.clients,
            secs,
            total,
            ok,
            shed,
            timeouts,
            other,
            snap.quantile_ms(0.50),
            snap.quantile_ms(0.95),
            snap.quantile_ms(0.99),
            total as f64 / secs,
            shed as f64 / total.max(1) as f64,
            snap.buckets_to_json(""),
        )
    }
}

fn run_phase(
    addr: SocketAddr,
    phase: &'static str,
    clients: usize,
    duration: Duration,
    backoff: Duration,
    depth: usize,
) -> PhaseReport {
    let start = Instant::now();
    let samples = drive(addr, clients, duration, backoff, depth);
    let report = PhaseReport {
        phase,
        clients,
        wall: start.elapsed(),
        samples,
    };
    println!("  {}", report.to_json());
    report
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".to_owned());

    let store = Arc::new(Store::new());
    let mut tx = store.begin();
    tx.insert_graph(&par::graph(400));
    store.commit(tx);
    let triples = store.len();

    // Inline mode (workers = 0): on the single-core bench host the
    // event loop evaluates requests itself — no queue hand-off, no
    // wake pipe, no context switch per request. The dispatch queue
    // still bounds admission at 10, fewer than the overload phase has
    // clients, so overload genuinely sheds — but a majority of the
    // offered load must still be served (the check_bench gate).
    let config = ServerConfig::builder()
        .workers(0)
        .queue_capacity(10)
        .pool_threads(1)
        .shards(0)
        .default_deadline(Some(Duration::from_secs(10)))
        .build();
    let server = Server::start(store.clone(), config).expect("failed to bind");
    let addr = server.addr();
    println!("load_gen: serving {triples} triples on {addr}");

    let mut reports = Vec::new();

    // Phase 1 — ramp: 1 → 4 clients warming the path end to end.
    println!("phase ramp:");
    for clients in [1usize, 2, 4] {
        reports.push(run_phase(
            addr,
            "ramp",
            clients,
            Duration::from_millis(400),
            Duration::from_millis(5),
            1,
        ));
    }

    // Phase 2 — sustained: 8 concurrent clients, mixed shapes, while a
    // churn writer commits mid-run (each commit bumps the epoch and
    // invalidates the cache).
    println!("phase sustained (with churn writer):");
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = store.clone();
        let stop = stop_writer.clone();
        std::thread::spawn(move || {
            // Bounded churn: every commit bumps the epoch and
            // invalidates the query cache, but the store keeps a
            // constant size so shape costs stay comparable across the
            // phase (an unbounded insert stream would superlinearly
            // inflate the NS shapes as the run progresses).
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut tx = store.begin();
                tx.insert(Triple::new(
                    &format!("churn{}", i % 8),
                    "follows",
                    &format!("churn{}", (i + 1) % 8),
                ));
                tx.delete(Triple::new(
                    &format!("churn{}", (i + 7) % 8),
                    "follows",
                    &format!("churn{}", i % 8),
                ));
                store.commit(tx);
                i += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            i
        })
    };
    reports.push(run_phase(
        addr,
        "sustained",
        10,
        Duration::from_secs(3),
        Duration::from_millis(5),
        2,
    ));
    stop_writer.store(true, Ordering::Relaxed);
    let churn_commits = writer.join().expect("writer panicked");

    // Phase 3 — overload: 16 clients against the 2-worker / 8-slot
    // queue. The excess is shed with 429 on a still-open connection;
    // shed clients honor a short Retry-After-style pause, and the
    // majority of requests must still be served.
    println!("phase overload:");
    let overload = run_phase(
        addr,
        "overload",
        16,
        Duration::from_secs(2),
        Duration::from_millis(6),
        1,
    );
    let overload_shed = overload.samples.iter().filter(|s| s.status == 429).count();
    reports.push(overload);

    let metrics_json = server.metrics().to_json();
    server.shutdown();

    let mut json = String::from("{\n  \"bench\": \"owql-server load_gen\",\n");
    let _ = writeln!(json, "  \"client_mode\": \"keep-alive\",");
    let _ = writeln!(json, "  \"triples\": {triples},");
    let _ = writeln!(json, "  \"churn_commits\": {churn_commits},");
    let _ = writeln!(json, "  \"server_metrics\": {metrics_json},");
    json.push_str("  \"phases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&r.to_json());
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write artifact");
    println!("wrote {out_path}");

    assert!(
        overload_shed > 0,
        "overload phase shed nothing — queue bound not exercised"
    );
}
