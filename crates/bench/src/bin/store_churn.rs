//! Store-churn summary driver: runs the interleaved write/NS-read
//! workload cold vs cached and writes machine-readable results to
//! `BENCH_store.json`.
//!
//! ```text
//! cargo run --release -p owql-bench --bin store_churn -- [--quick] [out.json]
//! ```
//!
//! `--quick` shrinks the round count for the CI `bench-smoke` job.

use owql_bench::churn;
use std::fmt::Write as _;
use std::time::Instant;

struct Run {
    people: usize,
    rounds: usize,
    cold_ms: f64,
    cached_ms: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    hit_rate: f64,
    compactions: u64,
    base_len: usize,
    delta_len: usize,
    final_len: usize,
    epoch: u64,
}

/// `rounds` rounds of (16-op write batch, 8 NS reads); reads go through
/// `query_uncached` when `cached` is false, `query` otherwise.
fn run_workload(people: usize, rounds: usize, cached: bool) -> (f64, owql_store::Store) {
    let store = churn::seeded_store(people);
    let mut rng = churn::rng();
    let query = churn::ns_query();
    let start = Instant::now();
    for _ in 0..rounds {
        churn::mutate(&store, people, &mut rng, 16);
        for _ in 0..8 {
            let answers = if cached {
                store.query(&query)
            } else {
                store.query_uncached(&query)
            };
            std::hint::black_box(answers.len());
        }
    }
    (start.elapsed().as_secs_f64() * 1e3, store)
}

fn measure(people: usize, rounds: usize) -> Run {
    let (cold_ms, _) = run_workload(people, rounds, false);
    let (cached_ms, store) = run_workload(people, rounds, true);
    // One StoreMetrics read feeds the whole row — the same unified
    // snapshot `Store::observe` folds into query profiles.
    let metrics = store.metrics();
    Run {
        people,
        rounds,
        cold_ms,
        cached_ms,
        hits: metrics.cache.hits,
        misses: metrics.cache.misses,
        evictions: metrics.cache.evictions,
        invalidations: metrics.cache.invalidations,
        hit_rate: metrics.cache.hit_rate(),
        compactions: metrics.compactions,
        base_len: metrics.base_len,
        delta_len: metrics.delta_len,
        final_len: metrics.len,
        epoch: metrics.epoch,
    }
}

fn main() -> std::io::Result<()> {
    let mut quick = false;
    let mut out = "BENCH_store.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out = arg;
        }
    }
    let rounds = if quick { 12 } else { 60 };
    let mut runs = Vec::new();
    for people in [200usize, 800] {
        let run = measure(people, rounds);
        println!(
            "people={:4} rounds={}  cold={:8.2}ms  cached={:8.2}ms  speedup={:.2}x  \
             hits={} misses={} (rate {:.2}) invalidations={} compactions={} \
             base={} delta={} epoch={}",
            run.people,
            run.rounds,
            run.cold_ms,
            run.cached_ms,
            run.cold_ms / run.cached_ms,
            run.hits,
            run.misses,
            run.hit_rate,
            run.invalidations,
            run.compactions,
            run.base_len,
            run.delta_len,
            run.epoch,
        );
        runs.push(run);
    }

    let mut json = String::from("{\n  \"benchmark\": \"store_churn\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"{rounds} rounds x (16-op write batch + 8 NS reads) over the social graph\",",
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"people\": {}, \"rounds\": {}, \"cold_ms\": {:.3}, \"cached_ms\": {:.3}, \
             \"speedup\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_evictions\": {}, \"cache_invalidations\": {}, \"cache_hit_rate\": {:.3}, \
             \"compactions\": {}, \"base_triples\": {}, \"delta_triples\": {}, \
             \"final_triples\": {}, \"final_epoch\": {}}}",
            r.people,
            r.rounds,
            r.cold_ms,
            r.cached_ms,
            r.cold_ms / r.cached_ms,
            r.hits,
            r.misses,
            r.evictions,
            r.invalidations,
            r.hit_rate,
            r.compactions,
            r.base_len,
            r.delta_len,
            r.final_len,
            r.epoch,
        );
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
