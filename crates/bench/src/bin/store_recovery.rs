//! Persistence benchmark + crash-test driver. Three modes:
//!
//! ```text
//! # Bench mode (default): writes BENCH_persist.json
//! cargo run --release -p owql-bench --bin store_recovery -- [--quick] [out.json]
//!
//! # Crash-writer mode: commit `(s{i}, p, o)` forever with fsync on,
//! # printing `committed <epoch>` per commit — the harness kill -9's us.
//! cargo run -p owql-bench --bin store_recovery -- --crash-writer <dir> [n]
//!
//! # Verify mode: reopen <dir>, check the state is exactly commits
//! # 1..=epoch of the deterministic workload, differentially against a
//! # fresh in-memory store. Exits non-zero on any divergence.
//! cargo run -p owql-bench --bin store_recovery -- --verify <dir>
//! ```
//!
//! The bench mode measures what the design promises to trade:
//! - commit throughput with fsync on vs off (the durability knob),
//! - checkpoint latency at a given store size,
//! - cold-start latency: segment-only open vs replaying a long WAL.

use owql_algebra::pattern::Pattern;
use owql_store::{PersistConfig, Store, StoreOptions};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Commit `i` of the deterministic workload inserts this triple.
fn workload_triple(i: u64) -> owql_rdf::Triple {
    let s = format!("s{i}");
    let o = format!("o{}", i % 5);
    owql_rdf::Triple::new(&s, "p", &o)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("owql-recovery-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf, fsync: bool) -> Store {
    let config = if fsync {
        PersistConfig::default()
            .checkpoint_every(0)
            .inline_indexer()
    } else {
        PersistConfig::default()
            .no_fsync()
            .checkpoint_every(0)
            .inline_indexer()
    };
    Store::open(dir, StoreOptions::default(), config).expect("open store")
}

/// `--crash-writer <dir> [n]`: deterministic commit loop, fsync on.
/// Epoch i ⇔ triples s1..si are durable — the verifier relies on it.
fn crash_writer(dir: &str, n: u64) -> ! {
    let store = Store::open(
        dir,
        StoreOptions::default(),
        PersistConfig::default()
            .checkpoint_every(0)
            .inline_indexer(),
    )
    .expect("open store");
    let start = store.epoch();
    for i in start + 1..=n {
        store.insert(workload_triple(i));
        // One line per durable commit; the harness reads these to know
        // how far we got before it killed us.
        println!("committed {i}");
    }
    println!("writer finished at epoch {n}");
    std::process::exit(0);
}

/// `--verify <dir>`: recovery must land on a fully-committed epoch E
/// with state identical to a reference store that saw commits 1..=E.
fn verify(dir: &str) -> ! {
    let store = open(&PathBuf::from(dir), false);
    let epoch = store.epoch();
    let report = store.recovery_report().expect("durable store").clone();

    let reference = Store::new();
    for i in 1..=epoch {
        reference.insert(workload_triple(i));
    }
    let mut failures = Vec::new();
    if store.to_graph() != reference.to_graph() {
        failures.push(format!(
            "graph mismatch at epoch {epoch}: {} vs {} triples",
            store.len(),
            reference.len()
        ));
    }
    for probe in [
        Pattern::t("?x", "p", "?y"),
        Pattern::t("?x", "p", "o1"),
        Pattern::t("?x", "p", "?y").and(Pattern::t("?z", "p", "?y")),
    ] {
        if store.query(&probe) != reference.query(&probe) {
            failures.push(format!("answers diverge for {probe}"));
        }
    }
    if failures.is_empty() {
        println!(
            "VERIFY OK epoch={epoch} triples={} segment_gen={} replayed={} skipped_bytes={}",
            store.len(),
            report.segment_generation,
            report.replayed_records,
            report.skipped_wal_bytes
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("VERIFY FAIL: {f}");
    }
    std::process::exit(1);
}

struct CommitRun {
    fsync: bool,
    commits: u64,
    elapsed_ms: f64,
    commits_per_sec: f64,
    wal_bytes: u64,
}

fn bench_commits(commits: u64, fsync: bool) -> CommitRun {
    let dir = fresh_dir(if fsync { "fsync-on" } else { "fsync-off" });
    let store = open(&dir, fsync);
    let start = Instant::now();
    for i in 1..=commits {
        store.insert(workload_triple(i));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let wal_bytes = store.persist_metrics().expect("durable").wal_bytes;
    let run = CommitRun {
        fsync,
        commits,
        elapsed_ms: elapsed * 1e3,
        commits_per_sec: commits as f64 / elapsed,
        wal_bytes,
    };
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

struct CheckpointRun {
    triples: usize,
    checkpoint_ms: f64,
    segment_bytes: u64,
    wal_records_dropped: u64,
}

fn bench_checkpoint(commits: u64) -> CheckpointRun {
    let dir = fresh_dir("checkpoint");
    let store = open(&dir, false);
    for i in 1..=commits {
        store.insert(workload_triple(i));
    }
    let start = Instant::now();
    let summary = store
        .checkpoint()
        .expect("checkpoint io")
        .expect("checkpoint ran");
    let checkpoint_ms = start.elapsed().as_secs_f64() * 1e3;
    let segment_bytes = std::fs::metadata(owql_store::segment_path(&dir, summary.generation))
        .map(|m| m.len())
        .unwrap_or(0);
    let run = CheckpointRun {
        triples: summary.triples,
        checkpoint_ms,
        segment_bytes,
        wal_records_dropped: summary.wal_records_dropped,
    };
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

struct ColdStart {
    commits: u64,
    wal_replay_ms: f64,
    replayed_records: u64,
    segment_open_ms: f64,
    segment_triples: usize,
}

/// Cold-start comparison at the same logical state: reopen a store
/// whose entire history sits in the WAL vs one that was checkpointed
/// (segment + empty WAL tail).
fn bench_cold_start(commits: u64) -> ColdStart {
    let dir = fresh_dir("cold-start");
    {
        let store = open(&dir, false);
        for i in 1..=commits {
            store.insert(workload_triple(i));
        }
    }
    let start = Instant::now();
    let store = open(&dir, false);
    let wal_replay_ms = start.elapsed().as_secs_f64() * 1e3;
    let replayed_records = store.recovery_report().expect("durable").replayed_records;
    store.checkpoint().expect("io").expect("ran");
    drop(store);

    let start = Instant::now();
    let store = open(&dir, false);
    let segment_open_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = store.recovery_report().expect("durable").clone();
    assert_eq!(report.replayed_records, 0, "checkpoint covered everything");
    let run = ColdStart {
        commits,
        wal_replay_ms,
        replayed_records,
        segment_open_ms,
        segment_triples: report.segment_triples,
    };
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--crash-writer") => {
            let dir = args.get(1).expect("--crash-writer needs a directory");
            let n = args
                .get(2)
                .map(|s| s.parse().expect("bad commit count"))
                .unwrap_or(u64::MAX);
            crash_writer(dir, n);
        }
        Some("--verify") => {
            verify(args.get(1).expect("--verify needs a directory"));
        }
        _ => {}
    }

    let mut quick = false;
    let mut out = "BENCH_persist.json".to_owned();
    for arg in args {
        if arg == "--quick" {
            quick = true;
        } else {
            out = arg;
        }
    }
    let (fsync_commits, commits) = if quick { (100, 2_000) } else { (400, 20_000) };

    // fsync off first (cheap), then on (each commit waits on the disk).
    let no_sync = bench_commits(commits, false);
    let synced = bench_commits(fsync_commits, true);
    for r in [&no_sync, &synced] {
        println!(
            "commits fsync={:5}: {:6} commits in {:9.2}ms = {:9.0}/s  (wal {} bytes)",
            r.fsync, r.commits, r.elapsed_ms, r.commits_per_sec, r.wal_bytes
        );
    }
    let checkpoint = bench_checkpoint(commits);
    println!(
        "checkpoint: {} triples in {:.2}ms -> {} byte segment ({} wal records dropped)",
        checkpoint.triples,
        checkpoint.checkpoint_ms,
        checkpoint.segment_bytes,
        checkpoint.wal_records_dropped
    );
    let cold = bench_cold_start(commits);
    println!(
        "cold start at {} commits: wal-replay {:.2}ms ({} records) vs segment {:.2}ms ({} triples)",
        cold.commits,
        cold.wal_replay_ms,
        cold.replayed_records,
        cold.segment_open_ms,
        cold.segment_triples
    );

    let mut json = String::from("{\n  \"benchmark\": \"store_recovery\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"single-insert commits of (s_i, p, o_i%5); checkpoint + reopen at the same state\",",
    );
    json.push_str("  \"commit_throughput\": [\n");
    for (i, r) in [&no_sync, &synced].iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"fsync\": {}, \"commits\": {}, \"elapsed_ms\": {:.3}, \
             \"commits_per_sec\": {:.1}, \"wal_bytes\": {}}}",
            r.fsync, r.commits, r.elapsed_ms, r.commits_per_sec, r.wal_bytes
        );
        json.push_str(if i == 0 { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"checkpoint\": {{\"triples\": {}, \"checkpoint_ms\": {:.3}, \
         \"segment_bytes\": {}, \"wal_records_dropped\": {}}},",
        checkpoint.triples,
        checkpoint.checkpoint_ms,
        checkpoint.segment_bytes,
        checkpoint.wal_records_dropped
    );
    let _ = writeln!(
        json,
        "  \"cold_start\": {{\"commits\": {}, \"wal_replay_ms\": {:.3}, \
         \"replayed_records\": {}, \"segment_open_ms\": {:.3}, \"segment_triples\": {}}}",
        cold.commits,
        cold.wal_replay_ms,
        cold.replayed_records,
        cold.segment_open_ms,
        cold.segment_triples
    );
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");
}
