//! Parallel evaluation: the UNION/NS workload of `owql_bench::par`
//! through the sequential engine and through the `owql-exec` pool at
//! widths 1, 2, and 8 — the criterion view of what `parallel_bench`
//! summarizes into `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_bench::par;
use owql_eval::{Engine, ExecOpts};
use owql_exec::Pool;
use std::hint::black_box;

fn bench_parallel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);

    for people in [300usize, 900] {
        let graph = par::graph(people);
        let engine = Engine::new(&graph);
        for (name, query) in [
            ("union_ns", par::union_ns_query()),
            ("wide_union", par::wide_union_query()),
            ("spine", par::spine_query()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_seq"), people),
                &people,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            engine
                                .run(black_box(&query), &ExecOpts::seq(), &Pool::sequential())
                                .expect("unlimited budget cannot time out")
                                .mappings
                                .len(),
                        )
                    })
                },
            );
            for workers in [1usize, 2, 8] {
                let pool = Pool::new(workers);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_w{workers}"), people),
                    &people,
                    |b, _| {
                        b.iter(|| {
                            black_box(
                                engine
                                    .run(black_box(&query), &ExecOpts::parallel(), &pool)
                                    .expect("unlimited budget cannot time out")
                                    .mappings
                                    .len(),
                            )
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_eval);
criterion_main!(benches);
