//! Experiment E6 cost profile: building the Lemma C.2 formula `φ_P`
//! and model-checking it, vs the direct engines. Quantifies how much
//! the independent FO semantics costs (it is a validation tool, not an
//! execution path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_parser::parse_pattern;
use owql_rdf::graph::graph_from;
use owql_theory::fo::translate::{evaluate_via_fo, translate_pattern};
use std::hint::black_box;

fn bench_fo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fo_translation");
    group.sample_size(10);
    let samples = [
        ("triple", "(?x, p, ?y)"),
        ("opt", "((?x, p, ?y) OPT (?y, q, ?z))"),
        (
            "ns_union",
            "NS(((?x, p, ?y) UNION ((?x, p, ?y) AND (?y, q, ?z))))",
        ),
    ];
    let g = graph_from(&[
        ("a", "p", "b"),
        ("b", "q", "c"),
        ("c", "p", "d"),
        ("d", "q", "a"),
    ]);
    for (name, text) in samples {
        let p = parse_pattern(text).unwrap();
        group.bench_with_input(BenchmarkId::new("translate", name), &p, |b, p| {
            b.iter(|| black_box(translate_pattern(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("evaluate_via_fo", name), &p, |b, p| {
            b.iter(|| black_box(evaluate_via_fo(black_box(p), &g)))
        });
        group.bench_with_input(BenchmarkId::new("evaluate_direct", name), &p, |b, p| {
            b.iter(|| black_box(owql_eval::evaluate(black_box(p), &g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fo);
criterion_main!(benches);
