//! Store churn: interleaved write batches and NS-query reads against
//! the live versioned store, comparing the cold path (evaluate on
//! every read) with the epoch-keyed cache (hits between writes), plus
//! snapshot and commit costs in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_bench::churn;
use std::hint::black_box;

fn bench_store_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_churn");
    group.sample_size(15);
    let query = churn::ns_query();

    for people in [200usize, 800] {
        // Interleaved workload, cold: every read evaluates.
        group.bench_with_input(BenchmarkId::new("mixed_cold", people), &people, |b, &n| {
            let store = churn::seeded_store(n);
            let mut rng = churn::rng();
            b.iter(|| {
                churn::mutate(&store, n, &mut rng, 16);
                let mut total = 0;
                for _ in 0..8 {
                    total += store.query_uncached(black_box(&query)).len();
                }
                black_box(total)
            })
        });

        // Same workload through the cache: 1 miss + 7 hits per round.
        group.bench_with_input(
            BenchmarkId::new("mixed_cached", people),
            &people,
            |b, &n| {
                let store = churn::seeded_store(n);
                let mut rng = churn::rng();
                b.iter(|| black_box(churn::round(&store, n, &mut rng, 16, 8)))
            },
        );

        // Pure read, fully warm: upper bound of what the cache buys.
        group.bench_with_input(BenchmarkId::new("read_warm", people), &people, |b, &n| {
            let store = churn::seeded_store(n);
            store.query(&query); // fill
            b.iter(|| black_box(store.query(black_box(&query)).len()))
        });

        // Snapshot cost: three Arc clones, independent of store size.
        group.bench_with_input(BenchmarkId::new("snapshot", people), &people, |b, &n| {
            let store = churn::seeded_store(n);
            b.iter(|| black_box(store.snapshot().epoch()))
        });

        // Write-only batches (includes amortized compaction).
        group.bench_with_input(BenchmarkId::new("commit_16", people), &people, |b, &n| {
            let store = churn::seeded_store(n);
            let mut rng = churn::rng();
            b.iter(|| churn::mutate(&store, n, &mut rng, 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_churn);
criterion_main!(benches);
