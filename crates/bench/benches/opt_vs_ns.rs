//! Experiment E12: the Section 8 future-work question — what does
//! replacing OPT by NS cost in practice? Answer-identical query pairs
//! over the social workload, both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_bench::{opt_ns_pairs, social};
use owql_eval::{Engine, ExecOpts};
use owql_exec::Pool;
use std::hint::black_box;

fn eval_seq(engine: &Engine, p: &owql_algebra::Pattern) -> owql_algebra::MappingSet {
    engine
        .run(p, &ExecOpts::seq(), &Pool::sequential())
        .expect("unlimited budget cannot time out")
        .mappings
}

fn bench_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_vs_ns");
    group.sample_size(15);
    for people in [200usize, 800] {
        let graph = social(people);
        let engine = Engine::new(&graph);
        for (name, opt, ns) in opt_ns_pairs() {
            assert_eq!(eval_seq(&engine, &opt), eval_seq(&engine, &ns));
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/OPT"), people),
                &opt,
                |b, p| b.iter(|| black_box(eval_seq(&engine, black_box(p)))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/NS"), people),
                &ns,
                |b, p| b.iter(|| black_box(eval_seq(&engine, black_box(p)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pairs);
criterion_main!(benches);
