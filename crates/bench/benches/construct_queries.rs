//! Experiments E9/E10 at scale: CONSTRUCT evaluation (Example 6.1's
//! query) over growing campus graphs, the OPT-using query vs its
//! monotone CONSTRUCT[AUF] counterpart, and view composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_algebra::construct::example_6_1;
use owql_bench::campus;
use owql_eval::construct::{construct, construct_indexed};
use owql_parser::parse_construct;
use std::hint::black_box;

fn bench_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_queries");
    group.sample_size(15);
    let example = example_6_1();
    let auf = parse_construct(
        "CONSTRUCT {(?n, affiliated_to, ?u)} WHERE ((?p, name, ?n) AND (?p, works_at, ?u))",
    )
    .unwrap();
    for professors in [100usize, 400] {
        let graph = campus(professors);
        group.bench_with_input(
            BenchmarkId::new("example_6_1_reference", professors),
            &graph,
            |b, g| b.iter(|| black_box(construct(&example, black_box(g)))),
        );
        group.bench_with_input(
            BenchmarkId::new("example_6_1_indexed", professors),
            &graph,
            |b, g| b.iter(|| black_box(construct_indexed(&example, black_box(g)))),
        );
        group.bench_with_input(
            BenchmarkId::new("auf_fragment_indexed", professors),
            &graph,
            |b, g| b.iter(|| black_box(construct_indexed(&auf, black_box(g)))),
        );
        // View composition: run a second CONSTRUCT over the view.
        let view = construct_indexed(&example, &graph);
        let second =
            parse_construct("CONSTRUCT {(?u, has_member, ?n)} WHERE (?n, affiliated_to, ?u)")
                .unwrap();
        group.bench_with_input(
            BenchmarkId::new("composed_view", professors),
            &view,
            |b, v| b.iter(|| black_box(construct_indexed(&second, black_box(v)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construct);
criterion_main!(benches);
