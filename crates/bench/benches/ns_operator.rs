//! The NS operator itself (experiment E7 + DESIGN.md ablations):
//!
//! * `maximal` (domain-size pre-sorted) vs `maximal_naive` (all pairs)
//!   on answer sets with varying subsumption structure,
//! * NS-elimination (Theorem 5.1) translation cost per nesting depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_algebra::{Mapping, MappingSet, Variable};
use owql_rdf::Iri;
use owql_theory::rewrite::ns_elimination::{eliminate_ns, nested_ns_pattern};
use std::hint::black_box;

/// A mapping set of `n` chains of length 3 (µ ≺ µ' ≺ µ'') plus `n`
/// isolated maximal mappings — a subsumption-heavy workload.
fn chained_set(n: usize) -> MappingSet {
    let mut out = MappingSet::new();
    for i in 0..n {
        let a = Variable::new("a");
        let b = Variable::new("b");
        let c = Variable::new("c");
        let v = Iri::new(&format!("v{i}"));
        let m1 = Mapping::new().bind(a, v);
        let m2 = m1.bind(b, v);
        let m3 = m2.bind(c, v);
        out.insert(m1);
        out.insert(m2);
        out.insert(m3);
        out.insert(Mapping::new().bind(Variable::new("x"), v));
    }
    out
}

fn bench_maximal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ns_maximal");
    for n in [50usize, 200, 800] {
        let set = chained_set(n);
        group.bench_with_input(BenchmarkId::new("sorted", set.len()), &set, |b, s| {
            b.iter(|| black_box(s.maximal()))
        });
        group.bench_with_input(BenchmarkId::new("naive", set.len()), &set, |b, s| {
            b.iter(|| black_box(s.maximal_naive()))
        });
    }
    group.finish();
}

fn bench_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("ns_elimination");
    group.sample_size(10);
    for depth in [1usize, 2, 3] {
        let p = nested_ns_pattern(depth);
        group.bench_with_input(BenchmarkId::new("translate", depth), &p, |b, p| {
            b.iter(|| black_box(eliminate_ns(black_box(p), false).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maximal, bench_elimination);
criterion_main!(benches);
