//! Experiment E11 (combined complexity): evaluation cost of the
//! hardness-reduction instances of Theorems 7.1–7.4 as the source
//! instance grows. The exponential scaling in the variable count *is*
//! the paper's hardness claim made visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_logic::coloring::UGraph;
use owql_logic::Formula;
use owql_theory::reduction::{bh, construct_np, dp, pnp, sat_gadget};
use std::hint::black_box;

/// A satisfiable chain formula over `n` variables.
fn chain_formula(n: usize) -> Formula {
    Formula::conj((0..n - 1).map(|i| Formula::var(i).or(Formula::var(i + 1))))
}

/// An unsatisfiable formula mentioning `n` variables.
fn contradiction(n: usize) -> Formula {
    Formula::var(0)
        .and(Formula::var(0).not())
        .and(Formula::conj((0..n).map(Formula::var)))
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_dp_theorem_7_1");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let inst = dp::sat_unsat_instance(&chain_formula(n), &contradiction(n), &format!("bdp{n}"));
        group.bench_with_input(BenchmarkId::new("decide", n), &inst, |b, i| {
            b.iter(|| black_box(i.instance.decide()))
        });
    }
    group.finish();
}

fn bench_bh(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_bh_theorem_7_2");
    group.sample_size(10);
    let cases = [
        ("C4_in_{2}", UGraph::cycle(4), vec![2]),
        ("C5_in_{3}", UGraph::cycle(5), vec![3]),
    ];
    for (name, h, ms) in cases {
        let inst = bh::chromatic_in_set_instance(&h, &ms, &format!("bbh_{name}"));
        group.bench_with_input(BenchmarkId::new("decide", name), &inst, |b, i| {
            b.iter(|| black_box(i.decide()))
        });
    }
    group.finish();
}

fn bench_pnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_pnp_theorem_7_3");
    group.sample_size(10);
    for m in [2usize, 4, 6] {
        let phi = Formula::var(0).and(Formula::var(1).not());
        let inst = pnp::max_odd_sat_instance(&phi, m, &format!("bpnp{m}"));
        group.bench_with_input(BenchmarkId::new("decide", m), &inst, |b, i| {
            b.iter(|| black_box(i.decide()))
        });
    }
    group.finish();
}

fn bench_construct_np(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_construct_np_theorem_7_4");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let inst = construct_np::sat_construct_instance(&chain_formula(n), &format!("bcn{n}"));
        group.bench_with_input(BenchmarkId::new("decide", n), &inst, |b, i| {
            b.iter(|| black_box(i.decide()))
        });
    }
    group.finish();
}

fn bench_gadget_wall(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_exponential_wall");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let g = sat_gadget::sat_gadget(&Formula::var(0).or(Formula::var(1)), n, &format!("bw{n}"));
        group.bench_with_input(BenchmarkId::new("sat_pattern_eval", n), &g, |b, g| {
            b.iter(|| black_box(owql_eval::evaluate(&g.sat_pattern, &g.graph)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dp,
    bench_bh,
    bench_pnp,
    bench_construct_np,
    bench_gadget_wall
);
criterion_main!(benches);
