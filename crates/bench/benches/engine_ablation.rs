//! Engine ablation (DESIGN.md §5): the reference evaluator (the
//! paper's semantics verbatim, full scans) against the indexed engine
//! (SPO/POS/OSP indexes + greedy join ordering), plus index
//! construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_bench::social;
use owql_eval::{evaluate, Engine, ExecOpts};
use owql_exec::Pool;
use owql_parser::parse_pattern;

fn eval_seq(engine: &Engine, p: &owql_algebra::Pattern) -> owql_algebra::MappingSet {
    engine
        .run(p, &ExecOpts::seq(), &Pool::sequential())
        .expect("unlimited budget cannot time out")
        .mappings
}

use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ablation");
    group.sample_size(15);
    let query =
        parse_pattern("(((?a, follows, ?b) AND (?b, follows, ?c)) AND (?c, was_born_in, Chile))")
            .unwrap();
    for people in [100usize, 400] {
        let graph = social(people);
        let engine = Engine::new(&graph);
        group.bench_with_input(
            BenchmarkId::new("reference_scan", people),
            &query,
            |b, p| b.iter(|| black_box(evaluate(black_box(p), &graph))),
        );
        group.bench_with_input(
            BenchmarkId::new("indexed_engine", people),
            &query,
            |b, p| b.iter(|| black_box(eval_seq(&engine, black_box(p)))),
        );
        group.bench_with_input(BenchmarkId::new("index_build", people), &graph, |b, g| {
            b.iter(|| black_box(Engine::new(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
