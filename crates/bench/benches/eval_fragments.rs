//! Experiment E11 (empirical side): evaluation cost per fragment of the
//! paper's hierarchy (AF, AUF, well-designed AOF, SP–SPARQL,
//! USP–SPARQL) as the graph grows — the data-complexity face of the
//! Section 7 landscape (combined complexity is exercised by the
//! `reductions` bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owql_bench::{fragment_suite, social};
use owql_eval::{Engine, ExecOpts};
use owql_exec::Pool;
use std::hint::black_box;

fn eval_seq(engine: &Engine, p: &owql_algebra::Pattern) -> owql_algebra::MappingSet {
    engine
        .run(p, &ExecOpts::seq(), &Pool::sequential())
        .expect("unlimited budget cannot time out")
        .mappings
}

fn bench_fragments(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_fragments");
    group.sample_size(20);
    for people in [100usize, 400, 1600] {
        let graph = social(people);
        let engine = Engine::new(&graph);
        for (name, pattern) in fragment_suite() {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{people}p/{}t", graph.len())),
                &pattern,
                |b, p| b.iter(|| black_box(eval_seq(&engine, black_box(p)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fragments);
criterion_main!(benches);
