//! # owql-eval
//!
//! Evaluation engines for NS–SPARQL graph patterns and CONSTRUCT
//! queries.
//!
//! Two engines are provided:
//!
//! * [`reference::evaluate`] — the *reference evaluator*, a literal
//!   transcription of the paper's recursive semantics `⟦·⟧G`
//!   (Sections 2.1, 5.1). Triple patterns scan the whole graph; every
//!   operator calls the corresponding [`owql_algebra::MappingSet`]
//!   operation. It is deliberately unoptimized: it *is* the spec.
//! * [`engine::Engine`] — the indexed engine: triple patterns are
//!   answered through SPO/POS/OSP indexes, `AND`-spines are evaluated
//!   with greedy selectivity-ordered index nested-loop joins, and
//!   bindings propagate into later triple patterns. Its results are
//!   cross-validated against the reference evaluator by a large
//!   randomized test suite (and the `engine_ablation` benchmark measures
//!   the gap).
//!
//! CONSTRUCT evaluation (Section 6.1) lives in [`mod@construct`].
//!
//! The single entry point of the indexed engine is [`Engine::run`]: an
//! [`ExecOpts`] value selects sequential vs pool-parallel scheduling,
//! span tracing (the outcome then carries an [`owql_obs::Profile`]),
//! the static optimizer, and a cooperative deadline enforced by an
//! [`EvalBudget`] (exceeded budgets surface as [`EvalError::Timeout`]).
//! [`Engine::explain_analyze`] renders observed row counts and wall
//! times as an [`plan::AnnotatedPlan`].

pub(crate) mod columnar;
pub mod construct;
pub mod engine;
pub mod optimize;
pub mod plan;
pub mod reference;
pub mod run;
pub mod sharded;

pub use construct::construct;
pub use engine::Engine;
pub use optimize::{optimize, optimize_with_stats};
pub use plan::{AnnotatedNode, AnnotatedPlan, Plan};
pub use reference::evaluate;
pub use run::{
    check_admission, ColumnarPath, EvalBudget, EvalError, ExecMode, ExecOpts, ExecOptsBuilder,
    RunOutcome,
};
pub use sharded::try_run_sharded;
