//! The unified execution API: one options struct instead of a method
//! matrix.
//!
//! Before this module the engine's entry points formed a 2×2×… grid —
//! `evaluate`, `evaluate_parallel`, `evaluate_traced`,
//! `evaluate_parallel_traced`, plus `profile{,_parallel}` one crate up
//! — and every new execution concern (a deadline, a cache toggle)
//! threatened to double it again. Pérez/Arenas/Gutierrez frame
//! evaluation as a single semantic function `⟦P⟧G` parameterized by the
//! pattern; the *strategy* (parallelism, tracing, caching, deadlines)
//! is an engine concern that belongs in data, not in method names.
//!
//! [`ExecOpts`] is that data. [`Engine::run`](crate::Engine::run)
//! consumes it and returns a [`RunOutcome`]; `owql-store` wraps the
//! same options in a `QueryRequest` and adds cache + epoch handling;
//! `owql-server` maps them from query-string parameters. (The legacy
//! `evaluate*` method matrix lived on for two releases as
//! `#[deprecated]` one-liners over this seam and has been removed.)
//!
//! [`ExecOpts::max_class`] is the **admission ceiling**: before doing
//! any work, [`Engine::run`](crate::Engine::run) statically classifies
//! the pattern with `owql-lint` and refuses ([`EvalError::AdmissionDenied`])
//! any query whose fragment's complexity class ranks above the ceiling
//! — the Section 7 landscape (`P ⊆ NP/coNP ⊆ DP ⊆ BH₂ₖ ⊆ P^NP_∥ ⊆
//! PSPACE`) used as an operational resource bound.
//!
//! Deadlines are enforced *cooperatively*: an [`EvalBudget`] derived
//! from [`ExecOpts::deadline`] is threaded through every evaluation
//! path and checked between operators (and periodically inside the
//! long nested-loop joins). An exceeded budget surfaces as
//! [`EvalError::Timeout`] — the evaluation unwinds cleanly instead of
//! hanging, which is what lets a networked front-end map it to `504`
//! without poisoning its worker pool.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How the operators are scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded, operator-by-operator evaluation.
    #[default]
    Seq,
    /// Fan out UNION spines, partitioned AND-spines, and NS filtering
    /// across the caller-supplied [`owql_exec::Pool`].
    Parallel,
}

/// Execution options for one query run — the single knob set behind
/// [`Engine::run`](crate::Engine::run), `Store::query_request`, and the
/// HTTP server.
///
/// ```
/// use owql_eval::ExecOpts;
/// use std::time::Duration;
/// let opts = ExecOpts::parallel()
///     .traced()
///     .with_deadline(Duration::from_millis(250));
/// assert!(opts.trace);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOpts {
    /// Sequential or pool-parallel scheduling.
    pub mode: ExecMode,
    /// Record per-operator spans and pool stats; the outcome then
    /// carries a [`owql_obs::Profile`].
    pub trace: bool,
    /// Consult/fill the epoch-keyed result cache (only meaningful for
    /// store-level entry points; the bare engine has no cache).
    pub cache: bool,
    /// Run the static optimizer before evaluating.
    pub optimize: bool,
    /// Wall-clock budget for the evaluation; exceeding it returns
    /// [`EvalError::Timeout`] instead of running to completion.
    pub deadline: Option<Duration>,
    /// Admission ceiling: refuse the query up front with
    /// [`EvalError::AdmissionDenied`] if its statically determined
    /// complexity class ranks above this one. `None` admits everything.
    pub max_class: Option<owql_lint::ComplexityClass>,
    /// Columnar dictionary-encoded evaluation: `Some(b)` forces it on
    /// or off; `None` defers to the `OWQL_COLUMNAR` environment
    /// variable (`0`/`false`/`off` disables; anything else — including
    /// unset — enables). Traced runs stay columnar — the id-batch
    /// evaluator records its own spans. The engine falls back to the
    /// term-at-a-time path only when the backend serves no id view, the
    /// pattern binds no variables, or its variable frame does not fit
    /// the 64-column domain mask; every such fallback is reported in
    /// [`RunOutcome::columnar_path`] (and, for traced runs, the
    /// profile's `columnar.fallbacks` counter) rather than happening
    /// silently.
    pub columnar: Option<bool>,
    /// Slow-query threshold: store-level entry points log any query
    /// whose end-to-end latency reaches this bound into the metrics
    /// hub's ring-buffer slow-query log. `None` disables capture.
    pub slow_query: Option<Duration>,
}

impl Default for ExecOpts {
    /// [`ExecOpts::seq`].
    fn default() -> ExecOpts {
        ExecOpts::seq()
    }
}

impl ExecOpts {
    /// Sequential evaluation, cache on, no tracing, no deadline.
    pub fn seq() -> ExecOpts {
        ExecOpts {
            mode: ExecMode::Seq,
            trace: false,
            cache: true,
            optimize: false,
            deadline: None,
            max_class: None,
            columnar: None,
            slow_query: None,
        }
    }

    /// Pool-parallel evaluation, cache on, no tracing, no deadline.
    pub fn parallel() -> ExecOpts {
        ExecOpts {
            mode: ExecMode::Parallel,
            ..ExecOpts::seq()
        }
    }

    /// Enables span/metric recording for this run.
    pub fn traced(mut self) -> ExecOpts {
        self.trace = true;
        self
    }

    /// Bypasses (and does not fill) the store-level result cache.
    pub fn uncached(mut self) -> ExecOpts {
        self.cache = false;
        self
    }

    /// Runs the static optimizer on the pattern first.
    pub fn optimized(mut self) -> ExecOpts {
        self.optimize = true;
        self
    }

    /// Caps the evaluation's wall-clock time.
    pub fn with_deadline(mut self, limit: Duration) -> ExecOpts {
        self.deadline = Some(limit);
        self
    }

    /// Caps the admissible complexity class (see [`check_admission`]).
    pub fn with_max_class(mut self, ceiling: owql_lint::ComplexityClass) -> ExecOpts {
        self.max_class = Some(ceiling);
        self
    }

    /// Forces the columnar id-encoded evaluation path on or off for
    /// this run, overriding the `OWQL_COLUMNAR` environment default.
    pub fn with_columnar(mut self, enabled: bool) -> ExecOpts {
        self.columnar = Some(enabled);
        self
    }

    /// Sets the slow-query capture threshold (see
    /// [`ExecOpts::slow_query`]).
    pub fn with_slow_query(mut self, threshold: Duration) -> ExecOpts {
        self.slow_query = Some(threshold);
        self
    }

    /// Whether this run should try the columnar path (the engine still
    /// falls back when the backend or query shape cannot serve it).
    pub fn columnar_enabled(&self) -> bool {
        self.columnar.unwrap_or_else(columnar_env_default)
    }

    /// A builder over [`ExecOpts::seq`] defaults. The chainable
    /// `ExecOpts` methods mutate a `Copy` value, which works until a
    /// caller needs to apply options conditionally; the builder gives
    /// that callers-with-knobs shape a stable home so new fields stop
    /// breaking struct-literal construction sites.
    ///
    /// ```
    /// use owql_eval::{ExecMode, ExecOpts};
    /// let opts = ExecOpts::builder()
    ///     .mode(ExecMode::Parallel)
    ///     .trace(true)
    ///     .deadline_ms(Some(250))
    ///     .build();
    /// assert!(opts.trace && opts.mode == ExecMode::Parallel);
    /// ```
    pub fn builder() -> ExecOptsBuilder {
        ExecOptsBuilder {
            opts: ExecOpts::seq(),
        }
    }
}

/// Chainable constructor for [`ExecOpts`]; see [`ExecOpts::builder`].
#[derive(Clone, Copy, Debug)]
pub struct ExecOptsBuilder {
    opts: ExecOpts,
}

impl ExecOptsBuilder {
    /// Sequential or pool-parallel scheduling.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Record per-operator spans and pool stats.
    pub fn trace(mut self, trace: bool) -> Self {
        self.opts.trace = trace;
        self
    }

    /// Consult/fill the store-level result cache.
    pub fn cache(mut self, cache: bool) -> Self {
        self.opts.cache = cache;
        self
    }

    /// Run the static optimizer first.
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.opts.optimize = optimize;
        self
    }

    /// Wall-clock budget; `None` runs to completion.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.opts.deadline = deadline;
        self
    }

    /// Wall-clock budget in milliseconds (the `/v1` wire unit).
    pub fn deadline_ms(self, ms: Option<u64>) -> Self {
        self.deadline(ms.map(Duration::from_millis))
    }

    /// Admission ceiling; `None` admits everything.
    pub fn max_class(mut self, ceiling: Option<owql_lint::ComplexityClass>) -> Self {
        self.opts.max_class = ceiling;
        self
    }

    /// Columnar path override; `None` defers to `OWQL_COLUMNAR`.
    pub fn columnar(mut self, columnar: Option<bool>) -> Self {
        self.opts.columnar = columnar;
        self
    }

    /// Slow-query capture threshold; `None` disables capture.
    pub fn slow_query(mut self, threshold: Option<Duration>) -> Self {
        self.opts.slow_query = threshold;
        self
    }

    /// The finished options value.
    pub fn build(self) -> ExecOpts {
        self.opts
    }
}

/// The process-wide `OWQL_COLUMNAR` default: on unless explicitly
/// disabled (`0`, `false`, or `off`). Read once — it is a CI-level
/// escape hatch, not a per-query switch (use
/// [`ExecOpts::with_columnar`] for that).
fn columnar_env_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        !matches!(
            std::env::var("OWQL_COLUMNAR").as_deref().map(str::trim),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Enforces [`ExecOpts::max_class`]: classifies `pattern` with the
/// static analyzer and returns [`EvalError::AdmissionDenied`] when its
/// complexity class ranks strictly above the configured ceiling. A
/// `None` ceiling admits everything without classifying.
pub fn check_admission(
    pattern: &owql_algebra::pattern::Pattern,
    opts: &ExecOpts,
) -> Result<(), EvalError> {
    let Some(ceiling) = opts.max_class else {
        return Ok(());
    };
    let fragment = owql_lint::classify(pattern);
    let class = fragment.complexity();
    if class.rank() > ceiling.rank() {
        return Err(EvalError::AdmissionDenied {
            class,
            ceiling,
            fragment: fragment.to_string(),
        });
    }
    Ok(())
}

/// Why an evaluation did not produce an answer set.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// The cooperative deadline expired mid-evaluation.
    Timeout {
        /// The budget that was exceeded.
        limit: Duration,
    },
    /// The query's statically determined complexity class exceeds the
    /// configured [`ExecOpts::max_class`] ceiling.
    AdmissionDenied {
        /// The class the query was classified into.
        class: owql_lint::ComplexityClass,
        /// The ceiling it exceeded.
        ceiling: owql_lint::ComplexityClass,
        /// Display name of the paper fragment the classifier chose.
        fragment: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Timeout { limit } => {
                write!(
                    f,
                    "evaluation exceeded its {}ms deadline",
                    limit.as_millis()
                )
            }
            EvalError::AdmissionDenied {
                class,
                ceiling,
                fragment,
            } => {
                write!(
                    f,
                    "query admission denied: statically classified as {fragment}, whose \
                     evaluation is {class}-hard, above the configured {ceiling} ceiling"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Which engine actually answered a run — the columnar id-batch
/// evaluator, a forced fallback to the term-at-a-time engine, or the
/// term engine because columnar was never requested. Lets store-level
/// metrics count fallbacks even for untraced runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ColumnarPath {
    /// Columnar evaluation was not requested for this run.
    #[default]
    Disabled,
    /// The columnar engine served the answer.
    Used,
    /// Columnar was requested but the backend or query shape could not
    /// serve it (no id view, no variables, or frame wider than the
    /// 64-column domain mask) — the term-at-a-time engine answered.
    Fallback,
}

/// What [`Engine::run`](crate::Engine::run) produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The answer set `⟦P⟧G`.
    pub mappings: owql_algebra::MappingSet,
    /// The recorded profile — `Some` iff [`ExecOpts::trace`] was set.
    pub profile: Option<owql_obs::Profile>,
    /// Which engine answered (see [`ColumnarPath`]).
    pub columnar_path: ColumnarPath,
    /// Certified pruning rewrites the optimizer applied before the
    /// engine saw the plan (all-zero unless [`ExecOpts::optimize`] was
    /// set and a lint-proven prune fired).
    pub prunes: owql_obs::PruneObs,
}

/// How many candidate mappings a nested-loop join processes between
/// deadline checks. Checks read the clock, so they are amortized over a
/// block of bindings; one block is far below any usable deadline.
pub(crate) const BUDGET_CHECK_STRIDE: usize = 1024;

/// A cooperative wall-clock budget, threaded by reference through every
/// evaluation path of [`Engine`](crate::Engine).
///
/// The budget is shared across pool workers (it is `Sync`); once any
/// checker observes the deadline passed, the `expired` flag makes every
/// subsequent [`EvalBudget::check`] fail without reading the clock, so
/// a timed-out parallel evaluation unwinds quickly on all workers.
#[derive(Debug)]
pub struct EvalBudget {
    started: Instant,
    limit: Option<Duration>,
    deadline: Option<Instant>,
    expired: AtomicBool,
}

impl EvalBudget {
    /// A budget that never expires: [`EvalBudget::check`] is a single
    /// branch on `None`.
    pub fn unlimited() -> EvalBudget {
        let now = Instant::now();
        EvalBudget {
            started: now,
            limit: None,
            deadline: None,
            expired: AtomicBool::new(false),
        }
    }

    /// A budget of `limit` wall-clock time, starting now.
    pub fn with_deadline(limit: Duration) -> EvalBudget {
        let now = Instant::now();
        EvalBudget {
            started: now,
            limit: Some(limit),
            deadline: now.checked_add(limit),
            expired: AtomicBool::new(false),
        }
    }

    /// The budget an [`ExecOpts`] asks for.
    pub fn from_opts(opts: &ExecOpts) -> EvalBudget {
        match opts.deadline {
            Some(limit) => EvalBudget::with_deadline(limit),
            None => EvalBudget::unlimited(),
        }
    }

    /// `true` once the deadline has been observed as passed.
    pub fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Returns `Err(Timeout)` iff the deadline has passed. Called
    /// between operators and every `BUDGET_CHECK_STRIDE` candidate
    /// bindings inside join loops.
    pub fn check(&self) -> Result<(), EvalError> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let limit = self.limit.expect("deadline implies limit");
        if self.expired.load(Ordering::Relaxed) || Instant::now() >= deadline {
            self.expired.store(true, Ordering::Relaxed);
            return Err(EvalError::Timeout { limit });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let budget = EvalBudget::unlimited();
        for _ in 0..10_000 {
            assert_eq!(budget.check(), Ok(()));
        }
        assert!(!budget.is_expired());
    }

    #[test]
    fn zero_deadline_expires_immediately_and_stays_expired() {
        let budget = EvalBudget::with_deadline(Duration::ZERO);
        assert!(matches!(
            budget.check(),
            Err(EvalError::Timeout { limit }) if limit == Duration::ZERO
        ));
        assert!(budget.is_expired());
        assert!(budget.check().is_err());
    }

    #[test]
    fn generous_deadline_passes_checks() {
        let budget = EvalBudget::with_deadline(Duration::from_secs(3600));
        assert_eq!(budget.check(), Ok(()));
        assert!(!budget.is_expired());
    }

    #[test]
    fn expiry_is_visible_across_threads() {
        let budget = EvalBudget::with_deadline(Duration::ZERO);
        assert!(budget.check().is_err());
        std::thread::scope(|s| {
            s.spawn(|| assert!(budget.is_expired() && budget.check().is_err()))
                .join()
                .expect("checker thread");
        });
    }

    #[test]
    fn opts_builders_compose() {
        let opts = ExecOpts::parallel()
            .traced()
            .uncached()
            .optimized()
            .with_deadline(Duration::from_millis(5))
            .with_slow_query(Duration::from_millis(100));
        assert_eq!(opts.mode, ExecMode::Parallel);
        assert!(opts.trace && opts.optimize && !opts.cache);
        assert_eq!(opts.deadline, Some(Duration::from_millis(5)));
        assert_eq!(opts.slow_query, Some(Duration::from_millis(100)));
        assert_eq!(ExecOpts::seq().slow_query, None);
        assert_eq!(ExecOpts::seq(), ExecOpts::default());
        assert_eq!(opts.max_class, None);
        let capped = opts.with_max_class(owql_lint::ComplexityClass::Dp);
        assert_eq!(capped.max_class, Some(owql_lint::ComplexityClass::Dp));
    }

    #[test]
    fn admission_compares_ranks_against_the_ceiling() {
        use owql_lint::ComplexityClass;
        let af = owql_parser::parse_pattern("((?x, a, b) AND (?x, c, ?y))").unwrap();
        let ns = owql_parser::parse_pattern("NS(((?x, a, b) OPT (?x, c, ?y)))").unwrap();

        // No ceiling admits everything.
        assert_eq!(check_admission(&ns, &ExecOpts::seq()), Ok(()));

        let capped = ExecOpts::seq().with_max_class(ComplexityClass::Np);
        assert_eq!(check_admission(&af, &capped), Ok(()));
        let denied = check_admission(&ns, &capped).unwrap_err();
        let EvalError::AdmissionDenied {
            class,
            ceiling,
            fragment,
        } = &denied
        else {
            panic!("expected AdmissionDenied, got {denied:?}");
        };
        assert_eq!(*class, ComplexityClass::Pspace);
        assert_eq!(*ceiling, ComplexityClass::Np);
        assert_eq!(fragment, "NS-SPARQL");
        assert!(denied
            .to_string()
            .contains("above the configured NP ceiling"));

        // A class at exactly the ceiling is admitted; coNP passes an
        // NP ceiling (same rank).
        let wd = owql_parser::parse_pattern("((?x, a, b) OPT (?x, c, ?y))").unwrap();
        assert_eq!(check_admission(&wd, &capped), Ok(()));
    }

    #[test]
    fn timeout_displays_limit() {
        let e = EvalError::Timeout {
            limit: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("250ms"));
    }
}
