//! A static, semantics-preserving pattern optimizer.
//!
//! The rewrite rules are all justified by facts established in the
//! paper or by the algebra's definitions, and every rule is
//! property-tested for exact equivalence against the reference
//! evaluator:
//!
//! 1. **Condition folding** — boolean simplification of FILTER
//!    conditions (`¬true → false`, `R ∧ true → R`, ...).
//! 2. **Filter fusion** — `((P FILTER R₁) FILTER R₂) →
//!    (P FILTER R₁ ∧ R₂)`.
//! 3. *(reserved — filter/UNION distribution lives in the normal-form
//!    module, Prop D.1: it grows the tree, so the optimizer skips it).
//! 4. **Filter pushdown** — `(P₁ AND P₂) FILTER R → (P₁ FILTER R) AND
//!    P₂` when `var(R)` is *certainly bound* by `P₁`
//!    ([`owql_algebra::analysis::certainly_bound_vars`]), shrinking
//!    join inputs before the join.
//! 5. **Projection fusion** — `SELECT V (SELECT W P) → SELECT (V∩W) P`;
//!    `SELECT V P → P` when `var(P) ⊆ V`.
//! 6. **NS idempotence** — `NS(NS(P)) → NS(P)` (maximality is
//!    idempotent).
//! 7. **NS elision on subsumption-free fragments** — `NS(P) → P` when
//!    `P ∈ SPARQL[AOF]` or `P ∈ SPARQL[AFS]`: Section 5.2 of the paper
//!    establishes that every pattern in these fragments is
//!    subsumption-free, so taking maximal answers is the identity.
//! 8. **OPT normal form** — `(P₁ OPT P₂) AND P₃ → (P₁ AND P₃) OPT P₂`
//!    and `P₁ AND (P₂ OPT P₃) → (P₁ AND P₂) OPT P₃`, lifting OPTs
//!    above ANDs so the AND-spine flattening of the engine sees the
//!    full join spine. These equivalences hold only on *well-designed*
//!    patterns (Pérez, Arenas, Gutierrez, TODS 2009), so the rewrite
//!    runs only when the `owql-lint` analyzer proves the pattern
//!    well-designed ([`owql_lint::well_designedness`]), per UNION
//!    disjunct for the AUOF case — the analyzer verdict consumed as a
//!    plan hint.
//!
//! On top of the shrink rules, [`optimize_with_stats`] runs one
//! **certified pruning** pass driven by the `owql-lint`
//! semantic dataflow analysis — the analyzer verdicts consumed as
//! proofs rather than hints:
//!
//! * **FL003 / unsatisfiable filter** — a `FILTER` whose condition the
//!   constraint-propagation check ([`owql_lint::filter_satisfiable`])
//!   refutes against the binding lattice denotes `∅` on every graph;
//!   the subtree is replaced by an always-empty marker.
//! * **UN002 / subsumed branch** — a UNION branch whose answers are
//!   contained in a sibling's on every graph
//!   ([`owql_lint::branch_subsumes`], AND/FILTER fragment only) is
//!   dropped from the union spine.
//! * **BD001 / collapsible OPT** — `(P₁ OPT P₂) FILTER R` collapses to
//!   `(P₁ AND P₂) FILTER R` when `R` requires a binding that only the
//!   optional side can certainly supply: rows where the OPT degraded
//!   to `P₁` alone cannot satisfy `R`, so the outer join is a join.
//!
//! Each prune is an exact answer-set equality (not mere containment),
//! so the rewrites stay sound under any enclosing context — including
//! non-monotone `NS` and `MINUS`. Provable emptiness propagates
//! upward through the algebra (`∅ AND P → ∅`, `P OPT ∅ → P`,
//! `P MINUS ∅ → P`, a UNION drops empty branches, …). The counts of
//! applied prunes surface in [`owql_obs::PruneObs`] and flow into
//! query profiles, the metrics hub, and Prometheus
//! `owql_lint_prunes_total`.
//!
//! The optimizer is purely syntactic and terminates: each pass either
//! strictly shrinks the tree, is applied once bottom-up, or (rule 8)
//! strictly decreases the number of ANDs above an OPT.

use owql_algebra::analysis::{in_fragment, pattern_vars, triple_patterns, Operators};
use owql_algebra::condition::Condition;
use owql_algebra::pattern::Pattern;
use owql_algebra::well_designed::well_designed_aof;
use owql_lint::{branch_subsumes, filter_satisfiable, must_bind, Bindings, Satisfiability};
use owql_obs::PruneObs;

/// Simplifies a FILTER condition by constant folding.
pub fn simplify_condition(r: &Condition) -> Condition {
    match r {
        Condition::Not(inner) => match simplify_condition(inner) {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(doubly) => *doubly,
            other => other.not(),
        },
        Condition::And(a, b) => match (simplify_condition(a), simplify_condition(b)) {
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (Condition::True, other) | (other, Condition::True) => other,
            (a, b) => a.and(b),
        },
        Condition::Or(a, b) => match (simplify_condition(a), simplify_condition(b)) {
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (Condition::False, other) | (other, Condition::False) => other,
            (a, b) => a.or(b),
        },
        Condition::EqVar(v, w) if v == w => Condition::Bound(*v),
        atom => atom.clone(),
    }
}

/// One bottom-up optimization pass.
fn pass(p: &Pattern) -> Pattern {
    match p {
        Pattern::Triple(t) => Pattern::Triple(*t),
        Pattern::And(a, b) => pass(a).and(pass(b)),
        Pattern::Union(a, b) => pass(a).union(pass(b)),
        Pattern::Opt(a, b) => pass(a).opt(pass(b)),
        Pattern::Minus(a, b) => pass(a).minus(pass(b)),
        Pattern::Filter(q, r) => {
            let q = pass(q);
            let r = simplify_condition(r);
            match (q, r) {
                // Rule 1: trivially-true filter disappears.
                (q, Condition::True) => q,
                // Rule 2: fuse stacked filters.
                (Pattern::Filter(inner, r1), r2) => {
                    pass(&Pattern::Filter(inner, r1).filter(r2).fuse_filters())
                }
                // Rule 4: push below AND when safe. Certain bindings
                // come from the lint dataflow lattice — strictly
                // richer than the old syntactic certainly-bound set
                // (it sees through FILTERs that force bindings), and
                // still an under-approximation, so the push stays
                // sound: joined rows agree with the pushed-side row on
                // every certainly-bound variable.
                (Pattern::And(a, b), r) => {
                    if r.vars().is_subset(&Bindings::of(&a).certain) {
                        pass(&a.filter(r).and(*b))
                    } else if r.vars().is_subset(&Bindings::of(&b).certain) {
                        pass(&a.and(b.filter(r)))
                    } else {
                        Pattern::And(a, b).filter(r)
                    }
                }
                (q, r) => q.filter(r),
            }
        }
        Pattern::Select(v, q) => {
            let q = pass(q);
            match q {
                // Rule 5a: fuse stacked projections.
                Pattern::Select(w, inner) => {
                    let vw = v.intersection(&w).copied().collect();
                    pass(&Pattern::Select(vw, inner))
                }
                // Rule 5b: drop a projection that keeps everything.
                q if pattern_vars(&q).is_subset(v) => q,
                q => Pattern::Select(v.clone(), Box::new(q)),
            }
        }
        Pattern::Ns(q) => {
            let q = pass(q);
            match q {
                // Rule 6: NS is idempotent.
                Pattern::Ns(inner) => Pattern::Ns(inner),
                // Rule 7: Section 5.2 — SPARQL[AOF] and SPARQL[AFS]
                // patterns are subsumption-free, so NS is the identity.
                q if in_fragment(&q, Operators::AOF) || in_fragment(&q, Operators::AFS) => q,
                q => q.ns(),
            }
        }
    }
}

/// Helper used by rule 2: `(P FILTER R₁) FILTER R₂ → P FILTER R₁∧R₂`.
trait FuseFilters {
    fn fuse_filters(self) -> Pattern;
}

impl FuseFilters for Pattern {
    fn fuse_filters(self) -> Pattern {
        if let Pattern::Filter(outer, r2) = self {
            if let Pattern::Filter(inner, r1) = *outer {
                return inner.filter(simplify_condition(&r1.and(r2)));
            }
            return outer.filter(r2);
        }
        self
    }
}

/// One bottom-up OPT-normal-form pass (rule 8). Only called on
/// subtrees the analyzer proved well-designed, where the two lift
/// rules are sound equivalences.
fn opt_nf_pass(p: &Pattern) -> Pattern {
    match p {
        Pattern::And(a, b) => {
            let a = opt_nf_pass(a);
            let b = opt_nf_pass(b);
            if let Pattern::Opt(p1, p2) = a {
                // (P₁ OPT P₂) AND P₃ → (P₁ AND P₃) OPT P₂
                p1.and(b).opt(*p2)
            } else if let Pattern::Opt(p2, p3) = b {
                // P₁ AND (P₂ OPT P₃) → (P₁ AND P₂) OPT P₃
                a.and(*p2).opt(*p3)
            } else {
                a.and(b)
            }
        }
        Pattern::Opt(a, b) => opt_nf_pass(a).opt(opt_nf_pass(b)),
        Pattern::Filter(q, r) => opt_nf_pass(q).filter(r.clone()),
        other => other.clone(),
    }
}

/// Rewrites a pattern the analyzer proved well-designed (AOF, or AUOF
/// per top-level UNION disjunct) into OPT normal form. Conservative on
/// both ends: a subtree that fails `well_designed_aof` is returned
/// unchanged, and a rewrite step whose result would not stay
/// well-designed is discarded.
fn opt_normal_form(p: &Pattern) -> Pattern {
    if let Pattern::Union(a, b) = p {
        return opt_normal_form(a).union(opt_normal_form(b));
    }
    if well_designed_aof(p).is_err() {
        return p.clone();
    }
    let mut current = p.clone();
    // Each effective pass lifts at least one OPT past an AND, so the
    // pattern size bounds the number of passes.
    for _ in 0..p.size() {
        let next = opt_nf_pass(&current);
        if next == current || well_designed_aof(&next).is_err() {
            break;
        }
        current = next;
    }
    current
}

/// The shrink rules (1–7) to a fixpoint (bounded number of passes;
/// each pass is linear in the tree).
fn shrink_fixpoint(p: &Pattern) -> Pattern {
    let mut current = p.clone();
    for _ in 0..8 {
        let next = pass(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

/// A pruned subtree: its rewritten pattern, and whether the analyzer
/// proved it denotes `∅` on every graph.
struct Pruned {
    pattern: Pattern,
    empty: bool,
}

impl Pruned {
    fn keep(pattern: Pattern) -> Pruned {
        Pruned {
            pattern,
            empty: false,
        }
    }

    /// Marks a subtree provably empty. The carried pattern is an
    /// always-empty placeholder ([`empty_marker`]) in case emptiness
    /// cannot be absorbed by the enclosing operator (e.g. at the
    /// root): it evaluates to `∅` on every graph, cheaply.
    fn empty(original: &Pattern) -> Pruned {
        Pruned {
            pattern: empty_marker(original),
            empty: true,
        }
    }
}

/// `t₀ FILTER false` for the most-constant triple pattern `t₀` of the
/// pruned subtree — denotes `∅` on every graph, and the engine's scan
/// over the most-selective access path keeps even the degenerate
/// evaluation cheap.
fn empty_marker(original: &Pattern) -> Pattern {
    let t = triple_patterns(original)
        .into_iter()
        .min_by_key(|t| t.vars().len())
        .expect("every pattern contains a triple");
    Pattern::Triple(t).filter(Condition::False)
}

/// One bottom-up certified-pruning pass. Every rewrite is an exact
/// answer-set equality proven by the `owql-lint` semantic dataflow
/// analysis (see the module docs), so the pass is sound in any
/// enclosing context, including `NS` and `MINUS`. Counts each applied
/// prune in `obs`; emptiness discovered below propagates upward
/// through the algebra without further counting.
fn prune(p: &Pattern, obs: &mut PruneObs) -> Pruned {
    match p {
        Pattern::Triple(t) => Pruned::keep(Pattern::Triple(*t)),
        // ⟦P₁ AND P₂⟧ = ⟦P₁⟧ ⋈ ⟦P₂⟧: a join with ∅ is ∅.
        Pattern::And(a, b) => {
            let a = prune(a, obs);
            let b = prune(b, obs);
            if a.empty || b.empty {
                Pruned::empty(p)
            } else {
                Pruned::keep(a.pattern.and(b.pattern))
            }
        }
        // A UNION spine drops provably-empty and subsumed branches.
        Pattern::Union(_, _) => {
            let mut kept: Vec<Pattern> = Vec::new();
            for branch in p.disjuncts() {
                let pruned = prune(branch, obs);
                if pruned.empty {
                    continue;
                }
                let branch = pruned.pattern;
                // UN002: a branch whose answers a kept sibling already
                // contains (on every graph) adds nothing to the union.
                if kept
                    .iter()
                    .any(|k| k == &branch || branch_subsumes(k, &branch))
                {
                    obs.subsumed_branches += 1;
                    continue;
                }
                // ... and a new branch can retroactively subsume
                // earlier kept ones (strictly: the reverse direction
                // was just checked).
                kept.retain(|k| {
                    if branch_subsumes(&branch, k) {
                        obs.subsumed_branches += 1;
                        false
                    } else {
                        true
                    }
                });
                kept.push(branch);
            }
            match kept.into_iter().reduce(|acc, b| acc.union(b)) {
                Some(pattern) => Pruned::keep(pattern),
                None => Pruned::empty(p),
            }
        }
        // ⟦P₁ OPT P₂⟧ = (⟦P₁⟧ ⋈ ⟦P₂⟧) ∪ (⟦P₁⟧ ∖ ⟦P₂⟧): with ⟦P₂⟧ = ∅
        // the join side vanishes and the difference is ⟦P₁⟧; with
        // ⟦P₁⟧ = ∅ both sides vanish.
        Pattern::Opt(a, b) => {
            let a = prune(a, obs);
            let b = prune(b, obs);
            if a.empty {
                Pruned::empty(p)
            } else if b.empty {
                a
            } else {
                Pruned::keep(a.pattern.opt(b.pattern))
            }
        }
        // ⟦P₁ MINUS P₂⟧ ⊆ ⟦P₁⟧, and `P MINUS ∅ = P`.
        Pattern::Minus(a, b) => {
            let a = prune(a, obs);
            let b = prune(b, obs);
            if a.empty {
                Pruned::empty(p)
            } else if b.empty {
                a
            } else {
                Pruned::keep(a.pattern.minus(b.pattern))
            }
        }
        Pattern::Filter(q, r) => {
            let q = prune(q, obs);
            if q.empty {
                return Pruned::empty(p);
            }
            let mut q = q.pattern;
            // BD001: `(P₁ OPT P₂) FILTER R` where R requires a
            // variable that P₂ certainly binds and P₁ cannot bind at
            // all. Rows from the no-match side of the OPT leave the
            // variable unbound, so R rejects them — only joined rows
            // survive, and the outer join is a plain join.
            if let Pattern::Opt(a, b) = &q {
                let ba = Bindings::of(a);
                let bb = Bindings::of(b);
                if must_bind(r)
                    .iter()
                    .any(|v| bb.certain.contains(v) && !ba.possible.contains(v))
                {
                    obs.opt_collapses += 1;
                    q = a.clone().and((**b).clone());
                }
            }
            // FL003: a condition the constraint propagation refutes
            // against the binding lattice rejects every mapping.
            if filter_satisfiable(r, &Bindings::of(&q)) == Satisfiability::Unsat {
                obs.unsat_filters += 1;
                return Pruned::empty(p);
            }
            Pruned::keep(q.filter(r.clone()))
        }
        // ⟦SELECT V P⟧ and ⟦NS(P)⟧ are projections/maximal subsets of
        // images of ⟦P⟧ — empty iff ⟦P⟧ is.
        Pattern::Select(v, q) => {
            let q = prune(q, obs);
            if q.empty {
                Pruned::empty(p)
            } else {
                Pruned::keep(Pattern::Select(v.clone(), Box::new(q.pattern)))
            }
        }
        Pattern::Ns(q) => {
            let q = prune(q, obs);
            if q.empty {
                Pruned::empty(p)
            } else {
                Pruned::keep(q.pattern.ns())
            }
        }
    }
}

/// Optimizes a pattern and reports which certified prunes fired.
///
/// Pass order: shrink rules to a fixpoint (so the prune analysis sees
/// folded conditions and fused filters), one certified-pruning pass,
/// shrink again (pruning may expose new shrink opportunities, e.g. a
/// UNION reduced to one branch under an elidable NS), then — when the
/// analyzer proves the result well-designed — the OPT-normal-form
/// lift followed by a final shrink of the lifted tree.
pub fn optimize_with_stats(p: &Pattern) -> (Pattern, PruneObs) {
    let mut obs = PruneObs::default();
    let mut current = shrink_fixpoint(p);
    current = prune(&current, &mut obs).pattern;
    current = shrink_fixpoint(&current);
    if matches!(
        owql_lint::well_designedness(&current),
        owql_lint::WellDesignedVerdict::Aof | owql_lint::WellDesignedVerdict::Auof
    ) {
        current = opt_normal_form(&current);
        current = shrink_fixpoint(&current);
    }
    (current, obs)
}

/// Optimizes a pattern to a fixpoint (bounded number of passes; each
/// pass is linear in the tree). Shorthand for [`optimize_with_stats`]
/// discarding the prune counters.
pub fn optimize(p: &Pattern) -> Pattern {
    optimize_with_stats(p).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::evaluate;
    use owql_algebra::analysis::operators;
    use owql_algebra::random::{random_pattern, PatternConfig};
    use owql_rdf::graph::graph_from;

    #[test]
    fn condition_folding() {
        let r = Condition::True.and(Condition::bound("x"));
        assert_eq!(simplify_condition(&r), Condition::bound("x"));
        assert_eq!(
            simplify_condition(&Condition::False.or(Condition::bound("x"))),
            Condition::bound("x")
        );
        assert_eq!(simplify_condition(&Condition::True.not()), Condition::False);
        assert_eq!(
            simplify_condition(&Condition::bound("x").not().not()),
            Condition::bound("x")
        );
        assert_eq!(
            simplify_condition(&Condition::eq_var("x", "x")),
            Condition::bound("x")
        );
        assert_eq!(
            simplify_condition(&Condition::False.and(Condition::bound("x"))),
            Condition::False
        );
    }

    #[test]
    fn trivial_filter_removed() {
        let p = Pattern::t("?x", "a", "b").filter(Condition::True);
        assert_eq!(optimize(&p), Pattern::t("?x", "a", "b"));
    }

    #[test]
    fn stacked_filters_fuse() {
        let p = Pattern::t("?x", "a", "?y")
            .filter(Condition::bound("x"))
            .filter(Condition::bound("y"));
        let o = optimize(&p);
        // One filter node left.
        let mut filter_count = 0;
        fn count(p: &Pattern, n: &mut usize) {
            match p {
                Pattern::Filter(q, _) => {
                    *n += 1;
                    count(q, n);
                }
                Pattern::And(a, b)
                | Pattern::Union(a, b)
                | Pattern::Opt(a, b)
                | Pattern::Minus(a, b) => {
                    count(a, n);
                    count(b, n);
                }
                Pattern::Select(_, q) | Pattern::Ns(q) => count(q, n),
                Pattern::Triple(_) => {}
            }
        }
        count(&o, &mut filter_count);
        assert_eq!(filter_count, 1);
    }

    #[test]
    fn filter_pushes_into_and() {
        let p = Pattern::t("?x", "a", "?y")
            .and(Pattern::t("?y", "b", "?z"))
            .filter(Condition::eq_const("x", "k"));
        let o = optimize(&p);
        // The filter should now sit on the left conjunct.
        match o {
            Pattern::And(left, _) => assert!(matches!(*left, Pattern::Filter(..))),
            other => panic!("expected AND at root, got {other}"),
        }
    }

    #[test]
    fn filter_not_pushed_when_unsafe() {
        // (bound(?z) || bound(?x)) must stay above the OPT: neither
        // variable is required (must_bind of a disjunction is the
        // intersection), so the OPT cannot collapse, and the filter
        // cannot move below the outer join.
        let p = Pattern::t("?x", "a", "b")
            .opt(Pattern::t("?x", "c", "?z"))
            .filter(Condition::bound("z").or(Condition::bound("x")));
        assert_eq!(optimize(&p), p);
    }

    #[test]
    fn collapsible_opt_filter_becomes_join() {
        // BD001: bound(?z) is required, ?z is certain on the optional
        // side and impossible on the left — the OPT is a join, and the
        // filter then pushes onto the right conjunct.
        let t1 = Pattern::t("?x", "a", "b");
        let t2 = Pattern::t("?x", "c", "?z");
        let p = t1.clone().opt(t2.clone()).filter(Condition::bound("z"));
        let (o, obs) = optimize_with_stats(&p);
        assert_eq!(obs.opt_collapses, 1);
        assert_eq!(obs.total(), 1);
        assert_eq!(o, t1.and(t2.filter(Condition::bound("z"))));
        let g = graph_from(&[("1", "a", "b"), ("1", "c", "2"), ("3", "a", "b")]);
        assert_eq!(evaluate(&p, &g), evaluate(&o, &g));
    }

    #[test]
    fn unsatisfiable_filter_prunes_to_empty_marker() {
        // ?y cannot equal two distinct constants at once.
        let p = Pattern::t("?x", "a", "?y")
            .filter(Condition::eq_const("y", "c1").and(Condition::eq_const("y", "c2")));
        let (o, obs) = optimize_with_stats(&p);
        assert_eq!(obs.unsat_filters, 1);
        assert_eq!(o, Pattern::t("?x", "a", "?y").filter(Condition::False));
        let g = graph_from(&[("1", "a", "c1"), ("2", "a", "c2")]);
        assert!(evaluate(&o, &g).is_empty());
        assert_eq!(evaluate(&p, &g), evaluate(&o, &g));
    }

    #[test]
    fn emptiness_propagates_through_the_algebra() {
        let empty = Pattern::t("?x", "a", "?y")
            .filter(Condition::eq_const("y", "c1").and(Condition::eq_const("y", "c2")));
        let t = Pattern::t("?u", "b", "?v");
        // P OPT ∅ → P and P MINUS ∅ → P.
        let (o, obs) = optimize_with_stats(&t.clone().opt(empty.clone()));
        assert_eq!((o, obs.unsat_filters), (t.clone(), 1));
        let (o, _) = optimize_with_stats(&t.clone().minus(empty.clone()));
        assert_eq!(o, t.clone());
        // ∅ AND P → ∅ (the marker cites the pruned subtree's most
        // constant triple), and a UNION drops the empty branch.
        let (o, _) = optimize_with_stats(&empty.clone().and(t.clone()));
        assert_eq!(o, Pattern::t("?x", "a", "?y").filter(Condition::False));
        let (o, _) = optimize_with_stats(&empty.clone().union(t.clone()));
        assert_eq!(o, t.clone());
        // NS(∅) and SELECT over ∅ stay empty.
        let (o, _) = optimize_with_stats(&empty.clone().ns().select(["?x"]));
        assert_eq!(o, Pattern::t("?x", "a", "?y").filter(Condition::False));
    }

    #[test]
    fn subsumed_union_branch_is_dropped() {
        // ⟦broad AND extra⟧ ⊆ ⟦broad⟧ on every graph (equal variable
        // sets, superset of triples) — the refined branch is dropped
        // whichever side of the UNION it sits on.
        let broad = Pattern::t("?x", "a", "?y");
        let refined = broad.clone().and(Pattern::t("?y", "b", "?x"));
        let (o, obs) = optimize_with_stats(&broad.clone().union(refined.clone()));
        assert_eq!(obs.subsumed_branches, 1);
        assert_eq!(o, broad);
        let (o, obs) = optimize_with_stats(&refined.clone().union(broad.clone()));
        assert_eq!(obs.subsumed_branches, 1);
        assert_eq!(o, broad);
        let g = graph_from(&[("1", "a", "2"), ("2", "b", "1"), ("3", "a", "4")]);
        assert_eq!(
            evaluate(&broad.clone().union(refined), &g),
            evaluate(&o, &g)
        );
        // Distinct variable sets must block subsumption: OPT-like
        // unions of different shapes keep both branches.
        let other = Pattern::t("?x", "a", "?z");
        let (o, obs) = optimize_with_stats(&broad.clone().union(other.clone()));
        assert_eq!(obs.subsumed_branches, 0);
        assert_eq!(o, broad.union(other));
    }

    #[test]
    fn projection_rules() {
        let p = Pattern::t("?x", "a", "?y").select(["?x", "?y"]);
        assert_eq!(optimize(&p), Pattern::t("?x", "a", "?y"));
        let nested = Pattern::t("?x", "a", "?y")
            .select(["?x", "?y"])
            .select(["?x"]);
        assert_eq!(
            optimize(&nested),
            Pattern::t("?x", "a", "?y").select(["?x"])
        );
    }

    #[test]
    fn ns_idempotence_and_elision() {
        let aof = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        assert_eq!(optimize(&aof.clone().ns()), aof);
        assert_eq!(optimize(&aof.clone().ns().ns()), aof);
        // NS over a UNION (not subsumption-free in general) is kept.
        let u = Pattern::t("?x", "a", "b")
            .union(Pattern::t("?x", "a", "b").and(Pattern::t("?x", "c", "?y")));
        assert!(matches!(optimize(&u.ns()), Pattern::Ns(_)));
    }

    #[test]
    fn ns_elision_preserves_answers() {
        let aof = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        let g = graph_from(&[("1", "a", "b"), ("1", "c", "2"), ("3", "a", "b")]);
        assert_eq!(
            evaluate(&aof.clone().ns(), &g),
            evaluate(&optimize(&aof.ns()), &g)
        );
    }

    #[test]
    fn opt_normal_form_lifts_opt_above_and_when_well_designed() {
        // ((t₁ OPT t₂) AND t₃) → ((t₁ AND t₃) OPT t₂): the engine then
        // sees a two-triple AND-spine instead of a one-triple one.
        let t1 = Pattern::t("?x", "a", "b");
        let t2 = Pattern::t("?x", "c", "?y");
        let t3 = Pattern::t("?x", "d", "?z");
        let p = t1.clone().opt(t2.clone()).and(t3.clone());
        assert_eq!(optimize(&p), t1.clone().and(t3.clone()).opt(t2.clone()));
        // The mirror orientation lifts too.
        let q = t3.clone().and(t1.clone().opt(t2.clone()));
        assert_eq!(optimize(&q), t3.and(t1).opt(t2));
        // Example 3.3's non-well-designed shape is left exactly alone.
        let bad = Pattern::t("?X", "a", "Chile")
            .and(Pattern::t("?Y", "a", "Chile").opt(Pattern::t("?Y", "b", "?X")));
        assert_eq!(optimize(&bad), bad);
    }

    #[test]
    fn opt_normal_form_applies_per_union_disjunct() {
        let t1 = Pattern::t("?x", "a", "b");
        let t2 = Pattern::t("?x", "c", "?y");
        let t3 = Pattern::t("?x", "d", "?z");
        let disjunct = t1.clone().opt(t2.clone()).and(t3.clone());
        let other = Pattern::t("?u", "e", "?v");
        let p = disjunct.union(other.clone());
        assert_eq!(optimize(&p), t1.and(t3).opt(t2).union(other));
    }

    /// Rule 8 on random well-designed AOF patterns: semantics are
    /// preserved exactly and the result stays well-designed.
    #[test]
    fn opt_normal_form_preserves_semantics_on_well_designed_patterns() {
        let cfg = PatternConfig {
            allowed: Operators::AOF,
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        let mut checked = 0;
        for seed in 0..400u64 {
            let p = random_pattern(&cfg, seed);
            if well_designed_aof(&p).is_err() {
                continue;
            }
            let o = optimize(&p);
            assert!(well_designed_aof(&o).is_ok(), "seed {seed}: {p} -> {o}");
            let g = owql_rdf::generate::uniform(30, 4, 4, 4, seed).union(&graph_from(&[
                ("i0", "i1", "i2"),
                ("i2", "i3", "i0"),
                ("i1", "i1", "i1"),
            ]));
            assert_eq!(
                evaluate(&p, &g),
                evaluate(&o, &g),
                "seed {seed}: {p}  ~/~  {o}"
            );
            checked += 1;
        }
        assert!(checked >= 100, "only {checked} well-designed seeds");
    }

    /// The global property: optimization preserves exact semantics on
    /// random NS–SPARQL patterns and graphs.
    #[test]
    fn optimization_is_semantics_preserving() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..250u64 {
            let p = random_pattern(&cfg, seed);
            let o = optimize(&p);
            let g = owql_rdf::generate::uniform(30, 4, 4, 4, seed).union(&graph_from(&[
                ("i0", "i1", "i2"),
                ("i2", "i3", "i0"),
                ("i1", "i1", "i1"),
            ]));
            assert_eq!(
                evaluate(&p, &g),
                evaluate(&o, &g),
                "seed {seed}: {p}  ~/~  {o}"
            );
        }
    }

    /// The optimizer never grows the pattern.
    #[test]
    fn optimization_never_grows() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL,
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..250u64 {
            let p = random_pattern(&cfg, seed);
            let o = optimize(&p);
            assert!(o.size() <= p.size(), "seed {seed}: {p} grew to {o}");
            // And the result uses no operator the input didn't — except
            // AND, which the BD001 collapse may introduce in place of
            // an OPT.
            assert!(operators(&o).within(operators(&p).with(Operators::AND)));
        }
    }
}
