//! A static, semantics-preserving pattern optimizer.
//!
//! The rewrite rules are all justified by facts established in the
//! paper or by the algebra's definitions, and every rule is
//! property-tested for exact equivalence against the reference
//! evaluator:
//!
//! 1. **Condition folding** — boolean simplification of FILTER
//!    conditions (`¬true → false`, `R ∧ true → R`, ...).
//! 2. **Filter fusion** — `((P FILTER R₁) FILTER R₂) →
//!    (P FILTER R₁ ∧ R₂)`.
//! 3. *(reserved — filter/UNION distribution lives in the normal-form
//!    module, Prop D.1: it grows the tree, so the optimizer skips it).
//! 4. **Filter pushdown** — `(P₁ AND P₂) FILTER R → (P₁ FILTER R) AND
//!    P₂` when `var(R)` is *certainly bound* by `P₁`
//!    ([`owql_algebra::analysis::certainly_bound_vars`]), shrinking
//!    join inputs before the join.
//! 5. **Projection fusion** — `SELECT V (SELECT W P) → SELECT (V∩W) P`;
//!    `SELECT V P → P` when `var(P) ⊆ V`.
//! 6. **NS idempotence** — `NS(NS(P)) → NS(P)` (maximality is
//!    idempotent).
//! 7. **NS elision on subsumption-free fragments** — `NS(P) → P` when
//!    `P ∈ SPARQL[AOF]` or `P ∈ SPARQL[AFS]`: Section 5.2 of the paper
//!    establishes that every pattern in these fragments is
//!    subsumption-free, so taking maximal answers is the identity.
//! 8. **OPT normal form** — `(P₁ OPT P₂) AND P₃ → (P₁ AND P₃) OPT P₂`
//!    and `P₁ AND (P₂ OPT P₃) → (P₁ AND P₂) OPT P₃`, lifting OPTs
//!    above ANDs so the AND-spine flattening of the engine sees the
//!    full join spine. These equivalences hold only on *well-designed*
//!    patterns (Pérez, Arenas, Gutierrez, TODS 2009), so the rewrite
//!    runs only when the `owql-lint` analyzer proves the pattern
//!    well-designed ([`owql_lint::well_designedness`]), per UNION
//!    disjunct for the AUOF case — the analyzer verdict consumed as a
//!    plan hint.
//!
//! The optimizer is purely syntactic and terminates: each pass either
//! strictly shrinks the tree, is applied once bottom-up, or (rule 8)
//! strictly decreases the number of ANDs above an OPT.

use owql_algebra::analysis::{certainly_bound_vars, in_fragment, pattern_vars, Operators};
use owql_algebra::condition::Condition;
use owql_algebra::pattern::Pattern;
use owql_algebra::well_designed::well_designed_aof;

/// Simplifies a FILTER condition by constant folding.
pub fn simplify_condition(r: &Condition) -> Condition {
    match r {
        Condition::Not(inner) => match simplify_condition(inner) {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(doubly) => *doubly,
            other => other.not(),
        },
        Condition::And(a, b) => match (simplify_condition(a), simplify_condition(b)) {
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (Condition::True, other) | (other, Condition::True) => other,
            (a, b) => a.and(b),
        },
        Condition::Or(a, b) => match (simplify_condition(a), simplify_condition(b)) {
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (Condition::False, other) | (other, Condition::False) => other,
            (a, b) => a.or(b),
        },
        Condition::EqVar(v, w) if v == w => Condition::Bound(*v),
        atom => atom.clone(),
    }
}

/// One bottom-up optimization pass.
fn pass(p: &Pattern) -> Pattern {
    match p {
        Pattern::Triple(t) => Pattern::Triple(*t),
        Pattern::And(a, b) => pass(a).and(pass(b)),
        Pattern::Union(a, b) => pass(a).union(pass(b)),
        Pattern::Opt(a, b) => pass(a).opt(pass(b)),
        Pattern::Minus(a, b) => pass(a).minus(pass(b)),
        Pattern::Filter(q, r) => {
            let q = pass(q);
            let r = simplify_condition(r);
            match (q, r) {
                // Rule 1: trivially-true filter disappears.
                (q, Condition::True) => q,
                // Rule 2: fuse stacked filters.
                (Pattern::Filter(inner, r1), r2) => {
                    pass(&Pattern::Filter(inner, r1).filter(r2).fuse_filters())
                }
                // Rule 4: push below AND when safe.
                (Pattern::And(a, b), r) => {
                    if r.vars().is_subset(&certainly_bound_vars(&a)) {
                        pass(&a.filter(r).and(*b))
                    } else if r.vars().is_subset(&certainly_bound_vars(&b)) {
                        pass(&a.and(b.filter(r)))
                    } else {
                        Pattern::And(a, b).filter(r)
                    }
                }
                (q, r) => q.filter(r),
            }
        }
        Pattern::Select(v, q) => {
            let q = pass(q);
            match q {
                // Rule 5a: fuse stacked projections.
                Pattern::Select(w, inner) => {
                    let vw = v.intersection(&w).copied().collect();
                    pass(&Pattern::Select(vw, inner))
                }
                // Rule 5b: drop a projection that keeps everything.
                q if pattern_vars(&q).is_subset(v) => q,
                q => Pattern::Select(v.clone(), Box::new(q)),
            }
        }
        Pattern::Ns(q) => {
            let q = pass(q);
            match q {
                // Rule 6: NS is idempotent.
                Pattern::Ns(inner) => Pattern::Ns(inner),
                // Rule 7: Section 5.2 — SPARQL[AOF] and SPARQL[AFS]
                // patterns are subsumption-free, so NS is the identity.
                q if in_fragment(&q, Operators::AOF) || in_fragment(&q, Operators::AFS) => q,
                q => q.ns(),
            }
        }
    }
}

/// Helper used by rule 2: `(P FILTER R₁) FILTER R₂ → P FILTER R₁∧R₂`.
trait FuseFilters {
    fn fuse_filters(self) -> Pattern;
}

impl FuseFilters for Pattern {
    fn fuse_filters(self) -> Pattern {
        if let Pattern::Filter(outer, r2) = self {
            if let Pattern::Filter(inner, r1) = *outer {
                return inner.filter(simplify_condition(&r1.and(r2)));
            }
            return outer.filter(r2);
        }
        self
    }
}

/// One bottom-up OPT-normal-form pass (rule 8). Only called on
/// subtrees the analyzer proved well-designed, where the two lift
/// rules are sound equivalences.
fn opt_nf_pass(p: &Pattern) -> Pattern {
    match p {
        Pattern::And(a, b) => {
            let a = opt_nf_pass(a);
            let b = opt_nf_pass(b);
            if let Pattern::Opt(p1, p2) = a {
                // (P₁ OPT P₂) AND P₃ → (P₁ AND P₃) OPT P₂
                p1.and(b).opt(*p2)
            } else if let Pattern::Opt(p2, p3) = b {
                // P₁ AND (P₂ OPT P₃) → (P₁ AND P₂) OPT P₃
                a.and(*p2).opt(*p3)
            } else {
                a.and(b)
            }
        }
        Pattern::Opt(a, b) => opt_nf_pass(a).opt(opt_nf_pass(b)),
        Pattern::Filter(q, r) => opt_nf_pass(q).filter(r.clone()),
        other => other.clone(),
    }
}

/// Rewrites a pattern the analyzer proved well-designed (AOF, or AUOF
/// per top-level UNION disjunct) into OPT normal form. Conservative on
/// both ends: a subtree that fails `well_designed_aof` is returned
/// unchanged, and a rewrite step whose result would not stay
/// well-designed is discarded.
fn opt_normal_form(p: &Pattern) -> Pattern {
    if let Pattern::Union(a, b) = p {
        return opt_normal_form(a).union(opt_normal_form(b));
    }
    if well_designed_aof(p).is_err() {
        return p.clone();
    }
    let mut current = p.clone();
    // Each effective pass lifts at least one OPT past an AND, so the
    // pattern size bounds the number of passes.
    for _ in 0..p.size() {
        let next = opt_nf_pass(&current);
        if next == current || well_designed_aof(&next).is_err() {
            break;
        }
        current = next;
    }
    current
}

/// Optimizes a pattern to a fixpoint (bounded number of passes; each
/// pass is linear in the tree). When the static analyzer proves the
/// pattern well-designed, the OPT-normal-form rewrite (rule 8) runs
/// first; the shrink rules then run on the lifted tree.
pub fn optimize(p: &Pattern) -> Pattern {
    let mut current = p.clone();
    if matches!(
        owql_lint::well_designedness(p),
        owql_lint::WellDesignedVerdict::Aof | owql_lint::WellDesignedVerdict::Auof
    ) {
        current = opt_normal_form(&current);
    }
    for _ in 0..8 {
        let next = pass(&current);
        if next == current {
            return current;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::evaluate;
    use owql_algebra::analysis::operators;
    use owql_algebra::random::{random_pattern, PatternConfig};
    use owql_rdf::graph::graph_from;

    #[test]
    fn condition_folding() {
        let r = Condition::True.and(Condition::bound("x"));
        assert_eq!(simplify_condition(&r), Condition::bound("x"));
        assert_eq!(
            simplify_condition(&Condition::False.or(Condition::bound("x"))),
            Condition::bound("x")
        );
        assert_eq!(simplify_condition(&Condition::True.not()), Condition::False);
        assert_eq!(
            simplify_condition(&Condition::bound("x").not().not()),
            Condition::bound("x")
        );
        assert_eq!(
            simplify_condition(&Condition::eq_var("x", "x")),
            Condition::bound("x")
        );
        assert_eq!(
            simplify_condition(&Condition::False.and(Condition::bound("x"))),
            Condition::False
        );
    }

    #[test]
    fn trivial_filter_removed() {
        let p = Pattern::t("?x", "a", "b").filter(Condition::True);
        assert_eq!(optimize(&p), Pattern::t("?x", "a", "b"));
    }

    #[test]
    fn stacked_filters_fuse() {
        let p = Pattern::t("?x", "a", "?y")
            .filter(Condition::bound("x"))
            .filter(Condition::bound("y"));
        let o = optimize(&p);
        // One filter node left.
        let mut filter_count = 0;
        fn count(p: &Pattern, n: &mut usize) {
            match p {
                Pattern::Filter(q, _) => {
                    *n += 1;
                    count(q, n);
                }
                Pattern::And(a, b)
                | Pattern::Union(a, b)
                | Pattern::Opt(a, b)
                | Pattern::Minus(a, b) => {
                    count(a, n);
                    count(b, n);
                }
                Pattern::Select(_, q) | Pattern::Ns(q) => count(q, n),
                Pattern::Triple(_) => {}
            }
        }
        count(&o, &mut filter_count);
        assert_eq!(filter_count, 1);
    }

    #[test]
    fn filter_pushes_into_and() {
        let p = Pattern::t("?x", "a", "?y")
            .and(Pattern::t("?y", "b", "?z"))
            .filter(Condition::eq_const("x", "k"));
        let o = optimize(&p);
        // The filter should now sit on the left conjunct.
        match o {
            Pattern::And(left, _) => assert!(matches!(*left, Pattern::Filter(..))),
            other => panic!("expected AND at root, got {other}"),
        }
    }

    #[test]
    fn filter_not_pushed_when_unsafe() {
        // bound(?z) where ?z is optional must stay above the OPT.
        let p = Pattern::t("?x", "a", "b")
            .opt(Pattern::t("?x", "c", "?z"))
            .filter(Condition::bound("z"));
        assert_eq!(optimize(&p), p);
    }

    #[test]
    fn projection_rules() {
        let p = Pattern::t("?x", "a", "?y").select(["?x", "?y"]);
        assert_eq!(optimize(&p), Pattern::t("?x", "a", "?y"));
        let nested = Pattern::t("?x", "a", "?y")
            .select(["?x", "?y"])
            .select(["?x"]);
        assert_eq!(
            optimize(&nested),
            Pattern::t("?x", "a", "?y").select(["?x"])
        );
    }

    #[test]
    fn ns_idempotence_and_elision() {
        let aof = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        assert_eq!(optimize(&aof.clone().ns()), aof);
        assert_eq!(optimize(&aof.clone().ns().ns()), aof);
        // NS over a UNION (not subsumption-free in general) is kept.
        let u = Pattern::t("?x", "a", "b")
            .union(Pattern::t("?x", "a", "b").and(Pattern::t("?x", "c", "?y")));
        assert!(matches!(optimize(&u.ns()), Pattern::Ns(_)));
    }

    #[test]
    fn ns_elision_preserves_answers() {
        let aof = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        let g = graph_from(&[("1", "a", "b"), ("1", "c", "2"), ("3", "a", "b")]);
        assert_eq!(
            evaluate(&aof.clone().ns(), &g),
            evaluate(&optimize(&aof.ns()), &g)
        );
    }

    #[test]
    fn opt_normal_form_lifts_opt_above_and_when_well_designed() {
        // ((t₁ OPT t₂) AND t₃) → ((t₁ AND t₃) OPT t₂): the engine then
        // sees a two-triple AND-spine instead of a one-triple one.
        let t1 = Pattern::t("?x", "a", "b");
        let t2 = Pattern::t("?x", "c", "?y");
        let t3 = Pattern::t("?x", "d", "?z");
        let p = t1.clone().opt(t2.clone()).and(t3.clone());
        assert_eq!(optimize(&p), t1.clone().and(t3.clone()).opt(t2.clone()));
        // The mirror orientation lifts too.
        let q = t3.clone().and(t1.clone().opt(t2.clone()));
        assert_eq!(optimize(&q), t3.and(t1).opt(t2));
        // Example 3.3's non-well-designed shape is left exactly alone.
        let bad = Pattern::t("?X", "a", "Chile")
            .and(Pattern::t("?Y", "a", "Chile").opt(Pattern::t("?Y", "b", "?X")));
        assert_eq!(optimize(&bad), bad);
    }

    #[test]
    fn opt_normal_form_applies_per_union_disjunct() {
        let t1 = Pattern::t("?x", "a", "b");
        let t2 = Pattern::t("?x", "c", "?y");
        let t3 = Pattern::t("?x", "d", "?z");
        let disjunct = t1.clone().opt(t2.clone()).and(t3.clone());
        let other = Pattern::t("?u", "e", "?v");
        let p = disjunct.union(other.clone());
        assert_eq!(optimize(&p), t1.and(t3).opt(t2).union(other));
    }

    /// Rule 8 on random well-designed AOF patterns: semantics are
    /// preserved exactly and the result stays well-designed.
    #[test]
    fn opt_normal_form_preserves_semantics_on_well_designed_patterns() {
        let cfg = PatternConfig {
            allowed: Operators::AOF,
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        let mut checked = 0;
        for seed in 0..400u64 {
            let p = random_pattern(&cfg, seed);
            if well_designed_aof(&p).is_err() {
                continue;
            }
            let o = optimize(&p);
            assert!(well_designed_aof(&o).is_ok(), "seed {seed}: {p} -> {o}");
            let g = owql_rdf::generate::uniform(30, 4, 4, 4, seed).union(&graph_from(&[
                ("i0", "i1", "i2"),
                ("i2", "i3", "i0"),
                ("i1", "i1", "i1"),
            ]));
            assert_eq!(
                evaluate(&p, &g),
                evaluate(&o, &g),
                "seed {seed}: {p}  ~/~  {o}"
            );
            checked += 1;
        }
        assert!(checked >= 100, "only {checked} well-designed seeds");
    }

    /// The global property: optimization preserves exact semantics on
    /// random NS–SPARQL patterns and graphs.
    #[test]
    fn optimization_is_semantics_preserving() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..250u64 {
            let p = random_pattern(&cfg, seed);
            let o = optimize(&p);
            let g = owql_rdf::generate::uniform(30, 4, 4, 4, seed).union(&graph_from(&[
                ("i0", "i1", "i2"),
                ("i2", "i3", "i0"),
                ("i1", "i1", "i1"),
            ]));
            assert_eq!(
                evaluate(&p, &g),
                evaluate(&o, &g),
                "seed {seed}: {p}  ~/~  {o}"
            );
        }
    }

    /// The optimizer never grows the pattern.
    #[test]
    fn optimization_never_grows() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL,
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..250u64 {
            let p = random_pattern(&cfg, seed);
            let o = optimize(&p);
            assert!(o.size() <= p.size(), "seed {seed}: {p} grew to {o}");
            // And the result uses no operator the input didn't.
            assert!(operators(&o).within(operators(&p).with(Operators::NONE)));
        }
    }
}
