//! Scatter-gather evaluation across subject-hash shards.
//!
//! [`try_run_sharded`] is the columnar evaluator's distributed sibling:
//! the caller supplies `N` per-shard [`IdRuns`] (built from the *same*
//! snapshot the engine is bound to, via [`owql_rdf::shard::shard_rows`])
//! and one [`Pool`] per shard, and AND/UNION spines evaluate
//! scatter-gather:
//!
//! * **AND spines** scatter the *seed scan*: the coordinator picks the
//!   first triple pattern with the same greedy heuristic as the
//!   columnar engine, then every shard extends the seed table against
//!   its **shard-local** runs only. Because the shards partition the
//!   live rows disjointly by subject id, the per-shard partial tables
//!   are disjoint; each shard then continues the remaining join chain
//!   against the **global** view on its own pool, and the coordinator
//!   merges by concatenation + sort/dedup. This is what makes the
//!   scatter *correct for joins*: only the first scan is partitioned,
//!   so no cross-shard join pair is ever lost.
//! * **UNION spines** fan their disjuncts out round-robin across the
//!   shard pools (each disjunct evaluated whole against the global
//!   view), merged with set semantics at the coordinator.
//! * **NS** maximality is applied *post-merge* at the coordinator — the
//!   domain-grouped `maximal` pass needs the complete candidate set,
//!   exactly as the single-node engine applies it after its own
//!   sub-evaluation.
//!
//! Everything is pinned to one snapshot epoch by construction: the
//! shard runs, the engine's view, and the deletion mask all derive from
//! the same [`IdView`], so a scatter never mixes epochs.
//!
//! Answer-set equality with the unsharded columnar engine is the
//! contract, held by the `tests/integration_sharded.rs` differential
//! suite at shard counts 1, 2, and 8 over churned snapshots.
//!
//! [`IdRuns`]: owql_rdf::IdRuns

use crate::columnar::{Columnar, IdTriple};
use crate::engine::{spine_parts, Engine};
use crate::run::{EvalBudget, EvalError};
use owql_algebra::analysis::pattern_vars;
use owql_algebra::id_mapping::{IdMapping, IdMappingSet, VarFrame};
use owql_algebra::normal_form::union_spine;
use owql_algebra::{MappingSet, Pattern, TriplePattern};
use owql_exec::Pool;
use owql_obs::{Recorder, ShardMetrics, SpanId};
use owql_rdf::{FxHashSet, IdRuns, IdView, TripleLookup, NO_TERM};
use std::sync::atomic::Ordering;

/// Attempts scatter-gather evaluation of `pattern` over `engine`'s
/// snapshot, using `shard_runs` (disjoint subject-hash partitions of
/// the snapshot's live rows) and one pool per shard. Returns `None`
/// when the backend serves no id view or the pattern is out of the
/// columnar envelope — callers fall back exactly as for
/// [`crate::Engine::run`]'s columnar path.
pub fn try_run_sharded<I: TripleLookup + Sync>(
    engine: &Engine<I>,
    pattern: &Pattern,
    shard_runs: &[IdRuns],
    pools: &[Pool],
    rec: &Recorder,
    budget: &EvalBudget,
    metrics: Option<&ShardMetrics>,
) -> Option<Result<MappingSet, EvalError>> {
    if shard_runs.is_empty() || pools.is_empty() {
        return None;
    }
    let view = engine.index().id_view()?;
    let vars = pattern_vars(pattern);
    if vars.is_empty() {
        return None;
    }
    let frame = VarFrame::new(vars)?;
    let coordinator = &pools[0];
    let ctx = Columnar {
        dels: view.del_rows(),
        view,
        frame,
        pool: coordinator,
        parallel: coordinator.threads() > 1,
        rec,
    };
    let exec = Sharded {
        ctx,
        shard_runs,
        pools,
        metrics,
    };
    if let Some(m) = metrics {
        m.queries_total.fetch_add(1, Ordering::Relaxed);
    }
    Some(exec.eval(pattern, budget).map(|table| {
        rec.record_columnar_decode(table.len() as u64, true);
        table.decode(&exec.ctx.frame, exec.ctx.view.dict)
    }))
}

/// The coordinator: one global columnar context plus the shard runs
/// and pools the spines scatter over.
struct Sharded<'a> {
    ctx: Columnar<'a>,
    shard_runs: &'a [IdRuns],
    pools: &'a [Pool],
    metrics: Option<&'a ShardMetrics>,
}

impl Sharded<'_> {
    /// A columnar context over the global view bound to `pool` — the
    /// per-shard continuation context, and the per-disjunct UNION
    /// worker context.
    fn global_ctx<'b>(&'b self, pool: &'b Pool) -> Columnar<'b> {
        Columnar {
            view: IdView {
                dict: self.ctx.view.dict,
                base: self.ctx.view.base,
                adds: self.ctx.view.adds,
                dels: self.ctx.view.dels,
            },
            frame: self.ctx.frame.clone(),
            dels: self.ctx.dels.clone(),
            pool,
            parallel: pool.threads() > 1,
            rec: self.ctx.rec,
        }
    }

    /// One algebra node. Spines scatter; every other operator combines
    /// recursively gathered children at the coordinator.
    fn eval(&self, pattern: &Pattern, budget: &EvalBudget) -> Result<IdMappingSet, EvalError> {
        budget.check()?;
        match pattern {
            Pattern::Triple(_) | Pattern::And(..) => self.scatter_spine(pattern, budget),
            Pattern::Opt(a, b) => {
                let left = self.eval(a, budget)?;
                let right = self.eval(b, budget)?;
                Ok(left.left_outer_join(&right))
            }
            Pattern::Union(..) => {
                let disjuncts = union_spine(pattern);
                let n = self.pools.len();
                let parts: Vec<Result<IdMappingSet, EvalError>> = std::thread::scope(|s| {
                    let handles: Vec<_> = disjuncts
                        .iter()
                        .enumerate()
                        .map(|(i, d)| {
                            s.spawn(move || {
                                let sub = self.global_ctx(&self.pools[i % n]);
                                sub.eval(d, SpanId::ROOT, budget)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("union scatter worker panicked"))
                        .collect()
                });
                let mut out = IdMappingSet::new(self.ctx.width());
                let mut fanout = 0usize;
                for part in parts {
                    let part = part?;
                    if !part.is_empty() {
                        fanout += 1;
                    }
                    for row in part.rows() {
                        out.push_row(row);
                    }
                }
                if let Some(m) = self.metrics {
                    m.record_scatter(fanout);
                }
                out.sort_dedup();
                Ok(out)
            }
            Pattern::Select(vars, p) => {
                let keep: Vec<bool> = (0..self.ctx.width())
                    .map(|c| vars.contains(&self.ctx.frame.var(c)))
                    .collect();
                Ok(self.eval(p, budget)?.project(&keep))
            }
            Pattern::Filter(p, r) => {
                let cond = self.ctx.compile_cond(r);
                let mut inner = self.eval(p, budget)?;
                inner.retain(|row| cond.satisfied_by(row));
                Ok(inner)
            }
            Pattern::Ns(p) => {
                // Maximality post-merge: the gathered candidate set is
                // complete, so the domain-grouped pass is exactly the
                // single-node one.
                let inner = self.eval(p, budget)?;
                let candidates = inner.len() as u64;
                let out = inner.maximal(self.ctx.parallel.then_some(self.ctx.pool));
                self.ctx.rec.record_ns(candidates, out.len() as u64);
                Ok(out)
            }
            Pattern::Minus(a, b) => {
                let left = self.eval(a, budget)?;
                Ok(left.difference(&self.eval(b, budget)?))
            }
        }
    }

    /// The scattered AND spine. Mirrors `Columnar::eval_spine` exactly,
    /// except the first (seed) scan step runs once per shard against
    /// that shard's local runs.
    fn scatter_spine(
        &self,
        pattern: &Pattern,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        let ctx = &self.ctx;
        let w = ctx.width();
        let (triples, others) = spine_parts(pattern);
        let mut compiled: Vec<(IdTriple, TriplePattern)> = triples
            .iter()
            .map(|&t| (ctx.compile_triple(t), t))
            .collect();
        if compiled.iter().any(|(c, _)| c.unsatisfiable()) {
            return Ok(IdMappingSet::new(w));
        }
        let mut sub: Vec<IdMappingSet> = others
            .iter()
            .map(|p| self.eval(p, budget))
            .collect::<Result<_, _>>()?;
        let seed = if sub.is_empty() {
            let mut s = IdMappingSet::new(w);
            s.push_row(&vec![NO_TERM; w]);
            s
        } else {
            sub.sort_by_key(IdMappingSet::len);
            let mut acc = sub.remove(0);
            for s in sub {
                acc = acc.join(&s);
            }
            acc
        };
        if compiled.is_empty() {
            return Ok(seed);
        }
        if seed.is_empty() {
            return Ok(IdMappingSet::new(w));
        }
        let bound_mask = IdMapping::new(seed.row(0)).domain_mask();
        let homogeneous = seed
            .rows()
            .all(|r| IdMapping::new(r).domain_mask() == bound_mask);
        let first_idx = ctx.pick_next(&compiled, bound_mask);
        let (first, _) = compiled.swap_remove(first_idx);
        let remaining = compiled;
        let after_mask = bound_mask | first.var_mask();
        let n = self.shard_runs.len();
        let parts: Vec<Result<IdMappingSet, EvalError>> = if n == 1 {
            vec![self.shard_chain(0, &seed, first, &remaining, after_mask, homogeneous, budget)]
        } else {
            std::thread::scope(|s| {
                let seed = &seed;
                let remaining = &remaining;
                let handles: Vec<_> = (0..n)
                    .map(|k| {
                        s.spawn(move || {
                            self.shard_chain(
                                k,
                                seed,
                                first,
                                remaining,
                                after_mask,
                                homogeneous,
                                budget,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("spine scatter worker panicked"))
                    .collect()
            })
        };
        let mut out = IdMappingSet::new(w);
        let mut fanout = 0usize;
        for (k, part) in parts.into_iter().enumerate() {
            let part = part?;
            if let Some(m) = self.metrics {
                m.record_shard_task(k, part.len() as u64);
            }
            if !part.is_empty() {
                fanout += 1;
            }
            for row in part.rows() {
                out.push_row(row);
            }
        }
        if let Some(m) = self.metrics {
            m.record_scatter(fanout);
        }
        out.sort_dedup();
        Ok(out)
    }

    /// One shard's chain: seed-extend against the shard-local runs,
    /// then complete the remaining joins against the global view on the
    /// shard's own pool.
    #[allow(clippy::too_many_arguments)]
    fn shard_chain(
        &self,
        k: usize,
        seed: &IdMappingSet,
        first: IdTriple,
        remaining: &[(IdTriple, TriplePattern)],
        mut bound_mask: u64,
        homogeneous: bool,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        let pool = &self.pools[k.min(self.pools.len() - 1)];
        // Shard runs hold live rows only (deletions were filtered at
        // partition time), so the local context needs no deletion mask.
        let local = Columnar {
            view: IdView::plain(self.ctx.view.dict, &self.shard_runs[k]),
            frame: self.ctx.frame.clone(),
            dels: FxHashSet::default(),
            pool,
            parallel: pool.threads() > 1,
            rec: self.ctx.rec,
        };
        let mut current = local.extend(seed, first, !homogeneous, budget)?;
        let global = self.global_ctx(pool);
        let mut remaining = remaining.to_vec();
        while !remaining.is_empty() {
            budget.check()?;
            if current.is_empty() {
                return Ok(current);
            }
            let next = global.pick_next(&remaining, bound_mask);
            let (t, _) = remaining.swap_remove(next);
            current = global.extend(&current, t, !homogeneous, budget)?;
            bound_mask |= t.var_mask();
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ExecOpts;
    use owql_parser::parse_pattern;
    use owql_rdf::{shard_rows, GraphIndex, Triple};

    fn social() -> GraphIndex {
        let mut triples = Vec::new();
        for i in 0..20u32 {
            triples.push(Triple::new(
                &format!("p{i}"),
                "knows",
                &format!("p{}", (i + 1) % 20),
            ));
            if i % 2 == 0 {
                triples.push(Triple::new(&format!("p{i}"), "age", &format!("{}", 20 + i)));
            }
        }
        GraphIndex::from_triples(triples)
    }

    fn answers_match(pattern: &str, shards: usize) {
        let engine = Engine::with_index(social());
        let pattern = parse_pattern(pattern).expect("pattern parses");
        let opts = ExecOpts::seq();
        let budget = EvalBudget::from_opts(&opts);
        let rec = Recorder::disabled();
        let pool = Pool::sequential();
        let expected = engine
            .run(&pattern, &opts, &pool)
            .expect("unsharded run")
            .mappings;
        let view = engine
            .index()
            .id_view()
            .expect("graph index serves an id view");
        let runs = shard_rows(&view, shards);
        let pools: Vec<Pool> = (0..shards).map(|_| Pool::sequential()).collect();
        let got = try_run_sharded(&engine, &pattern, &runs, &pools, &rec, &budget, None)
            .expect("columnar-shaped pattern")
            .expect("sharded run");
        assert_eq!(got, expected, "sharded answers diverge at {shards} shards");
    }

    #[test]
    fn spine_scatter_matches_unsharded() {
        for shards in [1, 2, 8] {
            answers_match("((?x, knows, ?y) AND (?y, knows, ?z))", shards);
            answers_match("((?x, knows, ?y) AND (?x, age, ?a))", shards);
        }
    }

    #[test]
    fn union_and_ns_scatter_match_unsharded() {
        for shards in [1, 2, 8] {
            answers_match("((?x, knows, ?y) UNION (?x, age, ?a))", shards);
            answers_match("NS (((?x, knows, ?y) OPT (?y, age, ?a)))", shards);
        }
    }
}
