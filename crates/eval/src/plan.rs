//! Query plans: a static EXPLAIN for the indexed engine.
//!
//! [`Engine::explain`](crate::engine::Engine) renders the strategy the
//! engine will take for a pattern: flattened `AND`-spines with the
//! greedy join order and per-step index access paths and cardinality
//! estimates, and the operator tree above them. Purely informational —
//! the engine re-derives the order at run time with live binding
//! information — but estimates come from the same index, so the
//! printed order matches the executed one on constant-only statistics.

use owql_algebra::pattern::{Pattern, TriplePattern};
use owql_algebra::Variable;
use owql_rdf::TripleLookup;
use std::collections::BTreeSet;
use std::fmt;

/// A node of a query plan.
#[derive(Clone, Debug)]
pub enum Plan {
    /// One step of an index nested-loop join.
    TripleScan {
        /// The triple pattern scanned.
        pattern: TriplePattern,
        /// The index access path chosen when only constants are known.
        access_path: &'static str,
        /// Constant-only cardinality estimate from the index.
        estimated_rows: usize,
    },
    /// A flattened `AND`-spine: `steps` in execution order, then
    /// `others` (non-triple conjuncts) hash-joined in.
    IndexJoin {
        /// Triple-scan steps in the greedy order.
        steps: Vec<Plan>,
        /// Recursively planned non-triple conjuncts.
        others: Vec<Plan>,
    },
    /// Left-outer-join (`OPT`).
    LeftOuterJoin(Box<Plan>, Box<Plan>),
    /// Union.
    Union(Box<Plan>, Box<Plan>),
    /// Difference (`MINUS`).
    Difference(Box<Plan>, Box<Plan>),
    /// Filter.
    Filter(Box<Plan>, String),
    /// Projection.
    Project(Box<Plan>, Vec<Variable>),
    /// Maximal answers (`NS`).
    MaximalAnswers(Box<Plan>),
}

impl Plan {
    fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        Ok(())
    }

    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        Plan::indent(f, depth)?;
        match self {
            Plan::TripleScan {
                pattern,
                access_path,
                estimated_rows,
            } => writeln!(
                f,
                "scan {pattern} via {access_path} (~{estimated_rows} rows)"
            ),
            Plan::IndexJoin { steps, others } => {
                writeln!(f, "index nested-loop join")?;
                for s in steps {
                    s.fmt_at(f, depth + 1)?;
                }
                for o in others {
                    Plan::indent(f, depth + 1)?;
                    writeln!(f, "hash-join with:")?;
                    o.fmt_at(f, depth + 2)?;
                }
                Ok(())
            }
            Plan::LeftOuterJoin(a, b) => {
                writeln!(f, "left outer join (OPT)")?;
                a.fmt_at(f, depth + 1)?;
                b.fmt_at(f, depth + 1)
            }
            Plan::Union(a, b) => {
                writeln!(f, "union")?;
                a.fmt_at(f, depth + 1)?;
                b.fmt_at(f, depth + 1)
            }
            Plan::Difference(a, b) => {
                writeln!(f, "difference (MINUS)")?;
                a.fmt_at(f, depth + 1)?;
                b.fmt_at(f, depth + 1)
            }
            Plan::Filter(p, cond) => {
                writeln!(f, "filter {cond}")?;
                p.fmt_at(f, depth + 1)
            }
            Plan::Project(p, vars) => {
                write!(f, "project {{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, "}}")?;
                p.fmt_at(f, depth + 1)
            }
            Plan::MaximalAnswers(p) => {
                writeln!(f, "maximal answers (NS)")?;
                p.fmt_at(f, depth + 1)
            }
        }
    }

    /// Number of plan nodes.
    pub fn size(&self) -> usize {
        match self {
            Plan::TripleScan { .. } => 1,
            Plan::IndexJoin { steps, others } => {
                1 + steps.iter().map(Plan::size).sum::<usize>()
                    + others.iter().map(Plan::size).sum::<usize>()
            }
            Plan::LeftOuterJoin(a, b) | Plan::Union(a, b) | Plan::Difference(a, b) => {
                1 + a.size() + b.size()
            }
            Plan::Filter(p, _) | Plan::Project(p, _) | Plan::MaximalAnswers(p) => 1 + p.size(),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, 0)
    }
}

pub(crate) fn access_path(t: TriplePattern) -> &'static str {
    match (
        t.s.as_iri().is_some(),
        t.p.as_iri().is_some(),
        t.o.as_iri().is_some(),
    ) {
        (true, true, true) => "SPO (point)",
        (true, true, false) => "SP index",
        (false, true, true) => "PO index",
        (true, false, true) => "SO index",
        (true, false, false) => "S index",
        (false, true, false) => "P index",
        (false, false, true) => "O index",
        (false, false, false) => "full scan",
    }
}

/// Builds the plan for `pattern` against `index` — the logic mirrors
/// the engine's spine flattening and greedy ordering. Works against any
/// [`TripleLookup`] backend (a full [`owql_rdf::GraphIndex`] or a store
/// snapshot's delta overlay).
pub fn plan<I: TripleLookup>(pattern: &Pattern, index: &I) -> Plan {
    match pattern {
        Pattern::Triple(_) | Pattern::And(..) => {
            let mut triples = Vec::new();
            let mut others = Vec::new();
            flatten(pattern, &mut triples, &mut others);
            // Replay the greedy order statically.
            let mut bound: BTreeSet<Variable> = BTreeSet::new();
            let mut steps = Vec::new();
            while !triples.is_empty() {
                let mut best = 0;
                let mut best_key = (usize::MAX, usize::MAX);
                for (i, t) in triples.iter().enumerate() {
                    let unbound = t.vars().iter().filter(|v| !bound.contains(v)).count();
                    let card = index.cardinality(t.s.as_iri(), t.p.as_iri(), t.o.as_iri());
                    if (unbound, card) < best_key {
                        best_key = (unbound, card);
                        best = i;
                    }
                }
                let t = triples.swap_remove(best);
                bound.extend(t.vars());
                steps.push(Plan::TripleScan {
                    pattern: t,
                    access_path: access_path(t),
                    estimated_rows: index.cardinality(t.s.as_iri(), t.p.as_iri(), t.o.as_iri()),
                });
            }
            let others = others.into_iter().map(|p| plan(p, index)).collect();
            Plan::IndexJoin { steps, others }
        }
        Pattern::Opt(a, b) => {
            Plan::LeftOuterJoin(Box::new(plan(a, index)), Box::new(plan(b, index)))
        }
        Pattern::Union(a, b) => Plan::Union(Box::new(plan(a, index)), Box::new(plan(b, index))),
        Pattern::Minus(a, b) => {
            Plan::Difference(Box::new(plan(a, index)), Box::new(plan(b, index)))
        }
        Pattern::Filter(p, r) => Plan::Filter(Box::new(plan(p, index)), r.to_string()),
        Pattern::Select(v, p) => {
            Plan::Project(Box::new(plan(p, index)), v.iter().copied().collect())
        }
        Pattern::Ns(p) => Plan::MaximalAnswers(Box::new(plan(p, index))),
    }
}

/// One node of an EXPLAIN ANALYZE tree: the *observed* counterpart of
/// [`Plan`], rebuilt from the spans an instrumented run recorded.
#[derive(Clone, Debug)]
pub struct AnnotatedNode {
    /// Operator kind (obs taxonomy; index nested-loop steps are `SCAN`).
    pub kind: owql_obs::OpKind,
    /// Human-readable operator label (e.g. `"filter bound(?x)"`).
    pub label: String,
    /// Observed input cardinality, where the operator has one.
    pub rows_in: Option<u64>,
    /// Observed output cardinality.
    pub rows_out: u64,
    /// Observed wall time.
    pub elapsed_ns: u64,
    /// Child operators, in evaluation order.
    pub children: Vec<AnnotatedNode>,
}

impl AnnotatedNode {
    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(AnnotatedNode::size).sum::<usize>()
    }

    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        Plan::indent(f, depth)?;
        write!(f, "{} {}", self.kind, self.label)?;
        match self.rows_in {
            Some(rows_in) => write!(f, "  [rows: {} -> {}", rows_in, self.rows_out)?,
            None => write!(f, "  [rows: {}", self.rows_out)?,
        }
        writeln!(f, ", {:.3} ms]", self.elapsed_ns as f64 / 1e6)?;
        for c in &self.children {
            c.fmt_at(f, depth + 1)?;
        }
        Ok(())
    }
}

/// An EXPLAIN ANALYZE report: the operator tree with observed row
/// counts and wall times per node, as returned by
/// [`Engine::explain_analyze`](crate::engine::Engine::explain_analyze).
///
/// Where [`Plan`] prints *estimated* cardinalities from the index, this
/// prints what the run actually produced — the tool for spotting a join
/// step that exploded or an NS filter that pruned nothing.
#[derive(Clone, Debug)]
pub struct AnnotatedPlan {
    /// Final answer count of the profiled run.
    pub answers: usize,
    /// Total wall time across the top-level operators.
    pub total_ns: u64,
    /// Top-level operators (one for a single query pattern).
    pub roots: Vec<AnnotatedNode>,
}

impl AnnotatedPlan {
    /// Number of operator nodes in the tree.
    pub fn size(&self) -> usize {
        self.roots.iter().map(AnnotatedNode::size).sum()
    }
}

impl fmt::Display for AnnotatedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXPLAIN ANALYZE  [answers: {}, {:.3} ms]",
            self.answers,
            self.total_ns as f64 / 1e6
        )?;
        for r in &self.roots {
            r.fmt_at(f, 0)?;
        }
        Ok(())
    }
}

/// Rebuilds the operator tree from the flat span list a [`Recorder`]
/// collected. Span ids are allocated pre-order (a parent's id precedes
/// its children's), so sorting each sibling list by id restores the
/// evaluation order even though spans complete — and are recorded —
/// post-order.
///
/// [`Recorder`]: owql_obs::Recorder
pub fn annotate(spans: &[owql_obs::Span], answers: usize) -> AnnotatedPlan {
    use std::collections::BTreeMap;
    // Sort spans by id so children attach in evaluation order.
    let mut ordered: Vec<&owql_obs::Span> = spans.iter().collect();
    ordered.sort_by_key(|s| s.id.0);

    // Build children bottom-up: iterating ids in *descending* order
    // guarantees every child is finished before its parent is taken.
    let mut pending: BTreeMap<u64, Vec<AnnotatedNode>> = BTreeMap::new();
    for s in ordered.iter().rev() {
        let node = AnnotatedNode {
            kind: s.kind,
            label: s.label.clone(),
            rows_in: s.rows_in,
            rows_out: s.rows_out,
            elapsed_ns: s.elapsed_ns,
            children: pending.remove(&s.id.0).unwrap_or_default(),
        };
        pending.entry(s.parent.0).or_default().insert(0, node);
    }
    let roots = pending
        .remove(&owql_obs::SpanId::ROOT.0)
        .unwrap_or_default();
    let total_ns = roots.iter().map(|r| r.elapsed_ns).sum();
    AnnotatedPlan {
        answers,
        total_ns,
        roots,
    }
}

fn flatten<'a>(p: &'a Pattern, triples: &mut Vec<TriplePattern>, others: &mut Vec<&'a Pattern>) {
    match p {
        Pattern::And(a, b) => {
            flatten(a, triples, others);
            flatten(b, triples, others);
        }
        Pattern::Triple(t) => triples.push(*t),
        other => others.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use owql_parser::parse_pattern;
    use owql_rdf::generate;

    #[test]
    fn plan_orders_selective_scan_first() {
        // One selective pattern (constant subject) and one broad one.
        let g = generate::star("hub", "spoke", 50);
        let engine = Engine::new(&g);
        let p = parse_pattern("((?x, spoke, ?y) AND (hub, spoke, ?x))").unwrap();
        let plan = engine.explain(&p);
        match &plan {
            Plan::IndexJoin { steps, others } => {
                assert!(others.is_empty());
                assert_eq!(steps.len(), 2);
                // The constant-subject scan goes first (fewer unbound vars).
                match &steps[0] {
                    Plan::TripleScan { access_path, .. } => {
                        assert_eq!(*access_path, "SP index")
                    }
                    other => panic!("expected scan, got {other:?}"),
                }
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn plan_renders_all_operators() {
        let g = generate::uniform(20, 4, 4, 4, 1);
        let engine = Engine::new(&g);
        let p = parse_pattern(
            "NS((SELECT {?x} WHERE ((((?x, p0, ?y) OPT (?y, p1, ?z)) UNION \
              ((?x, p2, ?w) MINUS (?w, p3, ?v))) FILTER bound(?x))))",
        )
        .unwrap();
        let text = engine.explain(&p).to_string();
        for needle in [
            "maximal answers (NS)",
            "project {?x}",
            "filter bound(?x)",
            "union",
            "left outer join (OPT)",
            "difference (MINUS)",
            "scan",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn estimates_match_index() {
        let g = generate::star("hub", "spoke", 10);
        let engine = Engine::new(&g);
        let p = parse_pattern("(hub, spoke, ?x)").unwrap();
        match engine.explain(&p) {
            Plan::IndexJoin { steps, .. } => match &steps[0] {
                Plan::TripleScan { estimated_rows, .. } => assert_eq!(*estimated_rows, 10),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_analyze_annotates_observed_rows() {
        let g = generate::star("hub", "spoke", 10);
        let engine = Engine::new(&g);
        let p = parse_pattern("((hub, spoke, ?x) AND (hub, spoke, ?y))").unwrap();
        let analyzed = engine.explain_analyze(&p);
        assert_eq!(analyzed.answers, 100);
        assert_eq!(analyzed.roots.len(), 1);
        let root = &analyzed.roots[0];
        assert_eq!(root.kind, owql_obs::OpKind::And);
        assert_eq!(root.rows_out, 100);
        // Two SCAN children in evaluation order: 1 -> 10 -> 100.
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].rows_in, Some(1));
        assert_eq!(root.children[0].rows_out, 10);
        assert_eq!(root.children[1].rows_in, Some(10));
        assert_eq!(root.children[1].rows_out, 100);
        let text = analyzed.to_string();
        for needle in [
            "EXPLAIN ANALYZE",
            "answers: 100",
            "SCAN",
            "rows: 10 -> 100",
            "ms]",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn explain_analyze_renders_operator_tree() {
        let g = generate::uniform(20, 4, 4, 4, 1);
        let engine = Engine::new(&g);
        let p = parse_pattern(
            "NS((SELECT {?x} WHERE ((((?x, p0, ?y) OPT (?y, p1, ?z)) UNION \
              ((?x, p2, ?w) MINUS (?w, p3, ?v))) FILTER bound(?x))))",
        )
        .unwrap();
        let analyzed = engine.explain_analyze(&p);
        let text = analyzed.to_string();
        for needle in ["NS", "SELECT", "FILTER", "UNION", "OPT", "MINUS", "SCAN"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(
            analyzed.answers as u64,
            analyzed.roots.iter().map(|r| r.rows_out).sum::<u64>()
        );
    }

    #[test]
    fn plan_size() {
        let g = generate::uniform(10, 3, 3, 3, 2);
        let engine = Engine::new(&g);
        let p = parse_pattern("((?a, p0, ?b) AND (?b, p1, ?c))").unwrap();
        assert_eq!(engine.explain(&p).size(), 3); // join + 2 scans
    }
}
