//! The reference evaluator: the paper's semantics, verbatim.
//!
//! `⟦P⟧G` is defined recursively (Section 2.1, extended with NS in
//! Section 5.1 and the derived MINUS of Appendix D):
//!
//! ```text
//! ⟦t⟧G                    = { µ | dom(µ) = var(t), µ(t) ∈ G }
//! ⟦P₁ AND P₂⟧G            = ⟦P₁⟧G ⋈ ⟦P₂⟧G
//! ⟦P₁ OPT P₂⟧G            = ⟦P₁⟧G ⟕ ⟦P₂⟧G
//! ⟦P₁ UNION P₂⟧G          = ⟦P₁⟧G ∪ ⟦P₂⟧G
//! ⟦SELECT V WHERE P⟧G     = { µ|V | µ ∈ ⟦P⟧G }
//! ⟦P FILTER R⟧G           = { µ ∈ ⟦P⟧G | µ ⊨ R }
//! ⟦NS(P)⟧G                = ⟦P⟧G^max
//! ⟦P₁ MINUS P₂⟧G          = ⟦P₁⟧G ∖ ⟦P₂⟧G
//! ```
//!
//! Triple-pattern evaluation scans every triple of `G`; the whole
//! evaluator materializes full intermediate mapping sets. Use
//! [`crate::engine::Engine`] when performance matters — this module is
//! the executable specification the engine is tested against.

use owql_algebra::mapping::Mapping;
use owql_algebra::mapping_set::MappingSet;
use owql_algebra::pattern::{Pattern, TermPattern, TriplePattern};
use owql_rdf::{Graph, Triple};

/// Matches one concrete triple against a triple pattern, producing the
/// unique unifying mapping with `dom(µ) = var(t)` if one exists.
pub fn match_triple(pattern: TriplePattern, triple: Triple) -> Option<Mapping> {
    let mut m = Mapping::new();
    for (tp, value) in pattern.components().into_iter().zip(triple.components()) {
        match tp {
            TermPattern::Iri(i) => {
                if i != value {
                    return None;
                }
            }
            TermPattern::Var(v) => match m.get(v) {
                None => m = m.bind(v, value),
                Some(existing) if existing == value => {}
                Some(_) => return None,
            },
        }
    }
    Some(m)
}

/// Evaluates a triple pattern by scanning the graph.
pub fn evaluate_triple_pattern(pattern: TriplePattern, graph: &Graph) -> MappingSet {
    graph
        .iter()
        .filter_map(|&t| match_triple(pattern, t))
        .collect()
}

/// The reference evaluation `⟦P⟧G`.
///
/// ```
/// use owql_algebra::{pattern::Pattern, Mapping};
/// use owql_rdf::datasets::figure_2_g1;
/// use owql_eval::reference::evaluate;
/// // Example 3.1: P = (?X, was_born_in, Chile) OPT (?X, email, ?Y)
/// let p = Pattern::t("?X", "was_born_in", "Chile")
///     .opt(Pattern::t("?X", "email", "?Y"));
/// let out = evaluate(&p, &figure_2_g1());
/// assert!(out.contains(&Mapping::from_str_pairs(&[("X", "Juan")])));
/// assert_eq!(out.len(), 1);
/// ```
pub fn evaluate(pattern: &Pattern, graph: &Graph) -> MappingSet {
    match pattern {
        Pattern::Triple(t) => evaluate_triple_pattern(*t, graph),
        Pattern::And(a, b) => evaluate(a, graph).join(&evaluate(b, graph)),
        Pattern::Opt(a, b) => evaluate(a, graph).left_outer_join(&evaluate(b, graph)),
        Pattern::Union(a, b) => evaluate(a, graph).union(&evaluate(b, graph)),
        Pattern::Select(vars, p) => evaluate(p, graph).project(vars),
        Pattern::Filter(p, r) => evaluate(p, graph).filter(r),
        Pattern::Ns(p) => evaluate(p, graph).maximal(),
        Pattern::Minus(a, b) => evaluate(a, graph).difference(&evaluate(b, graph)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_algebra::condition::Condition;
    use owql_algebra::mapping_set::mapping_set;
    use owql_algebra::pattern::tp;
    use owql_rdf::datasets::{figure_1, figure_2_g1, figure_2_g2};
    use owql_rdf::graph::graph_from;

    #[test]
    fn triple_pattern_matching_basics() {
        let t = Triple::new("a", "p", "b");
        assert_eq!(
            match_triple(tp("?x", "p", "?y"), t),
            Some(Mapping::from_str_pairs(&[("x", "a"), ("y", "b")]))
        );
        assert_eq!(match_triple(tp("?x", "q", "?y"), t), None);
        assert_eq!(match_triple(tp("a", "p", "b"), t), Some(Mapping::new()));
        assert_eq!(match_triple(tp("b", "p", "b"), t), None);
    }

    #[test]
    fn repeated_variable_must_agree() {
        assert_eq!(
            match_triple(tp("?x", "p", "?x"), Triple::new("a", "p", "a")),
            Some(Mapping::from_str_pairs(&[("x", "a")]))
        );
        assert_eq!(
            match_triple(tp("?x", "p", "?x"), Triple::new("a", "p", "b")),
            None
        );
    }

    /// Example 2.2, reproduced step by step.
    #[test]
    fn example_2_2_full() {
        let g = figure_1();

        let stands = evaluate(&Pattern::t("?o", "stands_for", "sharing_rights"), &g);
        assert_eq!(stands, mapping_set(&[&[("o", "The_Pirate_Bay")]]));

        let founders = evaluate(&Pattern::t("?p", "founder", "?o"), &g);
        assert_eq!(founders.len(), 3);

        let supporters = evaluate(&Pattern::t("?p", "supporter", "?o"), &g);
        assert_eq!(
            supporters,
            mapping_set(&[&[("p", "Carl_Lundström"), ("o", "The_Pirate_Bay")]])
        );

        let p1 = Pattern::t("?o", "stands_for", "sharing_rights")
            .and(Pattern::t("?p", "founder", "?o").union(Pattern::t("?p", "supporter", "?o")));
        let p = p1.select(["?p"]);
        let out = evaluate(&p, &g);
        assert_eq!(
            out,
            mapping_set(&[
                &[("p", "Gottfrid_Svartholm")],
                &[("p", "Fredrik_Neij")],
                &[("p", "Peter_Sunde")],
                &[("p", "Carl_Lundström")],
            ])
        );
    }

    /// Example 3.1: non-monotone but weakly monotone behaviour of OPT.
    #[test]
    fn example_3_1_opt_behaviour() {
        let p = Pattern::t("?X", "was_born_in", "Chile").opt(Pattern::t("?X", "email", "?Y"));
        let out1 = evaluate(&p, &figure_2_g1());
        let out2 = evaluate(&p, &figure_2_g2());
        assert_eq!(out1, mapping_set(&[&[("X", "Juan")]]));
        assert_eq!(out2, mapping_set(&[&[("X", "Juan"), ("Y", "juan@puc.cl")]]));
        // Not monotone ...
        assert!(!out1.subset_of(&out2));
        // ... but the answers are subsumption-covered (weak monotonicity).
        assert!(out1.subsumed_by(&out2));
    }

    /// Example 3.3: the non-weakly-monotone pattern.
    #[test]
    fn example_3_3_weak_monotonicity_failure() {
        let p = Pattern::t("?X", "was_born_in", "Chile")
            .and(Pattern::t("?Y", "was_born_in", "Chile").opt(Pattern::t("?Y", "email", "?X")));
        let out1 = evaluate(&p, &figure_2_g1());
        let out2 = evaluate(&p, &figure_2_g2());
        assert_eq!(out1, mapping_set(&[&[("X", "Juan"), ("Y", "Juan")]]));
        assert!(out2.is_empty());
        assert!(!out1.subsumed_by(&out2));
    }

    #[test]
    fn filter_semantics() {
        let g = graph_from(&[("a", "p", "b"), ("c", "p", "d")]);
        let p = Pattern::t("?x", "p", "?y").filter(Condition::eq_const("x", "a"));
        assert_eq!(evaluate(&p, &g), mapping_set(&[&[("x", "a"), ("y", "b")]]));
    }

    #[test]
    fn ns_keeps_maximal_answers() {
        // NS((?x,a,b) UNION ((?x,a,b) AND (?x,c,?y))) — the OPT simulation.
        let g = graph_from(&[("1", "a", "b"), ("1", "c", "2"), ("3", "a", "b")]);
        let base = Pattern::t("?x", "a", "b");
        let p = base
            .clone()
            .union(base.and(Pattern::t("?x", "c", "?y")))
            .ns();
        assert_eq!(
            evaluate(&p, &g),
            mapping_set(&[&[("x", "1"), ("y", "2")], &[("x", "3")]])
        );
    }

    #[test]
    fn minus_direct_semantics() {
        let g = graph_from(&[("1", "a", "b"), ("2", "a", "b"), ("1", "c", "d")]);
        let p = Pattern::t("?x", "a", "b").minus(Pattern::t("?x", "c", "d"));
        assert_eq!(evaluate(&p, &g), mapping_set(&[&[("x", "2")]]));
    }

    #[test]
    fn minus_desugaring_agrees_with_direct() {
        let g = graph_from(&[("1", "a", "b"), ("2", "a", "b"), ("1", "c", "d")]);
        let p = Pattern::t("?x", "a", "b").minus(Pattern::t("?x", "c", "d"));
        assert_eq!(evaluate(&p, &g), evaluate(&p.desugar_minus(), &g));
        // Also on the empty graph and a graph where the right side is empty.
        let g2 = graph_from(&[("1", "a", "b")]);
        assert_eq!(evaluate(&p, &g2), evaluate(&p.desugar_minus(), &g2));
        assert_eq!(
            evaluate(&p, &Graph::new()),
            evaluate(&p.desugar_minus(), &Graph::new())
        );
    }

    #[test]
    fn select_projects() {
        let g = graph_from(&[("a", "p", "b")]);
        let p = Pattern::t("?x", "p", "?y").select(["?y"]);
        assert_eq!(evaluate(&p, &g), mapping_set(&[&[("y", "b")]]));
    }

    #[test]
    fn empty_graph_yields_empty_for_triples() {
        assert!(evaluate(&Pattern::t("?x", "p", "?y"), &Graph::new()).is_empty());
        // But OPT over an empty mandatory side is empty too.
        let p = Pattern::t("?x", "p", "?y").opt(Pattern::t("?x", "q", "?z"));
        assert!(evaluate(&p, &Graph::new()).is_empty());
    }

    #[test]
    fn ground_triple_pattern_yields_empty_mapping() {
        let g = graph_from(&[("a", "p", "b")]);
        let out = evaluate(&Pattern::t("a", "p", "b"), &g);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Mapping::new()));
    }
}
