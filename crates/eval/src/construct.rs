//! CONSTRUCT-query evaluation (Section 6.1).
//!
//! ```text
//! ans(Q, G) = { µ(t) | µ ∈ ⟦P⟧G, t ∈ H, var(t) ⊆ dom(µ) }
//! ```
//!
//! The output is an RDF *graph* (a set of triples), so CONSTRUCT
//! queries compose: `ans` can be fed back as the input of another
//! query — the view-definition use case that motivates Section 6.

use owql_algebra::construct::ConstructQuery;
use owql_algebra::mapping_set::MappingSet;
use owql_rdf::Graph;

/// Instantiates a template over a set of answer mappings.
///
/// Mappings that do not bind every variable of a template triple simply
/// contribute nothing for that triple (Example 6.1: `µ₁` produces no
/// `email` triple because `?e ∉ dom(µ₁)`).
pub fn instantiate_template(query: &ConstructQuery, answers: &MappingSet) -> Graph {
    let mut out = Graph::new();
    for m in answers.iter() {
        for &t in &query.template {
            if let Some(triple) = t.instantiate(m) {
                out.insert(triple);
            }
        }
    }
    out
}

/// Evaluates `ans(Q, G)` with the reference evaluator.
pub fn construct(query: &ConstructQuery, graph: &Graph) -> Graph {
    instantiate_template(query, &crate::reference::evaluate(&query.pattern, graph))
}

/// Evaluates `ans(Q, G)` with the indexed engine.
pub fn construct_indexed(query: &ConstructQuery, graph: &Graph) -> Graph {
    let engine = crate::engine::Engine::new(graph);
    let out = engine
        .run(
            &query.pattern,
            &crate::run::ExecOpts::seq(),
            &owql_exec::Pool::sequential(),
        )
        .expect("unlimited budget cannot time out");
    instantiate_template(query, &out.mappings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_algebra::construct::example_6_1;
    use owql_algebra::pattern::{tp, Pattern};
    use owql_rdf::datasets::{figure_3, figure_4_expected};
    use owql_rdf::graph::graph_from;
    use owql_rdf::Triple;

    /// Example 6.1 end to end: the query over Figure 3 produces exactly
    /// the graph of Figure 4.
    #[test]
    fn example_6_1_produces_figure_4() {
        let q = example_6_1();
        let out = construct(&q, &figure_3());
        assert_eq!(out, figure_4_expected());
        assert_eq!(construct_indexed(&q, &figure_3()), figure_4_expected());
    }

    /// The three mappings µ1, µ2, µ3 of Example 6.1's table.
    #[test]
    fn example_6_1_intermediate_mappings() {
        let q = example_6_1();
        let answers = crate::reference::evaluate(&q.pattern, &figure_3());
        assert_eq!(answers.len(), 3);
        use owql_algebra::Mapping;
        let mu1 = Mapping::from_str_pairs(&[("p", "prof_02"), ("n", "Denis"), ("u", "PUC_Chile")]);
        let mu2 = Mapping::from_str_pairs(&[
            ("p", "prof_01"),
            ("n", "Cristian"),
            ("u", "U_Oxford"),
            ("e", "cris@puc.cl"),
        ]);
        let mu3 = Mapping::from_str_pairs(&[
            ("p", "prof_01"),
            ("n", "Cristian"),
            ("u", "PUC_Chile"),
            ("e", "cris@puc.cl"),
        ]);
        assert!(answers.contains(&mu1));
        assert!(answers.contains(&mu2));
        assert!(answers.contains(&mu3));
    }

    /// Output is a set: duplicate instantiations collapse (the paper
    /// notes (Cristian, email, cris@puc.cl) occurs once although both
    /// µ2 and µ3 generate it).
    #[test]
    fn duplicate_triples_collapse() {
        let q = example_6_1();
        let out = construct(&q, &figure_3());
        assert_eq!(out.iter().filter(|t| t.p.as_str() == "email").count(), 1);
    }

    #[test]
    fn composition_output_feeds_input() {
        // First view: materialize affiliations; second query runs over it.
        let q = example_6_1();
        let view = construct(&q, &figure_3());
        let q2 = owql_algebra::ConstructQuery::new(
            [tp("?u", "hosts", "?n")],
            Pattern::t("?n", "affiliated_to", "?u"),
        );
        let out = construct(&q2, &view);
        assert!(out.contains(&Triple::new("PUC_Chile", "hosts", "Denis")));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn ground_template_triple() {
        // A template triple with no variables appears iff the pattern
        // has at least one answer.
        let q = owql_algebra::ConstructQuery::new(
            [tp("flag", "is", "set")],
            Pattern::t("?x", "p", "?y"),
        );
        let some = graph_from(&[("a", "p", "b")]);
        let none = graph_from(&[("a", "q", "b")]);
        assert_eq!(construct(&q, &some).len(), 1);
        assert!(construct(&q, &none).is_empty());
    }

    #[test]
    fn empty_template_produces_empty_graph() {
        let q = owql_algebra::ConstructQuery::new([], Pattern::t("?x", "p", "?y"));
        assert!(construct(&q, &graph_from(&[("a", "p", "b")])).is_empty());
    }
}
