//! The indexed evaluation engine.
//!
//! Functionally identical to [`crate::reference::evaluate`] (this is
//! enforced by a randomized differential test suite — see the tests at
//! the bottom and `tests/integration_properties.rs`), but:
//!
//! * triple patterns are answered through the SPO/POS/OSP indexes of
//!   [`owql_rdf::GraphIndex`],
//! * an `AND`-spine is flattened and evaluated as one index nested-loop
//!   join: bindings accumulated so far are substituted into the next
//!   triple pattern, and the next pattern is chosen greedily by
//!   estimated selectivity (fewest unbound variables, then smallest
//!   constant-only index cardinality),
//! * non-triple conjuncts of a spine are evaluated recursively and
//!   hash-joined in.
//!
//! The `engine_ablation` benchmark quantifies each of these choices.

use owql_algebra::mapping::Mapping;
use owql_algebra::mapping_set::MappingSet;
use owql_algebra::pattern::{Pattern, TermPattern, TriplePattern};
use owql_rdf::{Graph, GraphIndex, Iri, SnapshotIndex, TripleLookup};
use std::collections::BTreeSet;

/// An indexed engine bound to one graph (or any [`TripleLookup`]
/// backend — see [`Engine::for_snapshot`] for evaluation over the live
/// snapshots of `owql-store`).
///
/// ```
/// use owql_algebra::pattern::Pattern;
/// use owql_eval::Engine;
/// use owql_rdf::datasets::figure_1;
/// let g = figure_1();
/// let engine = Engine::new(&g);
/// let p = Pattern::t("?p", "founder", "The_Pirate_Bay");
/// assert_eq!(engine.evaluate(&p).len(), 3);
/// ```
#[derive(Debug)]
pub struct Engine<I: TripleLookup = GraphIndex> {
    index: I,
}

impl Engine {
    /// Builds the engine (and its indexes) for `graph`.
    pub fn new(graph: &Graph) -> Engine {
        Engine {
            index: GraphIndex::build(graph),
        }
    }
}

impl Engine<SnapshotIndex> {
    /// Binds the engine to a store snapshot: the same operators run
    /// over the snapshot's base index merged with its delta overlay, so
    /// live data is queried without any index rebuild.
    ///
    /// `owql_store::Snapshot` derefs to [`SnapshotIndex`], so this
    /// accepts `&snapshot` directly.
    pub fn for_snapshot(snapshot: &SnapshotIndex) -> Engine<SnapshotIndex> {
        Engine {
            index: snapshot.clone(),
        }
    }
}

impl<I: TripleLookup> Engine<I> {
    /// Wraps an already-built lookup backend.
    pub fn with_index(index: I) -> Engine<I> {
        Engine { index }
    }

    /// Access to the underlying index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Renders the evaluation strategy for `pattern` as a query plan
    /// (see [`crate::plan`]).
    pub fn explain(&self, pattern: &Pattern) -> crate::plan::Plan {
        crate::plan::plan(pattern, &self.index)
    }

    /// Runs the static optimizer ([`crate::optimize::optimize`]) and
    /// evaluates the result — the recommended entry point for
    /// user-supplied queries.
    pub fn evaluate_optimized(&self, pattern: &Pattern) -> MappingSet {
        self.evaluate(&crate::optimize::optimize(pattern))
    }

    /// Evaluates `⟦P⟧G` over the bound graph.
    pub fn evaluate(&self, pattern: &Pattern) -> MappingSet {
        match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let mut triples = Vec::new();
                let mut others = Vec::new();
                flatten_and_spine(pattern, &mut triples, &mut others);
                self.evaluate_spine(triples, &others)
            }
            Pattern::Opt(a, b) => self.evaluate(a).left_outer_join(&self.evaluate(b)),
            Pattern::Union(a, b) => self.evaluate(a).union(&self.evaluate(b)),
            Pattern::Select(vars, p) => self.evaluate(p).project(vars),
            Pattern::Filter(p, r) => self.evaluate(p).filter(r),
            Pattern::Ns(p) => self.evaluate(p).maximal(),
            Pattern::Minus(a, b) => self.evaluate(a).difference(&self.evaluate(b)),
        }
    }

    /// Evaluates a flattened `AND`-spine: `triples` joined by index
    /// nested loops in greedy order, then `others` hash-joined in.
    fn evaluate_spine(&self, mut triples: Vec<TriplePattern>, others: &[&Pattern]) -> MappingSet {
        // Seed: sub-results of the non-triple conjuncts (smallest first
        // keeps intermediate joins small).
        let mut current: Vec<Mapping> = vec![Mapping::new()];
        if !others.is_empty() {
            let mut sub: Vec<MappingSet> = others.iter().map(|p| self.evaluate(p)).collect();
            sub.sort_by_key(MappingSet::len);
            let mut acc = sub.remove(0);
            for s in sub {
                acc = acc.join(&s);
            }
            current = acc.iter().cloned().collect();
        }

        // Greedy index nested-loop over the triple patterns.
        let mut bound: BTreeSet<owql_algebra::Variable> = BTreeSet::new();
        if let Some(first) = current.first() {
            bound.extend(first.dom());
        }
        // All mappings in `current` share a domain only when seeded from
        // a single conjunct; for safety recompute per-step using the
        // union of domains (a variable bound in *some* mapping still
        // constrains matching for that mapping individually; the
        // statically-tracked `bound` set is only an ordering heuristic).
        while !triples.is_empty() {
            let next_idx = self.pick_next(&triples, &bound);
            let t = triples.swap_remove(next_idx);
            let mut next: Vec<Mapping> = Vec::new();
            for m in &current {
                self.extend_matches(t, m, &mut next);
            }
            // Set semantics: dedup.
            let set: MappingSet = next.into_iter().collect();
            current = set.iter().cloned().collect();
            bound.extend(t.vars());
            if current.is_empty() {
                return MappingSet::new();
            }
        }
        current.into_iter().collect()
    }

    /// Greedy choice: fewest variables not yet bound, breaking ties by
    /// the constant-only index cardinality estimate.
    fn pick_next(
        &self,
        triples: &[TriplePattern],
        bound: &BTreeSet<owql_algebra::Variable>,
    ) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX);
        for (i, t) in triples.iter().enumerate() {
            let unbound = t.vars().iter().filter(|v| !bound.contains(v)).count();
            let (s, p, o) = constant_positions(*t);
            let card = self.index.cardinality(s, p, o);
            let key = (unbound, card);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Extends `m` with every index match of `t` under `m`'s bindings.
    fn extend_matches(&self, t: TriplePattern, m: &Mapping, out: &mut Vec<Mapping>) {
        let resolve = |tp: TermPattern| -> Option<Iri> {
            match tp {
                TermPattern::Iri(i) => Some(i),
                TermPattern::Var(v) => m.get(v),
            }
        };
        let (s, p, o) = (resolve(t.s), resolve(t.p), resolve(t.o));
        for matched in self.index.matching(s, p, o) {
            if let Some(binding) = crate::reference::match_triple(t, matched) {
                if let Some(u) = m.union(&binding) {
                    out.push(u);
                }
            }
        }
    }
}

/// Splits an `AND`-spine into its triple-pattern leaves and the other
/// conjunct sub-patterns.
fn flatten_and_spine<'a>(
    p: &'a Pattern,
    triples: &mut Vec<TriplePattern>,
    others: &mut Vec<&'a Pattern>,
) {
    match p {
        Pattern::And(a, b) => {
            flatten_and_spine(a, triples, others);
            flatten_and_spine(b, triples, others);
        }
        Pattern::Triple(t) => triples.push(*t),
        other => others.push(other),
    }
}

fn constant_positions(t: TriplePattern) -> (Option<Iri>, Option<Iri>, Option<Iri>) {
    (t.s.as_iri(), t.p.as_iri(), t.o.as_iri())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::evaluate;
    use owql_algebra::analysis::Operators;
    use owql_algebra::random::{random_pattern, PatternConfig};
    use owql_rdf::datasets::figure_1;
    use owql_rdf::generate;

    #[test]
    fn matches_reference_on_figure_1() {
        let g = figure_1();
        let engine = Engine::new(&g);
        let p = Pattern::t("?o", "stands_for", "sharing_rights")
            .and(Pattern::t("?p", "founder", "?o").union(Pattern::t("?p", "supporter", "?o")));
        assert_eq!(engine.evaluate(&p), evaluate(&p, &g));
        assert_eq!(engine.evaluate(&p).len(), 4);
    }

    #[test]
    fn long_and_spine_with_bound_propagation() {
        let g = generate::chain("next", 30);
        let engine = Engine::new(&g);
        // v0 -> ?a -> ?b -> ?c
        let p = Pattern::t("v0", "next", "?a")
            .and(Pattern::t("?a", "next", "?b"))
            .and(Pattern::t("?b", "next", "?c"));
        let out = engine.evaluate(&p);
        assert_eq!(out.len(), 1);
        assert_eq!(out, evaluate(&p, &g));
    }

    #[test]
    fn spine_with_non_triple_conjunct() {
        let g = generate::chain("next", 10);
        let engine = Engine::new(&g);
        let p = Pattern::t("?a", "next", "?b")
            .and(Pattern::t("?b", "next", "?c").union(Pattern::t("?b", "next", "?c")));
        assert_eq!(engine.evaluate(&p), evaluate(&p, &g));
    }

    #[test]
    fn cartesian_spine() {
        // Two disconnected triple patterns: a genuine cross product.
        let g = generate::star("hub", "spoke", 4);
        let engine = Engine::new(&g);
        let p = Pattern::t("hub", "spoke", "?x").and(Pattern::t("hub", "spoke", "?y"));
        let out = engine.evaluate(&p);
        assert_eq!(out.len(), 16);
        assert_eq!(out, evaluate(&p, &g));
    }

    /// The central differential test: on hundreds of random
    /// (pattern, graph) pairs across the full NS–SPARQL operator set,
    /// the engine and the reference evaluator agree exactly.
    #[test]
    fn differential_random_full_sparql() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        for seed in 0..300u64 {
            let p = random_pattern(&cfg, seed);
            let g =
                generate::uniform(40, 5, 5, 5, seed ^ 0xdead).union(&graph_over_pattern_iris(seed));
            let engine = Engine::new(&g);
            assert_eq!(
                engine.evaluate(&p),
                evaluate(&p, &g),
                "seed {seed}, pattern {p}"
            );
        }
    }

    /// A small graph over the generator vocabulary `i0..i4` so random
    /// patterns actually match something.
    fn graph_over_pattern_iris(seed: u64) -> owql_rdf::Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = owql_rdf::Graph::new();
        for _ in 0..25 {
            let t = owql_rdf::Triple::new(
                format!("i{}", rng.gen_range(0..5)).as_str(),
                format!("i{}", rng.gen_range(0..5)).as_str(),
                format!("i{}", rng.gen_range(0..5)).as_str(),
            );
            g.insert(t);
        }
        g
    }

    #[test]
    fn evaluate_optimized_agrees_with_plain() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        for seed in 0..60u64 {
            let p = random_pattern(&cfg, seed);
            let g = generate::uniform(30, 5, 5, 5, seed);
            let engine = Engine::new(&g);
            assert_eq!(
                engine.evaluate_optimized(&p),
                engine.evaluate(&p),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let engine = Engine::new(&Graph::new());
        assert!(engine.evaluate(&Pattern::t("?x", "?y", "?z")).is_empty());
        assert!(engine.index().is_empty());
    }
}
