//! The indexed evaluation engine.
//!
//! Functionally identical to [`crate::reference::evaluate`] (this is
//! enforced by a randomized differential test suite — see the tests at
//! the bottom and `tests/integration_properties.rs`), but:
//!
//! * triple patterns are answered through the SPO/POS/OSP indexes of
//!   [`owql_rdf::GraphIndex`],
//! * an `AND`-spine is flattened and evaluated as one index nested-loop
//!   join: bindings accumulated so far are substituted into the next
//!   triple pattern, and the next pattern is chosen greedily by
//!   estimated selectivity (fewest unbound variables, then smallest
//!   constant-only index cardinality),
//! * non-triple conjuncts of a spine are evaluated recursively and
//!   hash-joined in.
//!
//! The single entry point is [`Engine::run`]: the execution strategy —
//! sequential or pool-parallel scheduling, span tracing, the static
//! optimizer, a cooperative deadline, an admission ceiling — is
//! selected by an [`ExecOpts`] value, not by the method name. (The
//! historical `evaluate*` method matrix has been removed after its
//! deprecation cycle.)
//!
//! Every evaluation path threads an [`EvalBudget`] and checks it
//! between operators (and every `BUDGET_CHECK_STRIDE` candidate
//! bindings inside the nested-loop joins), so a run with a deadline
//! unwinds with [`EvalError::Timeout`] instead of hanging.
//!
//! The `engine_ablation` benchmark quantifies each of these choices.

use crate::run::{
    ColumnarPath, EvalBudget, EvalError, ExecMode, ExecOpts, RunOutcome, BUDGET_CHECK_STRIDE,
};
use owql_algebra::mapping::Mapping;
use owql_algebra::mapping_set::MappingSet;
use owql_algebra::normal_form::union_spine;
use owql_algebra::pattern::{Pattern, TermPattern, TriplePattern};
use owql_algebra::Variable;
use owql_exec::{chunk_ranges, Pool};
use owql_obs::{OpKind, Recorder, SpanId};
use owql_rdf::{Graph, GraphIndex, Iri, SnapshotIndex, TripleLookup};
use std::collections::BTreeSet;

/// An AND-spine partition is only fanned out once the candidate set is
/// at least this many bindings per worker — below that the chunk
/// bookkeeping costs more than the join it parallelizes.
const MIN_BINDINGS_PER_WORKER: usize = 2;

/// Minimum candidate bindings per dealt chunk of a partitioned
/// AND-spine. The profiled EXPLAIN ANALYZE data behind the `spine`
/// regression in BENCH_parallel.json showed small partitions paying
/// more in chunk dealing + per-chunk dedup than the join they
/// parallelize; capping the chunk count at
/// `candidates / MIN_BINDINGS_PER_CHUNK` (sequential fallback below
/// one full chunk) recovers the sequential baseline on small spines
/// while leaving genuinely wide spines fanned out.
pub(crate) const MIN_BINDINGS_PER_CHUNK: usize = 4096;

/// Expect-message for unwrapping runs made with an unlimited budget.
const NO_BUDGET: &str = "unlimited budget cannot time out";

/// An indexed engine bound to one graph (or any [`TripleLookup`]
/// backend — see [`Engine::for_snapshot`] for evaluation over the live
/// snapshots of `owql-store`).
///
/// ```
/// use owql_algebra::pattern::Pattern;
/// use owql_eval::{Engine, ExecOpts};
/// use owql_exec::Pool;
/// use owql_rdf::datasets::figure_1;
/// let g = figure_1();
/// let engine = Engine::new(&g);
/// let p = Pattern::t("?p", "founder", "The_Pirate_Bay");
/// let out = engine.run(&p, &ExecOpts::seq(), &Pool::sequential()).unwrap();
/// assert_eq!(out.mappings.len(), 3);
/// ```
#[derive(Debug)]
pub struct Engine<I: TripleLookup = GraphIndex> {
    index: I,
}

impl Engine {
    /// Builds the engine (and its indexes) for `graph`.
    pub fn new(graph: &Graph) -> Engine {
        Engine {
            index: GraphIndex::build(graph),
        }
    }
}

impl Engine<SnapshotIndex> {
    /// Binds the engine to a store snapshot: the same operators run
    /// over the snapshot's base index merged with its delta overlay, so
    /// live data is queried without any index rebuild.
    ///
    /// `owql_store::Snapshot` derefs to [`SnapshotIndex`], so this
    /// accepts `&snapshot` directly.
    pub fn for_snapshot(snapshot: &SnapshotIndex) -> Engine<SnapshotIndex> {
        Engine {
            index: snapshot.clone(),
        }
    }
}

impl<I: TripleLookup> Engine<I> {
    /// Wraps an already-built lookup backend.
    pub fn with_index(index: I) -> Engine<I> {
        Engine { index }
    }

    /// Access to the underlying index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Renders the evaluation strategy for `pattern` as a query plan
    /// (see [`crate::plan`]).
    pub fn explain(&self, pattern: &Pattern) -> crate::plan::Plan {
        crate::plan::plan(pattern, &self.index)
    }

    /// Sequential `⟦P⟧G` under a cooperative `budget`.
    fn try_evaluate(
        &self,
        pattern: &Pattern,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        budget.check()?;
        Ok(match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let (triples, others) = spine_parts(pattern);
                let sub: Vec<MappingSet> = others
                    .iter()
                    .map(|p| self.try_evaluate(p, budget))
                    .collect::<Result<_, _>>()?;
                let (current, bound) = seed_spine(sub);
                self.join_spine(current, triples, bound, budget)?
            }
            Pattern::Opt(a, b) => self
                .try_evaluate(a, budget)?
                .left_outer_join(&self.try_evaluate(b, budget)?),
            Pattern::Union(a, b) => self
                .try_evaluate(a, budget)?
                .union(&self.try_evaluate(b, budget)?),
            Pattern::Select(vars, p) => self.try_evaluate(p, budget)?.project(vars),
            Pattern::Filter(p, r) => self.try_evaluate(p, budget)?.filter(r),
            Pattern::Ns(p) => self.try_evaluate(p, budget)?.maximal(),
            Pattern::Minus(a, b) => self
                .try_evaluate(a, budget)?
                .difference(&self.try_evaluate(b, budget)?),
        })
    }

    /// The greedy index nested-loop join over the triple patterns of a
    /// flattened `AND`-spine, from an already-seeded candidate set.
    ///
    /// This is the shared seam of the sequential and parallel engines:
    /// [`Engine::try_evaluate`] calls it once over the full seed, the
    /// parallel spine partitioner calls it per candidate chunk. `bound`
    /// tracks statically-bound variables — an *ordering heuristic* only
    /// (a variable bound in *some* mapping still constrains matching
    /// for that mapping individually), so chunks sharing one global
    /// `bound` pick identical join orders.
    fn join_spine(
        &self,
        mut current: Vec<Mapping>,
        mut triples: Vec<TriplePattern>,
        mut bound: BTreeSet<Variable>,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        while !triples.is_empty() {
            budget.check()?;
            let next_idx = self.pick_next(&triples, &bound);
            let t = triples.swap_remove(next_idx);
            let mut next: Vec<Mapping> = Vec::new();
            for (i, m) in current.iter().enumerate() {
                if i % BUDGET_CHECK_STRIDE == BUDGET_CHECK_STRIDE - 1 {
                    budget.check()?;
                }
                self.extend_matches(t, m, &mut next);
            }
            // Set semantics: dedup.
            let set: MappingSet = next.into_iter().collect();
            current = set.into_iter().collect();
            bound.extend(t.vars());
            if current.is_empty() {
                return Ok(MappingSet::new());
            }
        }
        Ok(current.into_iter().collect())
    }

    /// Greedy choice: fewest variables not yet bound, breaking ties by
    /// the constant-only index cardinality estimate.
    fn pick_next(
        &self,
        triples: &[TriplePattern],
        bound: &BTreeSet<owql_algebra::Variable>,
    ) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX);
        for (i, t) in triples.iter().enumerate() {
            let unbound = t.vars().iter().filter(|v| !bound.contains(v)).count();
            let (s, p, o) = constant_positions(*t);
            let card = self.index.cardinality(s, p, o);
            let key = (unbound, card);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Extends `m` with every index match of `t` under `m`'s bindings.
    fn extend_matches(&self, t: TriplePattern, m: &Mapping, out: &mut Vec<Mapping>) {
        let resolve = |tp: TermPattern| -> Option<Iri> {
            match tp {
                TermPattern::Iri(i) => Some(i),
                TermPattern::Var(v) => m.get(v),
            }
        };
        let (s, p, o) = (resolve(t.s), resolve(t.p), resolve(t.o));
        for matched in self.index.matching(s, p, o) {
            if let Some(binding) = crate::reference::match_triple(t, matched) {
                if let Some(u) = m.union(&binding) {
                    out.push(u);
                }
            }
        }
    }
}

/// The unified entry point, plus parallel evaluation over a pool of
/// workers — available whenever the lookup backend is shareable across
/// threads (`GraphIndex` and the store's `SnapshotIndex` both are).
///
/// Three operator shapes fan out, mirroring the independence structure
/// of the semantics:
///
/// * **UNION** — the disjuncts of the syntactic UNION spine are fully
///   independent sub-evaluations (`⟦P₁ UNION P₂⟧G = ⟦P₁⟧G ∪ ⟦P₂⟧G`);
///   each runs on a worker and the results are merged with the
///   consuming [`MappingSet::union_all`].
/// * **AND-spines** — the candidate-binding set is partitioned into
///   per-worker chunks after a short sequential ramp-up; every chunk
///   runs the same greedy bound-propagation join (`Engine::join_spine`)
///   locally, and per-chunk answer sets union to exactly the global
///   answer (dedup placement never changes the set).
/// * **NS** — subsumption-maximality filtering runs through
///   [`MappingSet::maximal_parallel`] (domain-grouped shadow sets, or
///   pairwise comparison blocked into tiles across workers).
///
/// A 1-thread pool short-circuits to the sequential path, and every
/// width is held to exact agreement with it by differential tests here
/// and in `tests/integration_parallel.rs`.
impl<I: TripleLookup + Sync> Engine<I> {
    /// Evaluates `⟦P⟧G` under `opts` — THE entry point; every other
    /// evaluation method on `Engine`, `Store`, and `Snapshot` is a thin
    /// wrapper over it.
    ///
    /// `pool` is only consulted in [`ExecMode::Parallel`]; pass
    /// [`Pool::sequential`] for sequential runs. The outcome carries a
    /// [`owql_obs::Profile`] iff `opts.trace` is set. A set
    /// `opts.deadline` turns a long evaluation into
    /// [`EvalError::Timeout`] instead of an open-ended hang;
    /// `opts.cache` is ignored here (the bare engine has no cache —
    /// see `Store::query_request`).
    pub fn run(
        &self,
        pattern: &Pattern,
        opts: &ExecOpts,
        pool: &Pool,
    ) -> Result<RunOutcome, EvalError> {
        crate::run::check_admission(pattern, opts)?;
        let budget = EvalBudget::from_opts(opts);
        let mut prunes = owql_obs::PruneObs::default();
        let optimized;
        let pattern = if opts.optimize {
            (optimized, prunes) = crate::optimize::optimize_with_stats(pattern);
            &optimized
        } else {
            pattern
        };
        let rec = if opts.trace {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        rec.record_prunes(prunes);
        let parallel = opts.mode == ExecMode::Parallel && pool.threads() > 1;
        // The columnar path covers traced and untraced runs alike: the
        // id-batch evaluator records its own per-operator spans (with
        // `estimated_rows` seeded from run cardinality) into `rec`, so
        // tracing no longer forces the term-at-a-time engine.
        let mut columnar_path = ColumnarPath::Disabled;
        if opts.columnar_enabled() {
            if let Some(mappings) =
                crate::columnar::try_run(self, pattern, parallel, pool, &rec, &budget)
            {
                return Ok(RunOutcome {
                    mappings: mappings?,
                    profile: opts.trace.then(|| rec.profile()),
                    columnar_path: ColumnarPath::Used,
                    prunes,
                });
            }
            // Columnar was requested but the backend/query shape cannot
            // serve it: fall back loudly, never silently.
            rec.record_columnar_fallback();
            columnar_path = ColumnarPath::Fallback;
        }
        let mappings = match (parallel, opts.trace) {
            (false, false) => self.try_evaluate(pattern, &budget)?,
            (false, true) => self.try_eval_traced(pattern, &rec, SpanId::ROOT, &budget)?,
            (true, false) => self.try_eval_par(pattern, pool, &budget)?,
            (true, true) => self.try_eval_par_traced(pattern, pool, &rec, SpanId::ROOT, &budget)?,
        };
        Ok(RunOutcome {
            mappings,
            profile: opts.trace.then(|| rec.profile()),
            columnar_path,
            prunes,
        })
    }

    /// [`Engine::run`]'s scatter-gather sibling: evaluates over
    /// `shard_runs` (disjoint subject-hash partitions of this engine's
    /// snapshot, one [`Pool`] per shard) with the same admission,
    /// optimizer, deadline, and tracing semantics. Returns `None` when
    /// the pattern or backend is outside the columnar envelope — the
    /// caller then falls back to [`Engine::run`], exactly like the
    /// single-node columnar fallback.
    pub fn run_sharded(
        &self,
        pattern: &Pattern,
        opts: &ExecOpts,
        shard_runs: &[owql_rdf::IdRuns],
        pools: &[Pool],
        metrics: Option<&owql_obs::ShardMetrics>,
    ) -> Option<Result<RunOutcome, EvalError>>
    where
        I: Sync,
    {
        if !opts.columnar_enabled() {
            return None;
        }
        if let Err(e) = crate::run::check_admission(pattern, opts) {
            return Some(Err(e));
        }
        let budget = EvalBudget::from_opts(opts);
        let mut prunes = owql_obs::PruneObs::default();
        let optimized;
        let pattern = if opts.optimize {
            (optimized, prunes) = crate::optimize::optimize_with_stats(pattern);
            &optimized
        } else {
            pattern
        };
        let rec = if opts.trace {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        rec.record_prunes(prunes);
        let mappings = crate::sharded::try_run_sharded(
            self, pattern, shard_runs, pools, &rec, &budget, metrics,
        )?;
        Some(mappings.map(|mappings| RunOutcome {
            mappings,
            profile: opts.trace.then(|| rec.profile()),
            columnar_path: ColumnarPath::Used,
            prunes,
        }))
    }

    fn try_eval_par(
        &self,
        pattern: &Pattern,
        pool: &Pool,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        budget.check()?;
        Ok(match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let (triples, others) = spine_parts(pattern);
                self.evaluate_spine_parallel(triples, &others, pool, budget)?
            }
            Pattern::Union(..) => {
                let disjuncts = union_spine(pattern);
                let parts = pool.map(&disjuncts, |d| self.try_eval_par(d, pool, budget));
                MappingSet::union_all(parts.into_iter().collect::<Result<Vec<_>, _>>()?)
            }
            Pattern::Opt(a, b) => {
                let [left, right] = self.eval_both(a, b, pool, budget)?;
                left.left_outer_join(&right)
            }
            Pattern::Minus(a, b) => {
                let [left, right] = self.eval_both(a, b, pool, budget)?;
                left.difference(&right)
            }
            Pattern::Select(vars, p) => self.try_eval_par(p, pool, budget)?.project(vars),
            Pattern::Filter(p, r) => self.try_eval_par(p, pool, budget)?.filter(r),
            Pattern::Ns(p) => self.try_eval_par(p, pool, budget)?.maximal_parallel(pool),
        })
    }

    /// Evaluates two independent subpatterns, one per worker.
    fn eval_both(
        &self,
        a: &Pattern,
        b: &Pattern,
        pool: &Pool,
        budget: &EvalBudget,
    ) -> Result<[MappingSet; 2], EvalError> {
        let mut results = pool
            .map(&[a, b], |p| self.try_eval_par(p, pool, budget))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let right = results.pop().expect("two results");
        let left = results.pop().expect("two results");
        Ok([left, right])
    }

    /// The partitioned AND-spine: seed from the non-triple conjuncts
    /// (evaluated concurrently — they are independent), expand triple
    /// patterns sequentially until the candidate set is wide enough,
    /// then split it into chunks and run the remaining join per worker.
    fn evaluate_spine_parallel(
        &self,
        mut triples: Vec<TriplePattern>,
        others: &[&Pattern],
        pool: &Pool,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        let sub = pool
            .map(others, |p| self.try_eval_par(p, pool, budget))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let (mut current, mut bound) = seed_spine(sub);

        // Ramp-up: a seed of one empty mapping (or a handful of
        // conjunct bindings) has no parallelism to expose yet; expanding
        // the most selective pattern first is exactly what the
        // sequential engine does, and it manufactures the fan-out.
        let target = pool.threads() * MIN_BINDINGS_PER_WORKER;
        while !triples.is_empty() && current.len() < target {
            budget.check()?;
            let next_idx = self.pick_next(&triples, &bound);
            let t = triples.swap_remove(next_idx);
            let mut next: Vec<Mapping> = Vec::new();
            for m in &current {
                self.extend_matches(t, m, &mut next);
            }
            let set: MappingSet = next.into_iter().collect();
            current = set.into_iter().collect();
            bound.extend(t.vars());
            if current.is_empty() {
                return Ok(MappingSet::new());
            }
        }
        if triples.is_empty() {
            return Ok(current.into_iter().collect());
        }

        // Partition: chunks share the global `bound`, so each worker
        // picks the same greedy join order, and the union of per-chunk
        // answer sets is the global answer set. The chunk count is
        // capped so every chunk carries at least
        // `MIN_BINDINGS_PER_CHUNK` bindings — a candidate set below one
        // full chunk falls back to the sequential join, because dealing
        // overhead and per-chunk dedup would outweigh the fan-out.
        let max_chunks = current.len() / MIN_BINDINGS_PER_CHUNK;
        if max_chunks < 2 {
            return self.join_spine(current, triples, bound, budget);
        }
        let ranges = chunk_ranges(current.len(), max_chunks.min(pool.threads() * 4));
        let chunks: Vec<&[Mapping]> = ranges
            .into_iter()
            .map(|(lo, hi)| &current[lo..hi])
            .collect();
        let parts = pool.map(&chunks, |chunk| {
            self.join_spine(chunk.to_vec(), triples.clone(), bound.clone(), budget)
        });
        Ok(MappingSet::union_all(
            parts.into_iter().collect::<Result<Vec<_>, _>>()?,
        ))
    }
}

/// Instrumented (traced) evaluation — the observability path.
///
/// `try_eval_traced` mirrors the plain sequential path operator for
/// operator, recording one [`owql_obs::Span`] per algebra node (kind,
/// label, input/output cardinality, wall time) plus one `SCAN` span
/// per index nested-loop step, into a caller-supplied
/// [`Recorder`]. A **disabled** recorder records nothing and skips all
/// clock reads, so carrying the traced API costs almost nothing when
/// tracing is off; differential tests (`tests/integration_obs.rs`)
/// hold both paths to exact answer agreement at widths 1 and 8.
impl<I: TripleLookup> Engine<I> {
    fn try_eval_traced(
        &self,
        pattern: &Pattern,
        rec: &Recorder,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        budget.check()?;
        let id = rec.begin();
        let timer = rec.timer();
        let (label, rows_in, out) = match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let (triples, others) = spine_parts(pattern);
                let label = spine_label(triples.len(), others.len());
                let sub: Vec<MappingSet> = others
                    .iter()
                    .map(|p| self.try_eval_traced(p, rec, id, budget))
                    .collect::<Result<_, _>>()?;
                let (current, bound) = seed_spine(sub);
                let seeded = current.len() as u64;
                (
                    label,
                    Some(seeded),
                    self.join_spine_traced(current, triples, bound, rec, id, budget)?,
                )
            }
            Pattern::Opt(a, b) => {
                let left = self.try_eval_traced(a, rec, id, budget)?;
                let right = self.try_eval_traced(b, rec, id, budget)?;
                let rows_in = left.len() as u64;
                (
                    "left outer join".to_owned(),
                    Some(rows_in),
                    left.left_outer_join(&right),
                )
            }
            Pattern::Union(a, b) => {
                let left = self.try_eval_traced(a, rec, id, budget)?;
                let right = self.try_eval_traced(b, rec, id, budget)?;
                ("union".to_owned(), None, left.union(&right))
            }
            Pattern::Minus(a, b) => {
                let left = self.try_eval_traced(a, rec, id, budget)?;
                let right = self.try_eval_traced(b, rec, id, budget)?;
                let rows_in = left.len() as u64;
                (
                    "difference".to_owned(),
                    Some(rows_in),
                    left.difference(&right),
                )
            }
            Pattern::Select(vars, p) => {
                let inner = self.try_eval_traced(p, rec, id, budget)?;
                let rows_in = inner.len() as u64;
                (project_label(vars), Some(rows_in), inner.project(vars))
            }
            Pattern::Filter(p, r) => {
                let inner = self.try_eval_traced(p, rec, id, budget)?;
                let rows_in = inner.len() as u64;
                (format!("filter {r}"), Some(rows_in), inner.filter(r))
            }
            Pattern::Ns(p) => {
                let inner = self.try_eval_traced(p, rec, id, budget)?;
                let candidates = inner.len() as u64;
                let out = inner.maximal();
                rec.record_ns(candidates, out.len() as u64);
                ("maximal answers".to_owned(), Some(candidates), out)
            }
        };
        rec.record_span(
            id,
            parent,
            op_kind(pattern),
            &label,
            rows_in,
            out.len() as u64,
            &timer,
        );
        Ok(out)
    }

    /// [`Engine::join_spine`] with one `SCAN` span per nested-loop
    /// step: input candidates in, deduplicated bindings out — the
    /// per-join cardinalities EXPLAIN ANALYZE reports.
    #[allow(clippy::too_many_arguments)]
    fn join_spine_traced(
        &self,
        mut current: Vec<Mapping>,
        mut triples: Vec<TriplePattern>,
        mut bound: BTreeSet<Variable>,
        rec: &Recorder,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        while !triples.is_empty() {
            budget.check()?;
            let next_idx = self.pick_next(&triples, &bound);
            let t = triples.swap_remove(next_idx);
            let id = rec.begin();
            let timer = rec.timer();
            let rows_in = current.len() as u64;
            let mut next: Vec<Mapping> = Vec::new();
            for (i, m) in current.iter().enumerate() {
                if i % BUDGET_CHECK_STRIDE == BUDGET_CHECK_STRIDE - 1 {
                    budget.check()?;
                }
                self.extend_matches(t, m, &mut next);
            }
            let set: MappingSet = next.into_iter().collect();
            current = set.into_iter().collect();
            bound.extend(t.vars());
            rec.record_span(
                id,
                parent,
                OpKind::Scan,
                &format!("{t} via {}", crate::plan::access_path(t)),
                Some(rows_in),
                current.len() as u64,
                &timer,
            );
            if current.is_empty() {
                return Ok(MappingSet::new());
            }
        }
        Ok(current.into_iter().collect())
    }
}

/// Instrumented parallel evaluation: the parallel operators with spans,
/// NS pruning counters, and per-worker pool stats (via
/// [`Pool::map_profiled`]) recorded into a shared [`Recorder`].
impl<I: TripleLookup + Sync> Engine<I> {
    /// Runs the query and returns the plan annotated with the observed
    /// per-node output cardinalities, wall times, and (on columnar
    /// scan steps) the planner-side `estimated_rows` — EXPLAIN
    /// ANALYZE. Routed through [`Engine::run`] with sequential traced
    /// options, so it profiles whichever engine actually serves
    /// queries: the columnar id-batch evaluator when the backend has
    /// an id view, the term-at-a-time engine otherwise. (See
    /// [`crate::plan::AnnotatedPlan`] for the rendered shape;
    /// [`Engine::explain`] stays the purely static EXPLAIN.)
    pub fn explain_analyze(&self, pattern: &Pattern) -> crate::plan::AnnotatedPlan {
        let outcome = self
            .run(pattern, &ExecOpts::seq().traced(), &Pool::sequential())
            .expect(NO_BUDGET);
        let profile = outcome.profile.expect("traced run has a profile");
        crate::plan::annotate(&profile.spans, outcome.mappings.len())
    }

    /// [`Engine::explain_analyze`] over the parallel engine: the
    /// annotated plan additionally reflects the parallel operators
    /// (partitioned spines, fanned-out unions).
    pub fn explain_analyze_parallel(
        &self,
        pattern: &Pattern,
        pool: &Pool,
    ) -> crate::plan::AnnotatedPlan {
        let outcome = self
            .run(pattern, &ExecOpts::parallel().traced(), pool)
            .expect(NO_BUDGET);
        let profile = outcome.profile.expect("traced run has a profile");
        crate::plan::annotate(&profile.spans, outcome.mappings.len())
    }

    fn try_eval_par_traced(
        &self,
        pattern: &Pattern,
        pool: &Pool,
        rec: &Recorder,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<MappingSet, EvalError> {
        budget.check()?;
        let id = rec.begin();
        let timer = rec.timer();
        let (label, rows_in, out) = match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let (triples, others) = spine_parts(pattern);
                let label = spine_label(triples.len(), others.len());
                let (rows_in, out) =
                    self.evaluate_spine_parallel_traced(triples, &others, pool, rec, id, budget)?;
                (label, rows_in, out)
            }
            Pattern::Union(..) => {
                let disjuncts = union_spine(pattern);
                let label = format!("union of {} disjuncts", disjuncts.len());
                let parts = pool
                    .map_profiled(&disjuncts, rec, |d| {
                        self.try_eval_par_traced(d, pool, rec, id, budget)
                    })
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?;
                (label, None, MappingSet::union_all(parts))
            }
            Pattern::Opt(a, b) => {
                let [left, right] = self.eval_both_traced(a, b, pool, rec, id, budget)?;
                let rows_in = left.len() as u64;
                (
                    "left outer join".to_owned(),
                    Some(rows_in),
                    left.left_outer_join(&right),
                )
            }
            Pattern::Minus(a, b) => {
                let [left, right] = self.eval_both_traced(a, b, pool, rec, id, budget)?;
                let rows_in = left.len() as u64;
                (
                    "difference".to_owned(),
                    Some(rows_in),
                    left.difference(&right),
                )
            }
            Pattern::Select(vars, p) => {
                let inner = self.try_eval_par_traced(p, pool, rec, id, budget)?;
                let rows_in = inner.len() as u64;
                (project_label(vars), Some(rows_in), inner.project(vars))
            }
            Pattern::Filter(p, r) => {
                let inner = self.try_eval_par_traced(p, pool, rec, id, budget)?;
                let rows_in = inner.len() as u64;
                (format!("filter {r}"), Some(rows_in), inner.filter(r))
            }
            Pattern::Ns(p) => {
                let inner = self.try_eval_par_traced(p, pool, rec, id, budget)?;
                let candidates = inner.len() as u64;
                let out = inner.maximal_parallel(pool);
                rec.record_ns(candidates, out.len() as u64);
                (
                    "maximal answers (parallel)".to_owned(),
                    Some(candidates),
                    out,
                )
            }
        };
        rec.record_span(
            id,
            parent,
            op_kind(pattern),
            &label,
            rows_in,
            out.len() as u64,
            &timer,
        );
        Ok(out)
    }

    /// Evaluates two independent subpatterns, one per worker, tracing
    /// both.
    fn eval_both_traced(
        &self,
        a: &Pattern,
        b: &Pattern,
        pool: &Pool,
        rec: &Recorder,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<[MappingSet; 2], EvalError> {
        let mut results = pool
            .map_profiled(&[a, b], rec, |p| {
                self.try_eval_par_traced(p, pool, rec, parent, budget)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let right = results.pop().expect("two results");
        let left = results.pop().expect("two results");
        Ok([left, right])
    }

    /// [`Engine::evaluate_spine_parallel`] with tracing: ramp-up steps
    /// record `SCAN` spans like the sequential join; the partitioned
    /// tail records one `SCAN` span summarizing the fan-out (chunks ×
    /// remaining steps) so per-chunk noise stays out of the plan.
    /// Returns `(seeded candidate count, result)`.
    #[allow(clippy::type_complexity)]
    fn evaluate_spine_parallel_traced(
        &self,
        mut triples: Vec<TriplePattern>,
        others: &[&Pattern],
        pool: &Pool,
        rec: &Recorder,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<(Option<u64>, MappingSet), EvalError> {
        let sub = pool
            .map_profiled(others, rec, |p| {
                self.try_eval_par_traced(p, pool, rec, parent, budget)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let (mut current, mut bound) = seed_spine(sub);
        let seeded = Some(current.len() as u64);

        let target = pool.threads() * MIN_BINDINGS_PER_WORKER;
        while !triples.is_empty() && current.len() < target {
            budget.check()?;
            let next_idx = self.pick_next(&triples, &bound);
            let t = triples.swap_remove(next_idx);
            let id = rec.begin();
            let timer = rec.timer();
            let rows_in = current.len() as u64;
            let mut next: Vec<Mapping> = Vec::new();
            for m in &current {
                self.extend_matches(t, m, &mut next);
            }
            let set: MappingSet = next.into_iter().collect();
            current = set.into_iter().collect();
            bound.extend(t.vars());
            rec.record_span(
                id,
                parent,
                OpKind::Scan,
                &format!("{t} via {} (ramp-up)", crate::plan::access_path(t)),
                Some(rows_in),
                current.len() as u64,
                &timer,
            );
            if current.is_empty() {
                return Ok((seeded, MappingSet::new()));
            }
        }
        if triples.is_empty() {
            return Ok((seeded, current.into_iter().collect()));
        }

        let max_chunks = current.len() / MIN_BINDINGS_PER_CHUNK;
        if max_chunks < 2 {
            // Sequential fallback (small candidate set): trace each
            // remaining step exactly like the sequential engine.
            let out = self.join_spine_traced(current, triples, bound, rec, parent, budget)?;
            return Ok((seeded, out));
        }
        let id = rec.begin();
        let timer = rec.timer();
        let rows_in = current.len() as u64;
        let steps = triples.len();
        let ranges = chunk_ranges(current.len(), max_chunks.min(pool.threads() * 4));
        let chunk_count = ranges.len();
        let chunks: Vec<&[Mapping]> = ranges
            .into_iter()
            .map(|(lo, hi)| &current[lo..hi])
            .collect();
        let parts = pool
            .map_profiled(&chunks, rec, |chunk| {
                self.join_spine(chunk.to_vec(), triples.clone(), bound.clone(), budget)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let out = MappingSet::union_all(parts);
        rec.record_span(
            id,
            parent,
            OpKind::Scan,
            &format!("partitioned join: {chunk_count} chunks x {steps} steps"),
            Some(rows_in),
            out.len() as u64,
            &timer,
        );
        Ok((seeded, out))
    }
}

/// Maps an algebra node to its obs taxonomy kind (flattened
/// `AND`-spines — including bare triple patterns — account as `AND`;
/// individual nested-loop steps are recorded separately as `SCAN`).
pub(crate) fn op_kind(p: &Pattern) -> OpKind {
    match p {
        Pattern::Triple(_) | Pattern::And(..) => OpKind::And,
        Pattern::Union(..) => OpKind::Union,
        Pattern::Opt(..) => OpKind::Opt,
        Pattern::Minus(..) => OpKind::Minus,
        Pattern::Filter(..) => OpKind::Filter,
        Pattern::Select(..) => OpKind::Select,
        Pattern::Ns(_) => OpKind::Ns,
    }
}

pub(crate) fn spine_label(scans: usize, subpatterns: usize) -> String {
    if subpatterns == 0 {
        format!("index join: {scans} scans")
    } else {
        format!("index join: {scans} scans + {subpatterns} subpatterns")
    }
}

pub(crate) fn project_label(vars: &BTreeSet<Variable>) -> String {
    let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
    format!("project {{{}}}", names.join(", "))
}

/// Splits an `AND`-spine into its triple-pattern leaves and the other
/// conjunct sub-patterns — the shared flattening step of the
/// sequential and parallel engines.
pub(crate) fn spine_parts(p: &Pattern) -> (Vec<TriplePattern>, Vec<&Pattern>) {
    fn flatten<'a>(
        p: &'a Pattern,
        triples: &mut Vec<TriplePattern>,
        others: &mut Vec<&'a Pattern>,
    ) {
        match p {
            Pattern::And(a, b) => {
                flatten(a, triples, others);
                flatten(b, triples, others);
            }
            Pattern::Triple(t) => triples.push(*t),
            other => others.push(other),
        }
    }
    let mut triples = Vec::new();
    let mut others = Vec::new();
    flatten(p, &mut triples, &mut others);
    (triples, others)
}

/// Seeds an `AND`-spine from the evaluated non-triple conjuncts:
/// smallest-first joins keep intermediates small; the returned `bound`
/// set primes the greedy join-order heuristic.
fn seed_spine(mut sub: Vec<MappingSet>) -> (Vec<Mapping>, BTreeSet<Variable>) {
    let current: Vec<Mapping> = if sub.is_empty() {
        vec![Mapping::new()]
    } else {
        sub.sort_by_key(MappingSet::len);
        let mut acc = sub.remove(0);
        for s in sub {
            acc = acc.join(&s);
        }
        acc.into_iter().collect()
    };
    let mut bound: BTreeSet<Variable> = BTreeSet::new();
    if let Some(first) = current.first() {
        bound.extend(first.dom());
    }
    (current, bound)
}

fn constant_positions(t: TriplePattern) -> (Option<Iri>, Option<Iri>, Option<Iri>) {
    (t.s.as_iri(), t.p.as_iri(), t.o.as_iri())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::evaluate;
    use owql_algebra::analysis::Operators;
    use owql_algebra::random::{random_pattern, PatternConfig};
    use owql_rdf::datasets::figure_1;
    use owql_rdf::generate;
    use std::time::Duration;

    /// Sequential `run` shorthand for the tests below.
    fn eval<I: TripleLookup + Sync>(engine: &Engine<I>, p: &Pattern) -> MappingSet {
        engine
            .run(p, &ExecOpts::seq(), &Pool::sequential())
            .expect(NO_BUDGET)
            .mappings
    }

    /// Parallel `run` shorthand.
    fn eval_par<I: TripleLookup + Sync>(
        engine: &Engine<I>,
        p: &Pattern,
        pool: &Pool,
    ) -> MappingSet {
        engine
            .run(p, &ExecOpts::parallel(), pool)
            .expect(NO_BUDGET)
            .mappings
    }

    #[test]
    fn matches_reference_on_figure_1() {
        let g = figure_1();
        let engine = Engine::new(&g);
        let p = Pattern::t("?o", "stands_for", "sharing_rights")
            .and(Pattern::t("?p", "founder", "?o").union(Pattern::t("?p", "supporter", "?o")));
        assert_eq!(eval(&engine, &p), evaluate(&p, &g));
        assert_eq!(eval(&engine, &p).len(), 4);
    }

    #[test]
    fn long_and_spine_with_bound_propagation() {
        let g = generate::chain("next", 30);
        let engine = Engine::new(&g);
        // v0 -> ?a -> ?b -> ?c
        let p = Pattern::t("v0", "next", "?a")
            .and(Pattern::t("?a", "next", "?b"))
            .and(Pattern::t("?b", "next", "?c"));
        let out = eval(&engine, &p);
        assert_eq!(out.len(), 1);
        assert_eq!(out, evaluate(&p, &g));
    }

    #[test]
    fn spine_with_non_triple_conjunct() {
        let g = generate::chain("next", 10);
        let engine = Engine::new(&g);
        let p = Pattern::t("?a", "next", "?b")
            .and(Pattern::t("?b", "next", "?c").union(Pattern::t("?b", "next", "?c")));
        assert_eq!(eval(&engine, &p), evaluate(&p, &g));
    }

    #[test]
    fn cartesian_spine() {
        // Two disconnected triple patterns: a genuine cross product.
        let g = generate::star("hub", "spoke", 4);
        let engine = Engine::new(&g);
        let p = Pattern::t("hub", "spoke", "?x").and(Pattern::t("hub", "spoke", "?y"));
        let out = eval(&engine, &p);
        assert_eq!(out.len(), 16);
        assert_eq!(out, evaluate(&p, &g));
    }

    /// The central differential test: on hundreds of random
    /// (pattern, graph) pairs across the full NS–SPARQL operator set,
    /// the engine and the reference evaluator agree exactly.
    #[test]
    fn differential_random_full_sparql() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        for seed in 0..300u64 {
            let p = random_pattern(&cfg, seed);
            let g =
                generate::uniform(40, 5, 5, 5, seed ^ 0xdead).union(&graph_over_pattern_iris(seed));
            let engine = Engine::new(&g);
            assert_eq!(
                eval(&engine, &p),
                evaluate(&p, &g),
                "seed {seed}, pattern {p}"
            );
        }
    }

    /// A small graph over the generator vocabulary `i0..i4` so random
    /// patterns actually match something.
    fn graph_over_pattern_iris(seed: u64) -> owql_rdf::Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = owql_rdf::Graph::new();
        for _ in 0..25 {
            let t = owql_rdf::Triple::new(
                format!("i{}", rng.gen_range(0..5)).as_str(),
                format!("i{}", rng.gen_range(0..5)).as_str(),
                format!("i{}", rng.gen_range(0..5)).as_str(),
            );
            g.insert(t);
        }
        g
    }

    #[test]
    fn optimized_run_agrees_with_plain() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        let pool = Pool::sequential();
        for seed in 0..60u64 {
            let p = random_pattern(&cfg, seed);
            let g = generate::uniform(30, 5, 5, 5, seed);
            let engine = Engine::new(&g);
            assert_eq!(
                engine
                    .run(&p, &ExecOpts::seq().optimized(), &pool)
                    .expect(NO_BUDGET)
                    .mappings,
                eval(&engine, &p),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let engine = Engine::new(&Graph::new());
        assert!(eval(&engine, &Pattern::t("?x", "?y", "?z")).is_empty());
        assert!(engine.index().is_empty());
    }

    /// The parallel differential test: at widths 1, 2, and 8 the
    /// parallel engine agrees exactly with the sequential one on random
    /// full-NS–SPARQL patterns (the width-1 pool also certifies the
    /// sequential fallback seam).
    #[test]
    fn parallel_matches_sequential_across_widths() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        for threads in [1usize, 2, 8] {
            let pool = Pool::new(threads);
            for seed in 0..80u64 {
                let p = random_pattern(&cfg, seed);
                let g = generate::uniform(40, 5, 5, 5, seed ^ 0xbeef)
                    .union(&graph_over_pattern_iris(seed));
                let engine = Engine::new(&g);
                assert_eq!(
                    eval_par(&engine, &p, &pool),
                    eval(&engine, &p),
                    "threads {threads}, seed {seed}, pattern {p}"
                );
            }
        }
    }

    /// Shapes that specifically exercise each parallel fan-out: a wide
    /// UNION spine, a long AND-spine with enough candidates to
    /// partition, and NS over a large subsumption-layered answer set.
    #[test]
    fn parallel_fanout_shapes() {
        let pool = Pool::new(4);

        // Wide UNION over a star graph.
        let g = generate::star("hub", "spoke", 40);
        let engine = Engine::new(&g);
        let disjuncts: Vec<Pattern> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    Pattern::t("hub", "spoke", "?x")
                } else {
                    Pattern::t("?c", "spoke", format!("s{i}").as_str())
                }
            })
            .collect();
        let union = Pattern::union_all(disjuncts);
        assert_eq!(eval_par(&engine, &union, &pool), eval(&engine, &union));

        // Partitioned AND-spine: the star fans ?x out to 40 candidates.
        let spine = Pattern::t("hub", "spoke", "?x")
            .and(Pattern::t("hub", "spoke", "?y"))
            .and(Pattern::t("hub", "spoke", "?z"));
        assert_eq!(eval_par(&engine, &spine, &pool), eval(&engine, &spine));
        assert_eq!(eval_par(&engine, &spine, &pool).len(), 40 * 40 * 40);

        // NS over layered optional extensions (large maximality input).
        let chain = generate::chain("next", 400);
        let engine = Engine::new(&chain);
        let ns = Pattern::t("?a", "next", "?b")
            .union(Pattern::t("?a", "next", "?b").and(Pattern::t("?b", "next", "?c")))
            .ns();
        assert_eq!(eval_par(&engine, &ns, &pool), eval(&engine, &ns));
    }

    /// The traced run is answer-identical to the plain one, and its
    /// profile carries a span tree whose root reports the answer count.
    #[test]
    fn traced_matches_plain_and_records_spans() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        let pool = Pool::sequential();
        for seed in 0..40u64 {
            let p = random_pattern(&cfg, seed);
            let g =
                generate::uniform(40, 5, 5, 5, seed ^ 0xfeed).union(&graph_over_pattern_iris(seed));
            let engine = Engine::new(&g);
            let expected = eval(&engine, &p);

            let out = engine
                .run(&p, &ExecOpts::seq().traced(), &pool)
                .expect(NO_BUDGET);
            assert_eq!(out.mappings, expected, "seed {seed}");
            let profile = out.profile.expect("traced run has a profile");
            assert!(!profile.spans.is_empty(), "seed {seed}: no spans recorded");
            let root_out: u64 = profile
                .spans
                .iter()
                .filter(|s| s.parent == owql_obs::SpanId::ROOT)
                .map(|s| s.rows_out)
                .sum();
            assert_eq!(root_out, expected.len() as u64, "seed {seed}");

            // Untraced run: same answers, no profile.
            let plain = engine.run(&p, &ExecOpts::seq(), &pool).expect(NO_BUDGET);
            assert_eq!(plain.mappings, expected, "seed {seed}");
            assert!(plain.profile.is_none());
        }
    }

    #[test]
    fn parallel_traced_matches_plain_across_widths() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            for seed in 0..30u64 {
                let p = random_pattern(&cfg, seed);
                let g = generate::uniform(40, 5, 5, 5, seed ^ 0xf00d)
                    .union(&graph_over_pattern_iris(seed));
                let engine = Engine::new(&g);
                let out = engine
                    .run(&p, &ExecOpts::parallel().traced(), &pool)
                    .expect(NO_BUDGET);
                assert_eq!(
                    out.mappings,
                    eval(&engine, &p),
                    "threads {threads}, seed {seed}, pattern {p}"
                );
                assert!(!out.profile.expect("traced").spans.is_empty());
            }
        }
    }

    /// NS pruning counters: the profile sees the candidate and
    /// survivor counts of the maximality filter.
    #[test]
    fn traced_ns_records_pruning() {
        let chain = generate::chain("next", 50);
        let engine = Engine::new(&chain);
        let ns = Pattern::t("?a", "next", "?b")
            .union(Pattern::t("?a", "next", "?b").and(Pattern::t("?b", "next", "?c")))
            .ns();
        let out = engine
            .run(&ns, &ExecOpts::seq().traced(), &Pool::sequential())
            .expect(NO_BUDGET);
        let profile = out.profile.expect("traced");
        assert_eq!(profile.ns.survivors, out.mappings.len() as u64);
        assert!(profile.ns.candidates > profile.ns.survivors);
    }

    #[test]
    fn parallel_optimized_agrees_with_sequential_optimized() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            ..PatternConfig::standard(4, 5)
        };
        let pool = Pool::new(3);
        for seed in 0..40u64 {
            let p = random_pattern(&cfg, seed);
            let g = generate::uniform(30, 5, 5, 5, seed);
            let engine = Engine::new(&g);
            assert_eq!(
                engine
                    .run(&p, &ExecOpts::parallel().optimized(), &pool)
                    .expect(NO_BUDGET)
                    .mappings,
                engine
                    .run(&p, &ExecOpts::seq().optimized(), &pool)
                    .expect(NO_BUDGET)
                    .mappings,
                "seed {seed}"
            );
        }
    }

    /// The admission ceiling rejects over-class queries before any
    /// evaluation work, on every execution path, and admits queries at
    /// or below the ceiling unchanged.
    #[test]
    fn admission_ceiling_gates_run() {
        let g = figure_1();
        let engine = Engine::new(&g);
        let admitted = Pattern::t("?o", "stands_for", "sharing_rights")
            .and(Pattern::t("?p", "founder", "?o").union(Pattern::t("?p", "supporter", "?o")));
        let expected = eval(&engine, &admitted);
        let denied = Pattern::t("?o", "stands_for", "?r")
            .and(Pattern::t("?p", "founder", "?o").opt(Pattern::t("?p", "supporter", "?r")))
            .ns();
        let pool = Pool::new(2);
        for opts in [
            ExecOpts::seq(),
            ExecOpts::parallel(),
            ExecOpts::seq().traced(),
            ExecOpts::parallel().traced().optimized(),
        ] {
            let capped = opts.with_max_class(owql_lint::ComplexityClass::Np);
            assert_eq!(
                engine
                    .run(&admitted, &capped, &pool)
                    .expect(NO_BUDGET)
                    .mappings,
                expected
            );
            let err = engine.run(&denied, &capped, &pool).unwrap_err();
            assert!(
                matches!(&err, EvalError::AdmissionDenied { ceiling, .. }
                    if *ceiling == owql_lint::ComplexityClass::Np),
                "expected AdmissionDenied, got {err:?}"
            );
        }
    }

    /// A zero deadline times out on every execution path and leaves the
    /// pool reusable afterwards.
    #[test]
    fn zero_deadline_times_out_on_every_path() {
        let g = generate::star("hub", "spoke", 40);
        let engine = Engine::new(&g);
        let spine = Pattern::t("hub", "spoke", "?x")
            .and(Pattern::t("hub", "spoke", "?y"))
            .and(Pattern::t("hub", "spoke", "?z"));
        let pool = Pool::new(4);
        for opts in [
            ExecOpts::seq(),
            ExecOpts::seq().traced(),
            ExecOpts::parallel(),
            ExecOpts::parallel().traced(),
        ] {
            let result = engine.run(&spine, &opts.with_deadline(Duration::ZERO), &pool);
            assert!(
                matches!(result, Err(EvalError::Timeout { .. })),
                "expected timeout for {opts:?}"
            );
        }
        // The pool survives: a run without a deadline still answers.
        assert_eq!(eval_par(&engine, &spine, &pool).len(), 40 * 40 * 40);
    }

    /// A generous deadline changes nothing about the answers.
    #[test]
    fn generous_deadline_is_transparent() {
        let g = figure_1();
        let engine = Engine::new(&g);
        let p = Pattern::t("?p", "founder", "?o");
        let opts = ExecOpts::seq().with_deadline(Duration::from_secs(3600));
        let out = engine
            .run(&p, &opts, &Pool::sequential())
            .expect("in budget");
        assert_eq!(out.mappings, eval(&engine, &p));
    }
}
