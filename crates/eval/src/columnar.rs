//! The columnar, dictionary-encoded evaluation path.
//!
//! When the lookup backend serves an [`IdView`] (a term dictionary plus
//! id-encoded SPO/POS/OSP sorted runs — `GraphIndex` always does, a
//! store `SnapshotIndex` does whenever base and delta share the store
//! dictionary), [`try_run`] evaluates the whole pattern over
//! [`IdMappingSet`] tables: binary-searched run scans, id-merge
//! AND-spine joins, word-compare compatibility for `OPT`/`MINUS`, and
//! bitmask-grouped NS maximality. Terms are decoded exactly once, at
//! the result boundary.
//!
//! Answer-set equality with the term-at-a-time engine is the contract:
//! every operator here mirrors the corresponding `MappingSet`
//! operation, and the differential suites (`#[cfg(test)]` below and
//! `tests/integration_columnar.rs`) hold the two paths to identical
//! results over randomized NS-SPARQL patterns and live-churn stores.
//!
//! [`try_run`] returns `None` — "stay on the reference path" — when the
//! backend has no id view, when the pattern binds no variables, or when
//! its variable frame exceeds the 64-column domain-bitmask limit.

use crate::engine::{spine_parts, Engine, MIN_BINDINGS_PER_CHUNK};
use crate::run::{EvalBudget, EvalError, BUDGET_CHECK_STRIDE};
use owql_algebra::analysis::pattern_vars;
use owql_algebra::id_mapping::{IdMappingSet, VarFrame};
use owql_algebra::normal_form::union_spine;
use owql_algebra::{Condition, Pattern, TermPattern, TriplePattern};
use owql_exec::{chunk_ranges, Pool};
use owql_rdf::{FxHashSet, IdView, TermId, TripleLookup, NO_TERM};

/// One triple-pattern position, id-compiled against the frame and
/// dictionary.
#[derive(Clone, Copy, Debug)]
enum IdPos {
    /// A constant that is interned — matches exactly this id.
    Const(TermId),
    /// A constant absent from the dictionary — matches nothing.
    Missing,
    /// A variable at this frame column.
    Var(usize),
}

/// An id-compiled triple pattern.
#[derive(Clone, Copy, Debug)]
struct IdTriple {
    pos: [IdPos; 3],
}

impl IdTriple {
    /// `true` iff some constant cannot match (the pattern is empty).
    fn unsatisfiable(&self) -> bool {
        self.pos.iter().any(|p| matches!(p, IdPos::Missing))
    }

    /// Bitmask of the frame columns this pattern's variables occupy.
    fn var_mask(&self) -> u64 {
        self.pos.iter().fold(0u64, |m, p| match p {
            IdPos::Var(c) => m | (1 << c),
            _ => m,
        })
    }
}

/// A [`Condition`] compiled onto frame columns and term ids.
#[derive(Clone, Debug)]
enum IdCond {
    Always,
    Never,
    Bound(usize),
    EqConst(usize, TermId),
    EqVar(usize, usize),
    Not(Box<IdCond>),
    And(Box<IdCond>, Box<IdCond>),
    Or(Box<IdCond>, Box<IdCond>),
}

impl IdCond {
    fn satisfied_by(&self, row: &[TermId]) -> bool {
        match self {
            IdCond::Always => true,
            IdCond::Never => false,
            IdCond::Bound(c) => row[*c] != NO_TERM,
            // An unbound slot is 0 and real ids start at 1, so the
            // plain compare also encodes "bound and equal".
            IdCond::EqConst(c, id) => row[*c] == *id,
            IdCond::EqVar(a, b) => row[*a] != NO_TERM && row[*a] == row[*b],
            IdCond::Not(r) => !r.satisfied_by(row),
            IdCond::And(a, b) => a.satisfied_by(row) && b.satisfied_by(row),
            IdCond::Or(a, b) => a.satisfied_by(row) || b.satisfied_by(row),
        }
    }
}

/// Per-query columnar evaluation context.
struct Columnar<'a> {
    view: IdView<'a>,
    frame: VarFrame,
    /// The snapshot's deletion set, id-encoded once up front.
    dels: FxHashSet<[TermId; 3]>,
    pool: &'a Pool,
    parallel: bool,
}

/// Attempts the columnar path for `pattern` over `engine`'s backend.
/// `None` means "not servable — use the term-at-a-time engine".
pub(crate) fn try_run<I: TripleLookup + Sync>(
    engine: &Engine<I>,
    pattern: &Pattern,
    parallel: bool,
    pool: &Pool,
    budget: &EvalBudget,
) -> Option<Result<owql_algebra::MappingSet, EvalError>> {
    let view = engine.index().id_view()?;
    let vars = pattern_vars(pattern);
    if vars.is_empty() {
        // Fully ground patterns produce zero-width tables; the
        // reference path handles them directly.
        return None;
    }
    let frame = VarFrame::new(vars)?;
    let ctx = Columnar {
        dels: view.del_rows(),
        view,
        frame,
        pool,
        parallel,
    };
    Some(
        ctx.eval(pattern, budget)
            .map(|table| table.decode(&ctx.frame, ctx.view.dict)),
    )
}

impl Columnar<'_> {
    fn width(&self) -> usize {
        self.frame.width()
    }

    fn compile_triple(&self, t: TriplePattern) -> IdTriple {
        let compile = |tp: TermPattern| match tp {
            TermPattern::Iri(iri) => match self.view.dict.lookup(iri) {
                Some(id) => IdPos::Const(id),
                None => IdPos::Missing,
            },
            TermPattern::Var(v) => IdPos::Var(
                self.frame
                    .col(v)
                    .expect("frame covers every pattern variable"),
            ),
        };
        IdTriple {
            pos: [compile(t.s), compile(t.p), compile(t.o)],
        }
    }

    fn compile_cond(&self, r: &Condition) -> IdCond {
        match r {
            Condition::True => IdCond::Always,
            Condition::False => IdCond::Never,
            Condition::Bound(v) => IdCond::Bound(self.col(*v)),
            Condition::EqConst(v, c) => match self.view.dict.lookup(*c) {
                // A never-interned constant equals no binding.
                None => IdCond::Never,
                Some(id) => IdCond::EqConst(self.col(*v), id),
            },
            Condition::EqVar(a, b) => IdCond::EqVar(self.col(*a), self.col(*b)),
            Condition::Not(r) => IdCond::Not(Box::new(self.compile_cond(r))),
            Condition::And(a, b) => IdCond::And(
                Box::new(self.compile_cond(a)),
                Box::new(self.compile_cond(b)),
            ),
            Condition::Or(a, b) => IdCond::Or(
                Box::new(self.compile_cond(a)),
                Box::new(self.compile_cond(b)),
            ),
        }
    }

    fn col(&self, v: owql_algebra::Variable) -> usize {
        self.frame
            .col(v)
            .expect("frame covers every condition variable")
    }

    fn eval(&self, pattern: &Pattern, budget: &EvalBudget) -> Result<IdMappingSet, EvalError> {
        budget.check()?;
        Ok(match pattern {
            Pattern::Triple(_) | Pattern::And(..) => self.eval_spine(pattern, budget)?,
            Pattern::Opt(a, b) => self
                .eval(a, budget)?
                .left_outer_join(&self.eval(b, budget)?),
            Pattern::Union(..) if self.parallel => {
                let disjuncts = union_spine(pattern);
                let parts = self.pool.map(&disjuncts, |d| self.eval(d, budget));
                let mut out = IdMappingSet::new(self.width());
                for part in parts {
                    let part = part?;
                    for row in part.rows() {
                        out.push_row(row);
                    }
                }
                out.sort_dedup();
                out
            }
            Pattern::Union(a, b) => self.eval(a, budget)?.union(&self.eval(b, budget)?),
            Pattern::Select(vars, p) => {
                let keep: Vec<bool> = (0..self.width())
                    .map(|c| vars.contains(&self.frame.var(c)))
                    .collect();
                self.eval(p, budget)?.project(&keep)
            }
            Pattern::Filter(p, r) => {
                let cond = self.compile_cond(r);
                let mut inner = self.eval(p, budget)?;
                inner.retain(|row| cond.satisfied_by(row));
                inner
            }
            Pattern::Ns(p) => self
                .eval(p, budget)?
                .maximal(self.parallel.then_some(self.pool)),
            Pattern::Minus(a, b) => self.eval(a, budget)?.difference(&self.eval(b, budget)?),
        })
    }

    /// The `AND`-spine: evaluate the non-triple conjuncts, join them
    /// smallest-first as the seed, then extend with the triple patterns
    /// greedily (fewest-unbound-columns, then scan cardinality) via
    /// binary-searched run scans.
    fn eval_spine(
        &self,
        pattern: &Pattern,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        let (triples, others) = spine_parts(pattern);
        let w = self.width();
        let mut compiled: Vec<IdTriple> = triples.iter().map(|&t| self.compile_triple(t)).collect();
        if compiled.iter().any(IdTriple::unsatisfiable) {
            // Some constant was never interned: that conjunct — and
            // with it the whole AND — matches nothing.
            return Ok(IdMappingSet::new(w));
        }
        let mut sub: Vec<IdMappingSet> = others
            .iter()
            .map(|p| self.eval(p, budget))
            .collect::<Result<_, _>>()?;
        let mut current = if sub.is_empty() {
            let mut seed = IdMappingSet::new(w);
            seed.push_row(&vec![NO_TERM; w]);
            seed
        } else {
            sub.sort_by_key(IdMappingSet::len);
            let mut acc = sub.remove(0);
            for s in sub {
                acc = acc.join(&s);
            }
            acc
        };
        // The ordering heuristic's bound set: columns bound in the
        // first seed row (mirrors the term engine's choice, which uses
        // the first mapping's domain).
        let mut bound_mask = if current.is_empty() {
            0
        } else {
            owql_algebra::id_mapping::IdMapping::new(current.row(0)).domain_mask()
        };
        // When every seed row has the same domain, extending distinct
        // rows yields distinct rows (the differing bound column
        // persists, and differing scan matches differ in some variable
        // column), and all extensions share a domain again — so the
        // per-step dedup can be skipped. Heterogeneous seeds (an OPT or
        // UNION conjunct) keep the dedup: overwritten-free extension
        // can then collide across rows with different domains.
        let homogeneous = current
            .rows()
            .all(|r| owql_algebra::id_mapping::IdMapping::new(r).domain_mask() == bound_mask);
        while !compiled.is_empty() {
            budget.check()?;
            if current.is_empty() {
                return Ok(IdMappingSet::new(w));
            }
            let next = self.pick_next(&compiled, bound_mask);
            let t = compiled.swap_remove(next);
            current = self.extend(&current, t, !homogeneous, budget)?;
            bound_mask |= t.var_mask();
        }
        Ok(current)
    }

    /// Greedy choice: fewest variable columns not yet bound, breaking
    /// ties by the constant-only scan cardinality (a pair of binary
    /// searches per run — no rows are touched).
    fn pick_next(&self, triples: &[IdTriple], bound_mask: u64) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX);
        for (i, t) in triples.iter().enumerate() {
            let unbound = (t.var_mask() & !bound_mask).count_ones() as usize;
            let key_of = |p: IdPos| match p {
                IdPos::Const(id) => Some(id),
                _ => None,
            };
            let card =
                self.view
                    .cardinality_upper(key_of(t.pos[0]), key_of(t.pos[1]), key_of(t.pos[2]));
            let key = (unbound, card);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// One spine step: extend every row of `current` with every run
    /// match of `t` under that row's bindings. Parallel mode chunks the
    /// row range across the pool once it clears the same
    /// candidates-per-chunk threshold as the term engine.
    fn extend(
        &self,
        current: &IdMappingSet,
        t: IdTriple,
        dedup: bool,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        let w = self.width();
        let n = current.len();
        let chunks = if self.parallel && n >= 2 * MIN_BINDINGS_PER_CHUNK {
            (n / MIN_BINDINGS_PER_CHUNK).min(self.pool.threads() * 4)
        } else {
            1
        };
        let mut out = if chunks <= 1 {
            // Matched rows rarely shrink the table: seed the buffer at
            // the input size to skip the early doubling reallocations.
            let mut data = Vec::with_capacity(n * w);
            self.extend_range(current, 0, n, t, budget, &mut data)?;
            IdMappingSet::from_raw(w, data)
        } else {
            let ranges = chunk_ranges(n, chunks);
            let parts = self.pool.map(&ranges, |&(lo, hi)| {
                let mut data = Vec::new();
                self.extend_range(current, lo, hi, t, budget, &mut data)
                    .map(|()| data)
            });
            let mut data = Vec::new();
            for part in parts {
                data.append(&mut part?);
            }
            IdMappingSet::from_raw(w, data)
        };
        if dedup {
            out.sort_dedup();
        }
        Ok(out)
    }

    /// Extends rows `lo..hi` of `current`, appending result rows to
    /// `data`.
    fn extend_range(
        &self,
        current: &IdMappingSet,
        lo: usize,
        hi: usize,
        t: IdTriple,
        budget: &EvalBudget,
        data: &mut Vec<TermId>,
    ) -> Result<(), EvalError> {
        let check_dels = !self.dels.is_empty();
        // Consecutive rows tend toward equal or ascending scan keys
        // (they came out of a sorted run themselves): equal keys reuse
        // the previous slice outright, and fresh keys gallop from the
        // previous match position instead of binary-searching the whole
        // run.
        let mut last_key: Option<(Option<TermId>, Option<TermId>, Option<TermId>)> = None;
        let mut memo_base: &[[TermId; 3]] = &[];
        let mut memo_base_order = owql_rdf::RunOrder::Spo;
        let mut memo_adds: &[[TermId; 3]] = &[];
        let mut memo_adds_order = owql_rdf::RunOrder::Spo;
        let mut hint_base = 0usize;
        let mut hint_adds = 0usize;
        for i in lo..hi {
            if (i - lo) % BUDGET_CHECK_STRIDE == BUDGET_CHECK_STRIDE - 1 {
                budget.check()?;
            }
            let row = current.row(i);
            // Resolve each position under this row's bindings: a bound
            // variable column constrains the scan like a constant.
            let resolve = |p: IdPos| match p {
                IdPos::Const(id) => Some(id),
                IdPos::Missing => unreachable!("unsatisfiable patterns are filtered out"),
                IdPos::Var(c) => match row[c] {
                    NO_TERM => None,
                    id => Some(id),
                },
            };
            let (s, p, o) = (resolve(t.pos[0]), resolve(t.pos[1]), resolve(t.pos[2]));
            if last_key != Some((s, p, o)) {
                last_key = Some((s, p, o));
                (memo_base, memo_base_order) = self.view.base.scan_from(s, p, o, &mut hint_base);
                if let Some(adds) = self.view.adds {
                    (memo_adds, memo_adds_order) = adds.scan_from(s, p, o, &mut hint_adds);
                }
            }
            let mut emit = |matched: [TermId; 3]| {
                if check_dels && self.dels.contains(&matched) {
                    return;
                }
                let start = data.len();
                data.extend_from_slice(row);
                let new = &mut data[start..];
                // Repeated variables: the second occurrence must agree
                // with the binding the first just wrote.
                for (pos, val) in t.pos.iter().zip(matched) {
                    if let IdPos::Var(c) = pos {
                        if new[*c] == NO_TERM {
                            new[*c] = val;
                        } else if new[*c] != val {
                            data.truncate(start);
                            return;
                        }
                    }
                }
            };
            for &r in memo_base {
                emit(memo_base_order.to_spo(r));
            }
            for &r in memo_adds {
                emit(memo_adds_order.to_spo(r));
            }
        }
        Ok(())
    }
}
