//! The columnar, dictionary-encoded evaluation path.
//!
//! When the lookup backend serves an [`IdView`] (a term dictionary plus
//! id-encoded SPO/POS/OSP sorted runs — `GraphIndex` always does, a
//! store `SnapshotIndex` does whenever base and delta share the store
//! dictionary), [`try_run`] evaluates the whole pattern over
//! [`IdMappingSet`] tables: binary-searched run scans, id-merge
//! AND-spine joins, word-compare compatibility for `OPT`/`MINUS`, and
//! bitmask-grouped NS maximality. Terms are decoded exactly once, at
//! the result boundary.
//!
//! Answer-set equality with the term-at-a-time engine is the contract:
//! every operator here mirrors the corresponding `MappingSet`
//! operation, and the differential suites (`#[cfg(test)]` below and
//! `tests/integration_columnar.rs`) hold the two paths to identical
//! results over randomized NS-SPARQL patterns and live-churn stores.
//!
//! [`try_run`] returns `None` — "stay on the reference path" — when the
//! backend has no id view, when the pattern binds no variables, or when
//! its variable frame exceeds the 64-column domain-bitmask limit.
//!
//! **Native tracing.** The evaluator carries an [`owql_obs::Recorder`]
//! seam: every operator records one span (kind, label, observed
//! input/output rows), every spine step records a `SCAN` span whose
//! `estimated_rows` is seeded from the constant-only [`IdView`] run
//! cardinality (the same statistic the greedy join order uses — the
//! estimated-vs-observed feed for the future cost-based planner), and
//! the event counters — galloping-scan hint hits/misses, dict decode
//! rows, `Repr::Distinct` results, homogeneous-domain dedup skips —
//! flow through the recorder's columnar atomics. A *disabled* recorder
//! short-circuits before any label formatting or clock read, so the
//! untraced hot path pays only a predictable branch per operator: the
//! `ExecOpts { trace: true, columnar: true }` combination runs *this*
//! engine, never a silent fallback.

use crate::engine::{
    op_kind, project_label, spine_label, spine_parts, Engine, MIN_BINDINGS_PER_CHUNK,
};
use crate::run::{EvalBudget, EvalError, BUDGET_CHECK_STRIDE};
use owql_algebra::analysis::pattern_vars;
use owql_algebra::id_mapping::{IdMappingSet, VarFrame};
use owql_algebra::normal_form::union_spine;
use owql_algebra::{Condition, Pattern, TermPattern, TriplePattern};
use owql_exec::{chunk_ranges, Pool};
use owql_obs::{OpKind, Recorder, SpanId};
use owql_rdf::{FxHashSet, IdView, TermId, TripleLookup, NO_TERM};

/// One triple-pattern position, id-compiled against the frame and
/// dictionary.
#[derive(Clone, Copy, Debug)]
enum IdPos {
    /// A constant that is interned — matches exactly this id.
    Const(TermId),
    /// A constant absent from the dictionary — matches nothing.
    Missing,
    /// A variable at this frame column.
    Var(usize),
}

/// An id-compiled triple pattern.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IdTriple {
    pos: [IdPos; 3],
}

impl IdTriple {
    /// `true` iff some constant cannot match (the pattern is empty).
    pub(crate) fn unsatisfiable(&self) -> bool {
        self.pos.iter().any(|p| matches!(p, IdPos::Missing))
    }

    /// Bitmask of the frame columns this pattern's variables occupy.
    pub(crate) fn var_mask(&self) -> u64 {
        self.pos.iter().fold(0u64, |m, p| match p {
            IdPos::Var(c) => m | (1 << c),
            _ => m,
        })
    }
}

/// A [`Condition`] compiled onto frame columns and term ids.
#[derive(Clone, Debug)]
pub(crate) enum IdCond {
    Always,
    Never,
    Bound(usize),
    EqConst(usize, TermId),
    EqVar(usize, usize),
    Not(Box<IdCond>),
    And(Box<IdCond>, Box<IdCond>),
    Or(Box<IdCond>, Box<IdCond>),
}

impl IdCond {
    pub(crate) fn satisfied_by(&self, row: &[TermId]) -> bool {
        match self {
            IdCond::Always => true,
            IdCond::Never => false,
            IdCond::Bound(c) => row[*c] != NO_TERM,
            // An unbound slot is 0 and real ids start at 1, so the
            // plain compare also encodes "bound and equal".
            IdCond::EqConst(c, id) => row[*c] == *id,
            IdCond::EqVar(a, b) => row[*a] != NO_TERM && row[*a] == row[*b],
            IdCond::Not(r) => !r.satisfied_by(row),
            IdCond::And(a, b) => a.satisfied_by(row) && b.satisfied_by(row),
            IdCond::Or(a, b) => a.satisfied_by(row) || b.satisfied_by(row),
        }
    }
}

/// Per-query columnar evaluation context.
pub(crate) struct Columnar<'a> {
    pub(crate) view: IdView<'a>,
    pub(crate) frame: VarFrame,
    /// The snapshot's deletion set, id-encoded once up front.
    pub(crate) dels: FxHashSet<[TermId; 3]>,
    pub(crate) pool: &'a Pool,
    pub(crate) parallel: bool,
    /// The span/event sink — disabled outside traced runs, in which
    /// case every recording call short-circuits on one branch.
    pub(crate) rec: &'a Recorder,
}

/// Attempts the columnar path for `pattern` over `engine`'s backend.
/// `None` means "not servable — use the term-at-a-time engine".
pub(crate) fn try_run<I: TripleLookup + Sync>(
    engine: &Engine<I>,
    pattern: &Pattern,
    parallel: bool,
    pool: &Pool,
    rec: &Recorder,
    budget: &EvalBudget,
) -> Option<Result<owql_algebra::MappingSet, EvalError>> {
    let view = engine.index().id_view()?;
    let vars = pattern_vars(pattern);
    if vars.is_empty() {
        // Fully ground patterns produce zero-width tables; the
        // reference path handles them directly.
        return None;
    }
    let frame = VarFrame::new(vars)?;
    let ctx = Columnar {
        dels: view.del_rows(),
        view,
        frame,
        pool,
        parallel,
        rec,
    };
    Some(ctx.eval(pattern, SpanId::ROOT, budget).map(|table| {
        let rows = table.len() as u64;
        // `decode` emits provably distinct rows, so the resulting
        // `MappingSet` keeps the `Repr::Distinct` fast path and never
        // builds a hash set.
        rec.record_columnar_decode(rows, true);
        table.decode(&ctx.frame, ctx.view.dict)
    }))
}

impl Columnar<'_> {
    pub(crate) fn width(&self) -> usize {
        self.frame.width()
    }

    pub(crate) fn compile_triple(&self, t: TriplePattern) -> IdTriple {
        let compile = |tp: TermPattern| match tp {
            TermPattern::Iri(iri) => match self.view.dict.lookup(iri) {
                Some(id) => IdPos::Const(id),
                None => IdPos::Missing,
            },
            TermPattern::Var(v) => IdPos::Var(
                self.frame
                    .col(v)
                    .expect("frame covers every pattern variable"),
            ),
        };
        IdTriple {
            pos: [compile(t.s), compile(t.p), compile(t.o)],
        }
    }

    pub(crate) fn compile_cond(&self, r: &Condition) -> IdCond {
        match r {
            Condition::True => IdCond::Always,
            Condition::False => IdCond::Never,
            Condition::Bound(v) => IdCond::Bound(self.col(*v)),
            Condition::EqConst(v, c) => match self.view.dict.lookup(*c) {
                // A never-interned constant equals no binding.
                None => IdCond::Never,
                Some(id) => IdCond::EqConst(self.col(*v), id),
            },
            Condition::EqVar(a, b) => IdCond::EqVar(self.col(*a), self.col(*b)),
            Condition::Not(r) => IdCond::Not(Box::new(self.compile_cond(r))),
            Condition::And(a, b) => IdCond::And(
                Box::new(self.compile_cond(a)),
                Box::new(self.compile_cond(b)),
            ),
            Condition::Or(a, b) => IdCond::Or(
                Box::new(self.compile_cond(a)),
                Box::new(self.compile_cond(b)),
            ),
        }
    }

    fn col(&self, v: owql_algebra::Variable) -> usize {
        self.frame
            .col(v)
            .expect("frame covers every condition variable")
    }

    /// One algebra node: evaluates the operator and records its span
    /// under `parent`. With a disabled recorder the `begin`/`timer`
    /// calls return immediately and the label is never formatted.
    pub(crate) fn eval(
        &self,
        pattern: &Pattern,
        parent: SpanId,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        budget.check()?;
        let rec = self.rec;
        let id = rec.begin();
        let timer = rec.timer();
        let (rows_in, out) = match pattern {
            Pattern::Triple(_) | Pattern::And(..) => self.eval_spine(pattern, id, budget)?,
            Pattern::Opt(a, b) => {
                let left = self.eval(a, id, budget)?;
                let right = self.eval(b, id, budget)?;
                (Some(left.len() as u64), left.left_outer_join(&right))
            }
            Pattern::Union(..) if self.parallel => {
                let disjuncts = union_spine(pattern);
                let parts = self
                    .pool
                    .map_profiled(&disjuncts, rec, |d| self.eval(d, id, budget));
                let mut out = IdMappingSet::new(self.width());
                for part in parts {
                    let part = part?;
                    for row in part.rows() {
                        out.push_row(row);
                    }
                }
                out.sort_dedup();
                (None, out)
            }
            Pattern::Union(a, b) => {
                let left = self.eval(a, id, budget)?;
                (None, left.union(&self.eval(b, id, budget)?))
            }
            Pattern::Select(vars, p) => {
                let keep: Vec<bool> = (0..self.width())
                    .map(|c| vars.contains(&self.frame.var(c)))
                    .collect();
                let inner = self.eval(p, id, budget)?;
                (Some(inner.len() as u64), inner.project(&keep))
            }
            Pattern::Filter(p, r) => {
                let cond = self.compile_cond(r);
                let mut inner = self.eval(p, id, budget)?;
                let rows_in = inner.len() as u64;
                inner.retain(|row| cond.satisfied_by(row));
                (Some(rows_in), inner)
            }
            Pattern::Ns(p) => {
                let inner = self.eval(p, id, budget)?;
                let candidates = inner.len() as u64;
                let out = inner.maximal(self.parallel.then_some(self.pool));
                rec.record_ns(candidates, out.len() as u64);
                (Some(candidates), out)
            }
            Pattern::Minus(a, b) => {
                let left = self.eval(a, id, budget)?;
                (
                    Some(left.len() as u64),
                    left.difference(&self.eval(b, id, budget)?),
                )
            }
        };
        if rec.is_enabled() {
            rec.record_span(
                id,
                parent,
                op_kind(pattern),
                &self.op_label(pattern),
                rows_in,
                out.len() as u64,
                &timer,
            );
        }
        Ok(out)
    }

    /// The human-readable span label for one operator node. Only
    /// called when the recorder is enabled, so the formatting cost
    /// stays off the untraced hot path.
    fn op_label(&self, pattern: &Pattern) -> String {
        match pattern {
            Pattern::Triple(_) | Pattern::And(..) => {
                let (triples, others) = spine_parts(pattern);
                format!("columnar {}", spine_label(triples.len(), others.len()))
            }
            Pattern::Union(..) if self.parallel => {
                format!(
                    "union of {} disjuncts (columnar)",
                    union_spine(pattern).len()
                )
            }
            Pattern::Union(..) => "union (columnar)".to_owned(),
            Pattern::Opt(..) => "left outer join (columnar)".to_owned(),
            Pattern::Minus(..) => "difference (columnar)".to_owned(),
            Pattern::Select(vars, _) => format!("{} (columnar)", project_label(vars)),
            Pattern::Filter(_, r) => format!("filter {r} (columnar)"),
            Pattern::Ns(_) => "maximal answers (columnar)".to_owned(),
        }
    }

    /// The `AND`-spine: evaluate the non-triple conjuncts, join them
    /// smallest-first as the seed, then extend with the triple patterns
    /// greedily (fewest-unbound-columns, then scan cardinality) via
    /// binary-searched run scans. `span` is this spine's own span id —
    /// the per-step `SCAN` spans cite it as their parent. Returns the
    /// seeded candidate count (the spine span's `rows_in`) with the
    /// result.
    fn eval_spine(
        &self,
        pattern: &Pattern,
        span: SpanId,
        budget: &EvalBudget,
    ) -> Result<(Option<u64>, IdMappingSet), EvalError> {
        let (triples, others) = spine_parts(pattern);
        let w = self.width();
        let mut compiled: Vec<(IdTriple, TriplePattern)> = triples
            .iter()
            .map(|&t| (self.compile_triple(t), t))
            .collect();
        if compiled.iter().any(|(c, _)| c.unsatisfiable()) {
            // Some constant was never interned: that conjunct — and
            // with it the whole AND — matches nothing.
            return Ok((Some(0), IdMappingSet::new(w)));
        }
        let mut sub: Vec<IdMappingSet> = others
            .iter()
            .map(|p| self.eval(p, span, budget))
            .collect::<Result<_, _>>()?;
        let mut current = if sub.is_empty() {
            let mut seed = IdMappingSet::new(w);
            seed.push_row(&vec![NO_TERM; w]);
            seed
        } else {
            sub.sort_by_key(IdMappingSet::len);
            let mut acc = sub.remove(0);
            for s in sub {
                acc = acc.join(&s);
            }
            acc
        };
        let seeded = Some(current.len() as u64);
        // The ordering heuristic's bound set: columns bound in the
        // first seed row (mirrors the term engine's choice, which uses
        // the first mapping's domain).
        let mut bound_mask = if current.is_empty() {
            0
        } else {
            owql_algebra::id_mapping::IdMapping::new(current.row(0)).domain_mask()
        };
        // When every seed row has the same domain, extending distinct
        // rows yields distinct rows (the differing bound column
        // persists, and differing scan matches differ in some variable
        // column), and all extensions share a domain again — so the
        // per-step dedup can be skipped. Heterogeneous seeds (an OPT or
        // UNION conjunct) keep the dedup: overwritten-free extension
        // can then collide across rows with different domains.
        let homogeneous = current
            .rows()
            .all(|r| owql_algebra::id_mapping::IdMapping::new(r).domain_mask() == bound_mask);
        if homogeneous && !compiled.is_empty() {
            self.rec.record_columnar_dedup_skip();
        }
        while !compiled.is_empty() {
            budget.check()?;
            if current.is_empty() {
                return Ok((seeded, IdMappingSet::new(w)));
            }
            let next = self.pick_next(&compiled, bound_mask);
            let (t, tp) = compiled.swap_remove(next);
            let rec = self.rec;
            let id = rec.begin();
            let timer = rec.timer();
            let rows_in = current.len() as u64;
            current = self.extend(&current, t, !homogeneous, budget)?;
            if rec.is_enabled() {
                rec.record_span_est(
                    id,
                    span,
                    OpKind::Scan,
                    &format!("{tp} via {} (columnar)", crate::plan::access_path(tp)),
                    Some(rows_in),
                    current.len() as u64,
                    Some(self.scan_estimate(t)),
                    &timer,
                );
            }
            bound_mask |= t.var_mask();
        }
        Ok((seeded, current))
    }

    /// The planner-side output estimate for one scan step: the
    /// constant-only run cardinality upper bound — the same `IdRuns`
    /// statistic [`Columnar::pick_next`] orders the join by, reported
    /// per span so EXPLAIN ANALYZE shows estimated vs observed rows.
    fn scan_estimate(&self, t: IdTriple) -> u64 {
        let key_of = |p: IdPos| match p {
            IdPos::Const(id) => Some(id),
            _ => None,
        };
        self.view
            .cardinality_upper(key_of(t.pos[0]), key_of(t.pos[1]), key_of(t.pos[2])) as u64
    }

    /// Greedy choice: fewest variable columns not yet bound, breaking
    /// ties by the constant-only scan cardinality (a pair of binary
    /// searches per run — no rows are touched).
    pub(crate) fn pick_next(
        &self,
        triples: &[(IdTriple, TriplePattern)],
        bound_mask: u64,
    ) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX);
        for (i, (t, _)) in triples.iter().enumerate() {
            let unbound = (t.var_mask() & !bound_mask).count_ones() as usize;
            let key_of = |p: IdPos| match p {
                IdPos::Const(id) => Some(id),
                _ => None,
            };
            let card =
                self.view
                    .cardinality_upper(key_of(t.pos[0]), key_of(t.pos[1]), key_of(t.pos[2]));
            let key = (unbound, card);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// One spine step: extend every row of `current` with every run
    /// match of `t` under that row's bindings. Parallel mode chunks the
    /// row range across the pool once it clears the same
    /// candidates-per-chunk threshold as the term engine.
    pub(crate) fn extend(
        &self,
        current: &IdMappingSet,
        t: IdTriple,
        dedup: bool,
        budget: &EvalBudget,
    ) -> Result<IdMappingSet, EvalError> {
        let w = self.width();
        let n = current.len();
        let chunks = if self.parallel && n >= 2 * MIN_BINDINGS_PER_CHUNK {
            (n / MIN_BINDINGS_PER_CHUNK).min(self.pool.threads() * 4)
        } else {
            1
        };
        let mut out = if chunks <= 1 {
            // Matched rows rarely shrink the table: seed the buffer at
            // the input size to skip the early doubling reallocations.
            let mut data = Vec::with_capacity(n * w);
            self.extend_range(current, 0, n, t, budget, &mut data)?;
            IdMappingSet::from_raw(w, data)
        } else {
            let ranges = chunk_ranges(n, chunks);
            let parts = self.pool.map_profiled(&ranges, self.rec, |&(lo, hi)| {
                let mut data = Vec::new();
                self.extend_range(current, lo, hi, t, budget, &mut data)
                    .map(|()| data)
            });
            let mut data = Vec::new();
            for part in parts {
                data.append(&mut part?);
            }
            IdMappingSet::from_raw(w, data)
        };
        if dedup {
            out.sort_dedup();
        }
        Ok(out)
    }

    /// Extends rows `lo..hi` of `current`, appending result rows to
    /// `data`.
    fn extend_range(
        &self,
        current: &IdMappingSet,
        lo: usize,
        hi: usize,
        t: IdTriple,
        budget: &EvalBudget,
        data: &mut Vec<TermId>,
    ) -> Result<(), EvalError> {
        let check_dels = !self.dels.is_empty();
        // Consecutive rows tend toward equal or ascending scan keys
        // (they came out of a sorted run themselves): equal keys reuse
        // the previous slice outright, and fresh keys gallop from the
        // previous match position instead of binary-searching the whole
        // run.
        let mut last_key: Option<(Option<TermId>, Option<TermId>, Option<TermId>)> = None;
        let mut memo_base: &[[TermId; 3]] = &[];
        let mut memo_base_order = owql_rdf::RunOrder::Spo;
        let mut memo_adds: &[[TermId; 3]] = &[];
        let mut memo_adds_order = owql_rdf::RunOrder::Spo;
        let mut hint_base = 0usize;
        let mut hint_adds = 0usize;
        // Hint accounting: a key equal to the previous row's reuses the
        // memoized slice outright (hit); a fresh key pays the hinted
        // gallop (miss). Local counters — one predictable add per row —
        // flushed into the recorder's atomics once per range.
        let mut hint_hits = 0u64;
        let mut hint_misses = 0u64;
        for i in lo..hi {
            if (i - lo) % BUDGET_CHECK_STRIDE == BUDGET_CHECK_STRIDE - 1 {
                budget.check()?;
            }
            let row = current.row(i);
            // Resolve each position under this row's bindings: a bound
            // variable column constrains the scan like a constant.
            let resolve = |p: IdPos| match p {
                IdPos::Const(id) => Some(id),
                IdPos::Missing => unreachable!("unsatisfiable patterns are filtered out"),
                IdPos::Var(c) => match row[c] {
                    NO_TERM => None,
                    id => Some(id),
                },
            };
            let (s, p, o) = (resolve(t.pos[0]), resolve(t.pos[1]), resolve(t.pos[2]));
            if last_key != Some((s, p, o)) {
                last_key = Some((s, p, o));
                hint_misses += 1;
                (memo_base, memo_base_order) = self.view.base.scan_from(s, p, o, &mut hint_base);
                if let Some(adds) = self.view.adds {
                    (memo_adds, memo_adds_order) = adds.scan_from(s, p, o, &mut hint_adds);
                }
            } else {
                hint_hits += 1;
            }
            let mut emit = |matched: [TermId; 3]| {
                if check_dels && self.dels.contains(&matched) {
                    return;
                }
                let start = data.len();
                data.extend_from_slice(row);
                let new = &mut data[start..];
                // Repeated variables: the second occurrence must agree
                // with the binding the first just wrote.
                for (pos, val) in t.pos.iter().zip(matched) {
                    if let IdPos::Var(c) = pos {
                        if new[*c] == NO_TERM {
                            new[*c] = val;
                        } else if new[*c] != val {
                            data.truncate(start);
                            return;
                        }
                    }
                }
            };
            for &r in memo_base {
                emit(memo_base_order.to_spo(r));
            }
            for &r in memo_adds {
                emit(memo_adds_order.to_spo(r));
            }
        }
        self.rec.record_columnar_hints(hint_hits, hint_misses);
        Ok(())
    }
}
