//! The scoped work-stealing pool.
//!
//! See the crate docs for the execution model; the short version:
//! [`Pool::map`] splits its input into contiguous chunks, deals the
//! chunks round-robin onto one deque per worker, and spawns `threads`
//! scoped std threads. Each worker drains its own deque from the front
//! and, when empty, steals from the *back* of a sibling's deque — the
//! classic work-stealing discipline, sized so a steal moves the largest
//! remaining contiguous block of a victim's work.

use crate::chunk::chunk_ranges;
use owql_obs::Recorder;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many chunks each worker's deque starts with. More chunks give
/// the stealers finer granularity at the cost of more lock traffic;
/// four per worker keeps both small.
const CHUNKS_PER_WORKER: usize = 4;

thread_local! {
    /// Set while the current thread is a pool worker: nested
    /// [`Pool::map`] calls run inline instead of spawning another
    /// thread generation (bounding the total thread count at
    /// `threads + 1` no matter how deeply evaluation recurses).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Cumulative counters exported by [`Pool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// `map` calls that spawned worker threads.
    pub parallel_maps: u64,
    /// `map` calls that ran inline (1 thread, ≤1 item, or nested).
    pub inline_maps: u64,
    /// Chunks executed by workers (parallel maps only).
    pub tasks: u64,
    /// Chunks a worker took from a sibling's deque.
    pub steals: u64,
}

/// A scoped work-stealing thread pool of a fixed width.
///
/// The pool owns no long-lived threads: every [`Pool::map`] spawns its
/// workers inside a [`std::thread::scope`], so closures may borrow from
/// the caller's stack freely and a returning `map` leaves nothing
/// running. A `Pool` is `Sync` — one instance can serve any number of
/// concurrent queries.
///
/// ```
/// use owql_exec::Pool;
/// let pool = Pool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |&n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    parallel_maps: AtomicU64,
    inline_maps: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            parallel_maps: AtomicU64::new(0),
            inline_maps: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// The single-threaded pool: every `map` runs inline, bit-identical
    /// to a plain sequential iteration.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// A pool sized by the `OWQL_THREADS` environment variable, falling
    /// back to [`std::thread::available_parallelism`] when the variable
    /// is unset or unparsable. `OWQL_THREADS=1` yields the sequential
    /// pool.
    pub fn from_env() -> Pool {
        let configured = std::env::var("OWQL_THREADS")
            .ok()
            .and_then(|v| parse_threads(&v));
        Pool::new(configured.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }))
    }

    /// One pool per shard for scatter-gather evaluation: `shards`
    /// pools of `threads_each` workers. Shard counts and widths are a
    /// deployment decision, so no environment fallback applies here —
    /// the caller (typically the store's shard runtime) decides both.
    pub fn shard_pools(shards: usize, threads_each: usize) -> Vec<Pool> {
        (0..shards.max(1))
            .map(|_| Pool::new(threads_each))
            .collect()
    }

    /// Number of worker threads a parallel `map` spawns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative execution counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            parallel_maps: self.parallel_maps.load(Ordering::Relaxed),
            inline_maps: self.inline_maps.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every item, in input order, returning the results
    /// in input order.
    ///
    /// Runs inline (no threads) when the pool is sequential, the input
    /// has fewer than two items, or the caller is itself a pool worker
    /// (nested data parallelism flattens instead of oversubscribing).
    /// A panic in `f` propagates to the caller after the scope joins.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_inner(items, f, None)
    }

    /// [`Pool::map`] with per-worker observability: besides the pool's
    /// own cumulative counters, each worker reports its busy wall time,
    /// chunks executed, and chunks stolen into `recorder` (inline runs
    /// count as inline maps there). A disabled recorder reduces this to
    /// plain `map` — the worker loop doesn't even read the clock.
    pub fn map_profiled<T, R, F>(&self, items: &[T], recorder: &Recorder, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_inner(items, f, Some(recorder))
    }

    fn map_inner<T, R, F>(&self, items: &[T], f: F, recorder: Option<&Recorder>) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let recording = recorder.is_some_and(Recorder::is_enabled);
        if self.threads == 1 || items.len() < 2 || IN_WORKER.with(Cell::get) {
            self.inline_maps.fetch_add(1, Ordering::Relaxed);
            if let Some(rec) = recorder {
                rec.record_map_inline();
            }
            return items.iter().map(f).collect();
        }
        self.parallel_maps.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = recorder {
            rec.record_map_parallel();
        }

        let workers = self.threads.min(items.len());
        let ranges = chunk_ranges(items.len(), workers * CHUNKS_PER_WORKER);
        // Deal chunks round-robin so every deque starts non-empty and a
        // stolen back chunk is far from the victim's working front.
        let deques: Vec<Mutex<VecDeque<(usize, usize)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, range) in ranges.into_iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("exec deque poisoned")
                .push_back(range);
        }

        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(items.len(), || None);
        std::thread::scope(|s| {
            let deques = &deques;
            let f = &f;
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    s.spawn(move || {
                        IN_WORKER.with(|w| w.set(true));
                        let started = recording.then(Instant::now);
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let mut executed = 0u64;
                        let mut stolen = 0u64;
                        while let Some(((lo, hi), was_steal)) = next_chunk(me, deques) {
                            executed += 1;
                            stolen += u64::from(was_steal);
                            for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
                                out.push((i, f(item)));
                            }
                        }
                        IN_WORKER.with(|w| w.set(false));
                        let busy_ns = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                        (out, executed, stolen, busy_ns)
                    })
                })
                .collect();
            for (me, handle) in handles.into_iter().enumerate() {
                let (out, executed, stolen, busy_ns) = handle.join().expect("exec worker panicked");
                self.tasks.fetch_add(executed, Ordering::Relaxed);
                self.steals.fetch_add(stolen, Ordering::Relaxed);
                if let Some(rec) = recorder {
                    rec.record_worker(me, busy_ns, executed, stolen);
                }
                for (i, r) in out {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    }
}

/// Pops the next chunk for worker `me`: front of its own deque first,
/// then the back of each sibling's. Returns whether it was a steal.
fn next_chunk(
    me: usize,
    deques: &[Mutex<VecDeque<(usize, usize)>>],
) -> Option<((usize, usize), bool)> {
    if let Some(range) = deques[me].lock().expect("exec deque poisoned").pop_front() {
        return Some((range, false));
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(range) = deques[victim]
            .lock()
            .expect("exec deque poisoned")
            .pop_back()
        {
            return Some((range, true));
        }
    }
    None
}

/// Parses an `OWQL_THREADS` value; rejects zero and garbage.
fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_across_widths() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&n| n * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            assert_eq!(pool.map(&items, |&n| n * 3 + 1), expected, "{threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let pool = Pool::new(8);
        let none: Vec<u32> = pool.map(&[] as &[u32], |&n| n);
        assert!(none.is_empty());
        assert_eq!(pool.map(&[7u32], |&n| n + 1), vec![8]);
        let stats = pool.stats();
        assert_eq!(stats.inline_maps, 2);
        assert_eq!(stats.parallel_maps, 0);
    }

    #[test]
    fn nested_maps_flatten_instead_of_respawning() {
        let pool = Pool::new(4);
        let grid: Vec<Vec<u32>> = (0..8)
            .map(|r| (0..8).map(|c| r * 8 + c).collect())
            .collect();
        let sums = pool.map(&grid, |row| pool.map(row, |&c| c * 2).iter().sum::<u32>());
        let expected: Vec<u32> = grid
            .iter()
            .map(|row| row.iter().map(|&c| c * 2).sum())
            .collect();
        assert_eq!(sums, expected);
        // The outer call went parallel; the 8 inner calls all inlined.
        let stats = pool.stats();
        assert_eq!(stats.parallel_maps, 1);
        assert_eq!(stats.inline_maps, 8);
    }

    #[test]
    fn every_chunk_is_executed_exactly_once() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |&i| i);
        assert_eq!(out, items);
        let stats = pool.stats();
        // 3 workers × 4 chunks per worker over 100 items.
        assert_eq!(stats.tasks, 12);
    }

    #[test]
    fn sequential_pool_spawns_nothing() {
        let pool = Pool::sequential();
        let id = std::thread::current().id();
        let seen = pool.map(&[0u8, 1, 2], |_| std::thread::current().id());
        assert!(seen.iter().all(|&t| t == id));
        assert_eq!(pool.stats().parallel_maps, 0);
    }

    #[test]
    #[should_panic(expected = "exec worker panicked")]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        let items: Vec<u32> = (0..32).collect();
        pool.map(&items, |&n| {
            assert!(n != 17, "boom");
            n
        });
    }

    #[test]
    fn map_profiled_reports_per_worker_stats() {
        let pool = Pool::new(3);
        let rec = Recorder::new();
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_profiled(&items, &rec, |&i| i * 2);
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        let profile = rec.profile();
        assert_eq!(profile.pool.parallel_maps, 1);
        // 3 workers × 4 chunks per worker, every chunk accounted for.
        assert_eq!(profile.pool.chunks, 12);
        assert_eq!(profile.pool.workers.len(), 3);
        assert_eq!(
            profile.pool.workers.iter().map(|w| w.chunks).sum::<u64>(),
            12
        );
    }

    #[test]
    fn map_profiled_with_disabled_recorder_records_nothing() {
        let pool = Pool::new(2);
        let rec = Recorder::disabled();
        let items: Vec<u32> = (0..50).collect();
        assert_eq!(pool.map_profiled(&items, &rec, |&i| i), items);
        let profile = rec.profile();
        assert_eq!(profile.pool.parallel_maps, 0);
        assert!(profile.pool.workers.is_empty());
        // The pool's own counters still tick — only the recorder is off.
        assert_eq!(pool.stats().parallel_maps, 1);
    }

    #[test]
    fn thread_parsing() {
        assert_eq!(parse_threads("8"), Some(8));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("lots"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn clamps_zero_width_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
    }
}
