//! # owql-exec
//!
//! A dependency-free, scoped, work-stealing thread pool — the execution
//! substrate of the parallel evaluation engine (`Engine::run` with
//! `ExecOpts::parallel()` in `owql-eval` and the same options behind
//! `Store::query_request` in `owql-store`).
//!
//! The build environment is fully offline, so this crate hand-rolls the
//! small slice of a task scheduler the engine actually needs instead of
//! pulling in rayon:
//!
//! * **Scoped** — workers are spawned inside [`std::thread::scope`] per
//!   [`Pool::map`] call, so tasks may borrow the caller's stack (graph
//!   snapshots, pattern trees, candidate vectors) with no `'static`
//!   gymnastics and no idle resident threads between queries.
//! * **Chunked deques** — the input index space is cut into contiguous
//!   chunks ([`chunk_ranges`]), dealt round-robin onto one
//!   `Mutex<VecDeque>` per worker. Owners pop from the front, thieves
//!   steal from the back, so a steal transfers the largest contiguous
//!   block of untouched work and false sharing across workers stays
//!   minimal.
//! * **Deterministic results** — results are reassembled by input
//!   index, so `map` output order never depends on scheduling, and a
//!   1-thread pool executes the exact sequential iteration. The
//!   differential test suites in `owql-eval` and `tests/
//!   integration_parallel.rs` hold the parallel engine to exact
//!   (`==`) agreement with the sequential one at every width.
//! * **Nested-call flattening** — a `map` issued from inside a worker
//!   runs inline, bounding the thread count at `threads + 1` however
//!   deeply pattern evaluation recurses.
//!
//! Width selection: [`Pool::from_env`] honours `OWQL_THREADS` (the knob
//! the CI determinism job sweeps) and otherwise uses
//! [`std::thread::available_parallelism`].

mod chunk;
mod pool;

pub use chunk::chunk_ranges;
pub use pool::{ExecStats, Pool};
