//! Range chunking for the work-stealing pool.

/// Splits `0..len` into at most `chunks` contiguous half-open ranges of
/// near-equal size (the first `len % chunks` ranges get one extra
/// element). Returns an empty vector for `len == 0`.
///
/// ```
/// use owql_exec::chunk_ranges;
/// assert_eq!(chunk_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
/// assert_eq!(chunk_ranges(2, 8), vec![(0, 1), (1, 2)]);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for i in 0..chunks {
        let hi = lo + base + usize::from(i < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        for len in 0..40usize {
            for chunks in 1..10usize {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = vec![0usize; len];
                for (lo, hi) in &ranges {
                    assert!(lo < hi, "empty range for len={len} chunks={chunks}");
                    for slot in covered.iter_mut().take(*hi).skip(*lo) {
                        *slot += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn never_more_chunks_than_items() {
        assert_eq!(chunk_ranges(3, 16).len(), 3);
        assert_eq!(chunk_ranges(16, 3).len(), 3);
        assert!(chunk_ranges(0, 3).is_empty());
        assert!(chunk_ranges(5, 0).is_empty());
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let ranges = chunk_ranges(23, 5);
        let sizes: Vec<usize> = ranges.iter().map(|(lo, hi)| hi - lo).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }
}
