//! Property tests for the term dictionary and the id-encoded runs: the
//! id layer must be an exact, stable mirror of the term layer.

use owql_rdf::{Graph, IdRuns, Iri, TermDict, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Iri> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Iri::new(&s)),
        "[a-z]{1,4}".prop_map(|s| Iri::new(&format!("http://example.org/{s}"))),
    ]
}

fn arb_terms() -> impl Strategy<Value = Vec<Iri>> {
    proptest::collection::vec(arb_iri(), 0..60)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((arb_iri(), arb_iri(), arb_iri()), 0..50)
        .prop_map(|v| v.into_iter().map(|(s, p, o)| Triple { s, p, o }).collect())
}

/// The reference scan: filter the raw triple list by the pattern.
fn naive_scan(triples: &[Triple], s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple> {
    let mut out: Vec<Triple> = triples
        .iter()
        .filter(|t| {
            s.is_none_or(|s| t.s == s) && p.is_none_or(|p| t.p == p) && o.is_none_or(|o| t.o == o)
        })
        .copied()
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    /// Every interned term resolves back to itself, at the id intern
    /// reported — and lookup agrees with intern.
    #[test]
    fn intern_resolve_roundtrip(terms in arb_terms()) {
        let dict = TermDict::new();
        for &t in &terms {
            let id = dict.intern(t);
            prop_assert_eq!(dict.lookup(t), Some(id));
            prop_assert_eq!(dict.resolve(id), Some(t));
        }
        // Re-interning is a no-op: same ids the second time around.
        for &t in &terms {
            let id = dict.lookup(t).unwrap();
            prop_assert_eq!(dict.intern(t), id);
        }
    }

    /// A rank-seeded dictionary assigns ids in sorted-term order
    /// (matching the persisted segment term table), and later interns
    /// never renumber the seeded prefix.
    #[test]
    fn seeded_ranks_are_stable(seed in arb_terms(), later in arb_terms()) {
        let mut sorted: Vec<Iri> = seed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let dict = TermDict::from_sorted_terms(&sorted);
        // Rank-preserving: the id of the i-th sorted term is i + 1.
        for (i, &t) in sorted.iter().enumerate() {
            prop_assert_eq!(dict.lookup(t), Some(i as u64 + 1));
        }
        let before: Vec<(Iri, u64)> =
            sorted.iter().map(|&t| (t, dict.lookup(t).unwrap())).collect();
        for &t in &later {
            dict.intern(t);
        }
        // The original assignments survive any amount of later growth.
        for (t, id) in before {
            prop_assert_eq!(dict.lookup(t), Some(id));
            prop_assert_eq!(dict.resolve(id), Some(t));
        }
    }

    /// Id-encoded run scans agree with the naive term-level filter on
    /// all 8 triple-pattern shapes, including constants absent from the
    /// graph.
    #[test]
    fn id_scan_matches_term_scan(g in arb_graph(), probe in arb_iri()) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let dict = TermDict::new();
        let runs = IdRuns::build(&triples, &dict);
        // Candidate constants: one drawn from the graph per position
        // when available, plus a probe term that may not be interned.
        let mut subjects = vec![None, Some(probe)];
        let mut predicates = vec![None, Some(probe)];
        let mut objects = vec![None, Some(probe)];
        if let Some(t) = triples.first() {
            subjects.push(Some(t.s));
            predicates.push(Some(t.p));
            objects.push(Some(t.o));
        }
        for &s in &subjects {
            for &p in &predicates {
                for &o in &objects {
                    let expected = naive_scan(&triples, s, p, o);
                    // A constant the dictionary has never seen matches
                    // nothing, mirroring the evaluator's Missing arm.
                    let encode = |t: Option<Iri>| t.map(|t| dict.lookup(t).unwrap_or(0));
                    let (es, ep, eo) = (encode(s), encode(p), encode(o));
                    let mut got: Vec<Triple> = if es == Some(0) || ep == Some(0) || eo == Some(0) {
                        Vec::new()
                    } else {
                        let (rows, order) = runs.scan(es, ep, eo);
                        rows.iter()
                            .map(|&r| {
                                let [ts, tp, to] = order.to_spo(r);
                                Triple {
                                    s: dict.resolve(ts).unwrap(),
                                    p: dict.resolve(tp).unwrap(),
                                    o: dict.resolve(to).unwrap(),
                                }
                            })
                            .collect()
                    };
                    got.sort_unstable();
                    prop_assert_eq!(got, expected, "shape ({:?},{:?},{:?})", s, p, o);
                }
            }
        }
    }

    /// The hinted (galloping) scan returns exactly the plain scan's
    /// range from any starting hint.
    #[test]
    fn hinted_scan_matches_plain_scan(g in arb_graph(), hint0 in 0usize..200) {
        let triples: Vec<Triple> = g.iter().copied().collect();
        let dict = TermDict::new();
        let runs = IdRuns::build(&triples, &dict);
        let n = dict.len();
        let ids: Vec<Option<u64>> =
            (0..=n.min(6) as u64).map(|i| if i == 0 { None } else { Some(i) }).collect();
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let (want_rows, want_order) = runs.scan(s, p, o);
                    let mut hint = hint0;
                    let (got_rows, got_order) = runs.scan_from(s, p, o, &mut hint);
                    prop_assert_eq!(got_rows, want_rows);
                    prop_assert_eq!(got_order as u8, want_order as u8);
                    // The returned hint is reusable: scanning again from
                    // the exact position must also agree.
                    let (again, _) = runs.scan_from(s, p, o, &mut hint);
                    prop_assert_eq!(again, want_rows);
                }
            }
        }
    }
}
