//! Property tests: the exchange formats round-trip on arbitrary graphs.

use owql_rdf::{generate, ntriples, turtle, Graph, Iri, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Iri> {
    // Words, URLs, and strings with spaces / keyword collisions — the
    // angle-quoted writers must survive all of them.
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| Iri::new(&s)),
        "[a-z]{1,5}".prop_map(|s| Iri::new(&format!("http://example.org/{s}"))),
        Just(Iri::new("has space")),
        Just(Iri::new("SELECT")),
        Just(Iri::new("a")),
    ]
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((arb_iri(), arb_iri(), arb_iri()), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, p, o)| Triple { s, p, o }).collect())
}

proptest! {
    #[test]
    fn ntriples_roundtrip(g in arb_graph()) {
        let text = ntriples::write(&g);
        prop_assert_eq!(ntriples::parse(&text).unwrap(), g);
    }

    #[test]
    fn turtle_roundtrip(g in arb_graph()) {
        let text = turtle::write(&g);
        prop_assert_eq!(turtle::parse(&text).unwrap(), g);
    }

    /// The canonical writer is deterministic: same graph, same bytes.
    #[test]
    fn writers_are_canonical(g in arb_graph()) {
        prop_assert_eq!(ntriples::write(&g), ntriples::write(&g));
        let reparsed = ntriples::parse(&ntriples::write(&g)).unwrap();
        prop_assert_eq!(ntriples::write(&reparsed), ntriples::write(&g));
    }
}

/// A workload-shaped graph from the `generate` module, with
/// proptest-driven shape parameters — exercises the writers on the
/// realistic IRI vocabularies the benchmarks use, not just the
/// adversarial ones above.
fn arb_generated_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (1usize..60, 1usize..6, 1usize..4, 1usize..6, 0u64..1000)
            .prop_map(|(n, s, p, o, seed)| generate::uniform(n, s, p, o, seed)),
        (1usize..30).prop_map(|n| generate::star("hub", "spoke", n)),
        (1usize..30).prop_map(|n| generate::chain("next", n)),
        (2usize..8, 2usize..12, 0u64..1000)
            .prop_map(|(orgs, people, seed)| generate::organizations(orgs, people, seed)),
    ]
}

proptest! {
    /// `parse(serialize(g)) == g` for both exchange formats over
    /// generator-produced graphs.
    #[test]
    fn generated_graphs_roundtrip_both_formats(g in arb_generated_graph()) {
        prop_assert_eq!(ntriples::parse(&ntriples::write(&g)).unwrap(), g.clone());
        prop_assert_eq!(turtle::parse(&turtle::write(&g)).unwrap(), g);
    }
}
