//! Property tests: the exchange formats round-trip on arbitrary graphs.

use owql_rdf::{ntriples, turtle, Graph, Iri, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Iri> {
    // Words, URLs, and strings with spaces / keyword collisions — the
    // angle-quoted writers must survive all of them.
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| Iri::new(&s)),
        "[a-z]{1,5}".prop_map(|s| Iri::new(&format!("http://example.org/{s}"))),
        Just(Iri::new("has space")),
        Just(Iri::new("SELECT")),
        Just(Iri::new("a")),
    ]
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((arb_iri(), arb_iri(), arb_iri()), 0..40)
        .prop_map(|v| v.into_iter().map(|(s, p, o)| Triple { s, p, o }).collect())
}

proptest! {
    #[test]
    fn ntriples_roundtrip(g in arb_graph()) {
        let text = ntriples::write(&g);
        prop_assert_eq!(ntriples::parse(&text).unwrap(), g);
    }

    #[test]
    fn turtle_roundtrip(g in arb_graph()) {
        let text = turtle::write(&g);
        prop_assert_eq!(turtle::parse(&text).unwrap(), g);
    }

    /// The canonical writer is deterministic: same graph, same bytes.
    #[test]
    fn writers_are_canonical(g in arb_graph()) {
        prop_assert_eq!(ntriples::write(&g), ntriples::write(&g));
        let reparsed = ntriples::parse(&ntriples::write(&g)).unwrap();
        prop_assert_eq!(ntriples::write(&reparsed), ntriples::write(&g));
    }
}
