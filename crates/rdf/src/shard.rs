//! Subject-id hash partitioning of id-encoded runs.
//!
//! [`shard_rows`] splits the *live* rows of an [`IdView`] (base plus
//! adds, minus deletions) into `n` disjoint per-shard [`IdRuns`], keyed
//! by a multiplicative hash of the subject id. Every triple with the
//! same subject lands in the same shard, which is the property the
//! scatter-gather evaluator leans on: a seed scan whose subject
//! position resolves to a constant matches rows in exactly one shard,
//! and a variable-subject seed scan partitions its matches — and
//! therefore its extended bindings — disjointly across shards.
//!
//! Ids are *rank-stable* under the shared [`TermDict`], so rows in
//! different shards remain directly comparable and a coordinator can
//! merge per-shard partial tables by concatenation.
//!
//! [`TermDict`]: crate::TermDict

use crate::dict::{IdRuns, IdView, TermId};

/// Fibonacci multiplicative hash constant (2^64 / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// The shard owning subject id `s` under an `n`-way partition.
///
/// Subject ids are dense ranks, so a plain `s % n` would correlate
/// with insertion order; the multiplicative mix decorrelates the
/// assignment while staying deterministic across processes.
pub fn shard_of(s: TermId, n: usize) -> usize {
    debug_assert!(n > 0);
    ((s.wrapping_mul(FIB) >> 32) % n as u64) as usize
}

/// Partitions the live rows of `view` into `n` disjoint [`IdRuns`] by
/// [`shard_of`] on the subject id. Deleted base rows are filtered out
/// here, so per-shard scans need no deletion mask.
pub fn shard_rows(view: &IdView<'_>, n: usize) -> Vec<IdRuns> {
    let dels = view.del_rows();
    let mut buckets: Vec<Vec<[TermId; 3]>> = (0..n).map(|_| Vec::new()).collect();
    let mut scatter = |rows: &[[TermId; 3]]| {
        for &row in rows {
            if !dels.is_empty() && dels.contains(&row) {
                continue;
            }
            buckets[shard_of(row[0], n)].push(row);
        }
    };
    scatter(view.base.spo());
    if let Some(adds) = view.adds {
        scatter(adds.spo());
    }
    buckets.into_iter().map(IdRuns::from_spo_rows).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::TermDict;
    use crate::term::Triple;
    use std::collections::HashSet;

    fn sample_runs() -> (TermDict, IdRuns) {
        let triples: Vec<Triple> = (0..40)
            .map(|i| {
                Triple::new(
                    &format!("s{}", i % 13),
                    &format!("p{}", i % 3),
                    &format!("o{i}"),
                )
            })
            .collect();
        let dict = TermDict::new();
        let runs = IdRuns::build(&triples, &dict);
        (dict, runs)
    }

    #[test]
    fn shards_partition_rows_disjointly() {
        let (dict, runs) = sample_runs();
        for n in [1usize, 2, 8] {
            let view = IdView::plain(&dict, &runs);
            let shards = shard_rows(&view, n);
            assert_eq!(shards.len(), n);
            let mut seen: HashSet<[crate::TermId; 3]> = HashSet::new();
            for (k, shard) in shards.iter().enumerate() {
                for &row in shard.spo() {
                    assert_eq!(shard_of(row[0], n), k, "row in wrong shard");
                    assert!(seen.insert(row), "row duplicated across shards");
                }
            }
            assert_eq!(seen.len(), runs.len(), "shards must cover every row");
        }
    }

    #[test]
    fn same_subject_lands_in_same_shard() {
        let (dict, runs) = sample_runs();
        let view = IdView::plain(&dict, &runs);
        let shards = shard_rows(&view, 4);
        for (k, shard) in shards.iter().enumerate() {
            for &row in shard.spo() {
                assert_eq!(shard_of(row[0], 4), k);
            }
        }
    }

    #[test]
    fn deleted_rows_are_excluded() {
        let (dict, runs) = sample_runs();
        let full: Vec<Triple> = {
            // Reconstruct one triple to delete: resolve the first row.
            let row = runs.spo()[0];
            vec![Triple::new(
                dict.resolve(row[0]).unwrap(),
                dict.resolve(row[1]).unwrap(),
                dict.resolve(row[2]).unwrap(),
            )]
        };
        let dels: HashSet<Triple> = full.into_iter().collect();
        let view = IdView {
            dict: &dict,
            base: &runs,
            adds: None,
            dels: Some(&dels),
        };
        let shards = shard_rows(&view, 2);
        let total: usize = shards.iter().map(IdRuns::len).sum();
        assert_eq!(total, runs.len() - 1);
    }
}
