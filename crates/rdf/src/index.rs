//! Triple-pattern indexes over a graph.
//!
//! [`GraphIndex`] materializes the six access paths a triple-pattern scan
//! can take (by subject, predicate, object, and each pair), so that the
//! indexed evaluation engine answers a pattern with bound positions in
//! time proportional to the number of matches rather than to `|G|`.
//!
//! The reference evaluator deliberately does *not* use this module — it
//! scans the graph exactly as the paper's semantics is written — which is
//! what the `engine_ablation` benchmark measures.

use crate::graph::Graph;
use crate::term::{Iri, Triple};
use std::collections::HashMap;

/// A fully materialized secondary index over a [`Graph`].
///
/// Construction is `O(|G|)`; each lookup returns a slice of matching
/// triples. The index holds copies of the (12-byte) triples, trading
/// memory for pointer-chasing-free scans.
#[derive(Clone, Debug, Default)]
pub struct GraphIndex {
    all: Vec<Triple>,
    by_s: HashMap<Iri, Vec<Triple>>,
    by_p: HashMap<Iri, Vec<Triple>>,
    by_o: HashMap<Iri, Vec<Triple>>,
    by_sp: HashMap<(Iri, Iri), Vec<Triple>>,
    by_po: HashMap<(Iri, Iri), Vec<Triple>>,
    by_so: HashMap<(Iri, Iri), Vec<Triple>>,
}

impl GraphIndex {
    /// Builds the index for `graph`.
    pub fn build(graph: &Graph) -> Self {
        let mut idx = GraphIndex {
            all: Vec::with_capacity(graph.len()),
            ..GraphIndex::default()
        };
        for &t in graph.iter() {
            idx.all.push(t);
            idx.by_s.entry(t.s).or_default().push(t);
            idx.by_p.entry(t.p).or_default().push(t);
            idx.by_o.entry(t.o).or_default().push(t);
            idx.by_sp.entry((t.s, t.p)).or_default().push(t);
            idx.by_po.entry((t.p, t.o)).or_default().push(t);
            idx.by_so.entry((t.s, t.o)).or_default().push(t);
        }
        idx.all.sort();
        idx
    }

    /// Number of indexed triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// `true` iff the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All triples, sorted.
    pub fn all(&self) -> &[Triple] {
        &self.all
    }

    /// Membership test for a fully ground triple.
    pub fn contains(&self, t: &Triple) -> bool {
        self.by_sp
            .get(&(t.s, t.p))
            .is_some_and(|v| v.iter().any(|x| x.o == t.o))
    }

    /// Returns the triples matching a pattern with optionally bound
    /// positions. `None` means "any value".
    ///
    /// ```
    /// use owql_rdf::{Graph, GraphIndex, Iri, Triple};
    /// let g: Graph = [Triple::new("a", "p", "b"), Triple::new("a", "q", "c")]
    ///     .into_iter().collect();
    /// let idx = GraphIndex::build(&g);
    /// assert_eq!(idx.matching(Some(Iri::new("a")), None, None).len(), 2);
    /// assert_eq!(idx.matching(None, Some(Iri::new("q")), None).len(), 1);
    /// ```
    pub fn matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple> {
        static EMPTY: Vec<Triple> = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple { s, p, o };
                if self.contains(&t) {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self.by_sp.get(&(s, p)).unwrap_or(&EMPTY).clone(),
            (None, Some(p), Some(o)) => self.by_po.get(&(p, o)).unwrap_or(&EMPTY).clone(),
            (Some(s), None, Some(o)) => self.by_so.get(&(s, o)).unwrap_or(&EMPTY).clone(),
            (Some(s), None, None) => self.by_s.get(&s).unwrap_or(&EMPTY).clone(),
            (None, Some(p), None) => self.by_p.get(&p).unwrap_or(&EMPTY).clone(),
            (None, None, Some(o)) => self.by_o.get(&o).unwrap_or(&EMPTY).clone(),
            (None, None, None) => self.all.clone(),
        }
    }

    /// Estimated number of matches for a pattern (exact for this
    /// implementation; used by the join-order optimizer as a cardinality
    /// estimate).
    pub fn cardinality(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize {
        static EMPTY: Vec<Triple> = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&Triple { s, p, o })),
            (Some(s), Some(p), None) => self.by_sp.get(&(s, p)).unwrap_or(&EMPTY).len(),
            (None, Some(p), Some(o)) => self.by_po.get(&(p, o)).unwrap_or(&EMPTY).len(),
            (Some(s), None, Some(o)) => self.by_so.get(&(s, o)).unwrap_or(&EMPTY).len(),
            (Some(s), None, None) => self.by_s.get(&s).unwrap_or(&EMPTY).len(),
            (None, Some(p), None) => self.by_p.get(&p).unwrap_or(&EMPTY).len(),
            (None, None, Some(o)) => self.by_o.get(&o).unwrap_or(&EMPTY).len(),
            (None, None, None) => self.all.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;
    use crate::term::triple;

    fn idx() -> GraphIndex {
        GraphIndex::build(&graph_from(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("d", "p", "b"),
        ]))
    }

    #[test]
    fn full_scan() {
        let i = idx();
        assert_eq!(i.len(), 4);
        assert_eq!(i.matching(None, None, None).len(), 4);
    }

    #[test]
    fn single_position_lookups() {
        let i = idx();
        assert_eq!(i.matching(Some(Iri::new("a")), None, None).len(), 3);
        assert_eq!(i.matching(None, Some(Iri::new("p")), None).len(), 3);
        assert_eq!(i.matching(None, None, Some(Iri::new("b"))).len(), 3);
        assert_eq!(i.matching(Some(Iri::new("zz")), None, None).len(), 0);
    }

    #[test]
    fn pair_lookups() {
        let i = idx();
        assert_eq!(
            i.matching(Some(Iri::new("a")), Some(Iri::new("p")), None).len(),
            2
        );
        assert_eq!(
            i.matching(None, Some(Iri::new("p")), Some(Iri::new("b"))).len(),
            2
        );
        assert_eq!(
            i.matching(Some(Iri::new("a")), None, Some(Iri::new("b"))).len(),
            2
        );
    }

    #[test]
    fn ground_lookup() {
        let i = idx();
        assert!(i.contains(&triple("a", "p", "b")));
        assert!(!i.contains(&triple("a", "p", "zz")));
        assert_eq!(
            i.matching(Some(Iri::new("a")), Some(Iri::new("p")), Some(Iri::new("b"))),
            vec![triple("a", "p", "b")]
        );
    }

    #[test]
    fn cardinality_matches_matching_len() {
        let i = idx();
        let terms = [None, Some(Iri::new("a")), Some(Iri::new("p")), Some(Iri::new("b"))];
        for &s in &terms {
            for &p in &terms {
                for &o in &terms {
                    assert_eq!(i.cardinality(s, p, o), i.matching(s, p, o).len());
                }
            }
        }
    }

    #[test]
    fn empty_graph_index() {
        let i = GraphIndex::build(&Graph::new());
        assert!(i.is_empty());
        assert_eq!(i.matching(None, None, None).len(), 0);
    }
}
