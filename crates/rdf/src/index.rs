//! Triple-pattern indexes over a graph.
//!
//! [`GraphIndex`] materializes the six access paths a triple-pattern scan
//! can take (by subject, predicate, object, and each pair), so that the
//! indexed evaluation engine answers a pattern with bound positions in
//! time proportional to the number of matches rather than to `|G|`.
//!
//! Two additions serve the live-update store (`owql-store`):
//!
//! * [`TripleLookup`] abstracts the lookup surface the evaluation engine
//!   needs (`matching` / `cardinality` / `contains`), so the engine runs
//!   unmodified over any index-shaped backend;
//! * [`SnapshotIndex`] is a *delta-aware* lookup: an immutable
//!   `Arc`-shared base [`GraphIndex`] overlaid with a small set of added
//!   and deleted triples. Lookups merge base hits with the overlay, so a
//!   mutation costs `O(1)` index work instead of an `O(|G|)` rebuild, and
//!   many reader threads can hold snapshots while writers proceed.
//!
//! The reference evaluator deliberately does *not* use this module — it
//! scans the graph exactly as the paper's semantics is written — which is
//! what the `engine_ablation` benchmark measures.

use crate::dict::{IdRuns, IdView, TermDict};
use crate::graph::Graph;
use crate::term::{Iri, Triple};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The triple-pattern lookup surface the indexed evaluation engine
/// consumes. `None` in a position means "any value".
///
/// Implementors must answer consistently: `cardinality` equals
/// `matching(..).len()`, and `contains` agrees with a fully-ground
/// `matching`. (`SnapshotIndex` and `GraphIndex` are cross-checked by
/// tests below.)
pub trait TripleLookup {
    /// The triples matching a pattern with optionally bound positions.
    fn matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple>;

    /// Number of matches for the pattern (exact for both implementations
    /// in this crate; the join-order optimizer uses it as a cardinality
    /// estimate).
    fn cardinality(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize;

    /// Membership test for a fully ground triple.
    fn contains(&self, t: &Triple) -> bool;

    /// Number of triples visible through this lookup.
    fn len(&self) -> usize;

    /// `true` iff no triple is visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the visible triples as a [`Graph`].
    fn to_graph(&self) -> Graph {
        self.matching(None, None, None).into_iter().collect()
    }

    /// The id-encoded scan surface, if this backend can serve one
    /// (a term dictionary plus sorted id runs covering exactly the
    /// triples visible through this lookup). `None` keeps the engine on
    /// the term-at-a-time path.
    fn id_view(&self) -> Option<IdView<'_>> {
        None
    }
}

/// The dictionary + sorted-run state a [`GraphIndex`] optionally carries
/// to serve id scans.
#[derive(Clone, Debug)]
struct IdState {
    dict: Arc<TermDict>,
    runs: IdRuns,
}

/// A fully materialized secondary index over a [`Graph`].
///
/// Construction is `O(|G|)`; each lookup returns a slice of matching
/// triples. The index holds copies of the (12-byte) triples, trading
/// memory for pointer-chasing-free scans.
#[derive(Clone, Debug, Default)]
pub struct GraphIndex {
    all: Vec<Triple>,
    by_s: HashMap<Iri, Vec<Triple>>,
    by_p: HashMap<Iri, Vec<Triple>>,
    by_o: HashMap<Iri, Vec<Triple>>,
    by_sp: HashMap<(Iri, Iri), Vec<Triple>>,
    by_po: HashMap<(Iri, Iri), Vec<Triple>>,
    by_so: HashMap<(Iri, Iri), Vec<Triple>>,
    /// Id-encoded twin of `all`: dictionary + SPO/POS/OSP sorted runs.
    /// Bulk constructors always attach it; [`GraphIndex::default`] does
    /// not (attach one with [`GraphIndex::with_dict`]).
    ids: Option<IdState>,
}

impl GraphIndex {
    /// Builds the index for `graph`.
    pub fn build(graph: &Graph) -> Self {
        GraphIndex::from_triples(graph.iter().copied())
    }

    /// Builds the index from an iterator of (not necessarily distinct)
    /// triples, interning every term into a fresh private dictionary
    /// (ids = lexicographic ranks). Use
    /// [`GraphIndex::from_triples_with_dict`] to share a dictionary
    /// across indexes.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Self {
        GraphIndex::from_triples_with_dict(triples, Arc::new(TermDict::new()))
    }

    /// Builds the index from an iterator of triples, interning terms
    /// into `dict` (existing ids are reused; new terms are appended in
    /// lexicographic order).
    pub fn from_triples_with_dict(
        triples: impl IntoIterator<Item = Triple>,
        dict: Arc<TermDict>,
    ) -> Self {
        let mut all: Vec<Triple> = triples.into_iter().collect();
        all.sort();
        all.dedup();
        let mut idx = GraphIndex {
            all: Vec::with_capacity(all.len()),
            ..GraphIndex::default()
        };
        for t in all {
            idx.all.push(t);
            idx.index_entry(t);
        }
        let runs = IdRuns::build(&idx.all, &dict);
        idx.ids = Some(IdState { dict, runs });
        idx
    }

    /// Replaces this index's id state with one keyed by `dict`
    /// (re-encoding every triple). Used by `owql-store` to re-home an
    /// index built elsewhere (e.g. a compaction fold or a recovered
    /// segment) onto the store-wide dictionary.
    pub fn with_dict(mut self, dict: Arc<TermDict>) -> Self {
        let runs = IdRuns::build(&self.all, &dict);
        self.ids = Some(IdState { dict, runs });
        self
    }

    /// The dictionary this index's id runs are encoded with, if id
    /// state is attached.
    pub fn dict(&self) -> Option<&Arc<TermDict>> {
        self.ids.as_ref().map(|s| &s.dict)
    }

    /// The id-encoded sorted runs, if id state is attached.
    pub fn id_runs(&self) -> Option<&IdRuns> {
        self.ids.as_ref().map(|s| &s.runs)
    }

    fn index_entry(&mut self, t: Triple) {
        self.by_s.entry(t.s).or_default().push(t);
        self.by_p.entry(t.p).or_default().push(t);
        self.by_o.entry(t.o).or_default().push(t);
        self.by_sp.entry((t.s, t.p)).or_default().push(t);
        self.by_po.entry((t.p, t.o)).or_default().push(t);
        self.by_so.entry((t.s, t.o)).or_default().push(t);
    }

    /// Incrementally indexes one triple; returns `true` if it was new.
    ///
    /// Cost is `O(log n)` to keep `all` sorted plus the `O(n)` vector
    /// shift — intended for the *small* delta-overlay indexes maintained
    /// by `owql-store`, where `n` is bounded by the compaction threshold,
    /// not for bulk loads (use [`GraphIndex::build`]).
    pub fn insert(&mut self, t: Triple) -> bool {
        match self.all.binary_search(&t) {
            Ok(_) => false,
            Err(pos) => {
                self.all.insert(pos, t);
                self.index_entry(t);
                if let Some(ids) = &mut self.ids {
                    let row = [
                        ids.dict.intern(t.s),
                        ids.dict.intern(t.p),
                        ids.dict.intern(t.o),
                    ];
                    ids.runs.insert(row);
                }
                true
            }
        }
    }

    /// Removes one triple from every access path; returns `true` if it
    /// was present. Same cost profile as [`GraphIndex::insert`].
    pub fn remove(&mut self, t: &Triple) -> bool {
        match self.all.binary_search(t) {
            Err(_) => false,
            Ok(pos) => {
                self.all.remove(pos);
                fn unindex<K: std::hash::Hash + Eq>(
                    map: &mut HashMap<K, Vec<Triple>>,
                    key: K,
                    t: &Triple,
                ) {
                    if let Some(v) = map.get_mut(&key) {
                        v.retain(|x| x != t);
                        if v.is_empty() {
                            map.remove(&key);
                        }
                    }
                }
                unindex(&mut self.by_s, t.s, t);
                unindex(&mut self.by_p, t.p, t);
                unindex(&mut self.by_o, t.o, t);
                unindex(&mut self.by_sp, (t.s, t.p), t);
                unindex(&mut self.by_po, (t.p, t.o), t);
                unindex(&mut self.by_so, (t.s, t.o), t);
                if let Some(ids) = &mut self.ids {
                    // A present triple's terms are always interned.
                    if let Some(rows) = ids.dict.encode_all(std::slice::from_ref(t)) {
                        ids.runs.remove(rows[0]);
                    }
                }
                true
            }
        }
    }

    /// Number of indexed triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// `true` iff the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All triples, sorted.
    pub fn all(&self) -> &[Triple] {
        &self.all
    }

    /// Membership test for a fully ground triple.
    pub fn contains(&self, t: &Triple) -> bool {
        self.by_sp
            .get(&(t.s, t.p))
            .is_some_and(|v| v.iter().any(|x| x.o == t.o))
    }

    /// Returns the triples matching a pattern with optionally bound
    /// positions. `None` means "any value".
    ///
    /// ```
    /// use owql_rdf::{Graph, GraphIndex, Iri, Triple};
    /// let g: Graph = [Triple::new("a", "p", "b"), Triple::new("a", "q", "c")]
    ///     .into_iter().collect();
    /// let idx = GraphIndex::build(&g);
    /// assert_eq!(idx.matching(Some(Iri::new("a")), None, None).len(), 2);
    /// assert_eq!(idx.matching(None, Some(Iri::new("q")), None).len(), 1);
    /// ```
    pub fn matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple> {
        static EMPTY: Vec<Triple> = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple { s, p, o };
                if self.contains(&t) {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self.by_sp.get(&(s, p)).unwrap_or(&EMPTY).clone(),
            (None, Some(p), Some(o)) => self.by_po.get(&(p, o)).unwrap_or(&EMPTY).clone(),
            (Some(s), None, Some(o)) => self.by_so.get(&(s, o)).unwrap_or(&EMPTY).clone(),
            (Some(s), None, None) => self.by_s.get(&s).unwrap_or(&EMPTY).clone(),
            (None, Some(p), None) => self.by_p.get(&p).unwrap_or(&EMPTY).clone(),
            (None, None, Some(o)) => self.by_o.get(&o).unwrap_or(&EMPTY).clone(),
            (None, None, None) => self.all.clone(),
        }
    }

    /// Estimated number of matches for a pattern (exact for this
    /// implementation; used by the join-order optimizer as a cardinality
    /// estimate).
    pub fn cardinality(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize {
        static EMPTY: Vec<Triple> = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&Triple { s, p, o })),
            (Some(s), Some(p), None) => self.by_sp.get(&(s, p)).unwrap_or(&EMPTY).len(),
            (None, Some(p), Some(o)) => self.by_po.get(&(p, o)).unwrap_or(&EMPTY).len(),
            (Some(s), None, Some(o)) => self.by_so.get(&(s, o)).unwrap_or(&EMPTY).len(),
            (Some(s), None, None) => self.by_s.get(&s).unwrap_or(&EMPTY).len(),
            (None, Some(p), None) => self.by_p.get(&p).unwrap_or(&EMPTY).len(),
            (None, None, Some(o)) => self.by_o.get(&o).unwrap_or(&EMPTY).len(),
            (None, None, None) => self.all.len(),
        }
    }
}

impl TripleLookup for GraphIndex {
    fn matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple> {
        GraphIndex::matching(self, s, p, o)
    }

    fn cardinality(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize {
        GraphIndex::cardinality(self, s, p, o)
    }

    fn contains(&self, t: &Triple) -> bool {
        GraphIndex::contains(self, t)
    }

    fn len(&self) -> usize {
        GraphIndex::len(self)
    }

    fn id_view(&self) -> Option<IdView<'_>> {
        self.ids.as_ref().map(|s| IdView::plain(&s.dict, &s.runs))
    }
}

/// A delta-aware lookup: an immutable `Arc`-shared base [`GraphIndex`]
/// plus a small overlay of `adds` (triples not in the base) and `dels`
/// (base triples deleted since the base was built).
///
/// A `SnapshotIndex` is immutable and cheap to clone (three `Arc`
/// clones), so a writer can keep mutating its store while any number of
/// reader threads evaluate against earlier snapshots. Lookups merge
/// base hits (minus `dels`) with `adds` hits; both sides are index
/// lookups, so cost stays proportional to the number of matches.
///
/// Invariants (maintained by `owql-store`, debug-asserted here):
/// `adds ∩ base = ∅`, `dels ⊆ base`, and therefore `adds ∩ dels = ∅`.
#[derive(Clone, Debug)]
pub struct SnapshotIndex {
    base: Arc<GraphIndex>,
    adds: Arc<GraphIndex>,
    dels: Arc<HashSet<Triple>>,
}

impl SnapshotIndex {
    /// Wraps a base index and its overlay.
    pub fn new(base: Arc<GraphIndex>, adds: Arc<GraphIndex>, dels: Arc<HashSet<Triple>>) -> Self {
        debug_assert!(
            adds.all().iter().all(|t| !base.contains(t)),
            "adds must be disjoint from the base"
        );
        debug_assert!(
            dels.iter().all(|t| base.contains(t)),
            "dels must be a subset of the base"
        );
        SnapshotIndex { base, adds, dels }
    }

    /// A snapshot of a plain graph with an empty overlay.
    pub fn from_graph(graph: &Graph) -> Self {
        SnapshotIndex {
            base: Arc::new(GraphIndex::build(graph)),
            adds: Arc::new(GraphIndex::default()),
            dels: Arc::new(HashSet::new()),
        }
    }

    /// The shared base index.
    pub fn base(&self) -> &GraphIndex {
        &self.base
    }

    /// Number of overlay entries (`|adds| + |dels|`).
    pub fn delta_len(&self) -> usize {
        self.adds.len() + self.dels.len()
    }

    /// Folds the overlay into a fresh base index (the compaction step of
    /// `owql-store`): base triples minus `dels`, plus `adds`.
    pub fn compacted(&self) -> GraphIndex {
        GraphIndex::from_triples(
            self.base
                .all()
                .iter()
                .filter(|t| !self.dels.contains(t))
                .chain(self.adds.all().iter())
                .copied(),
        )
    }

    /// Number of deleted triples a pattern lookup must mask out.
    fn dels_matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize {
        if self.dels.is_empty() {
            return 0;
        }
        self.dels
            .iter()
            .filter(|t| {
                s.is_none_or(|s| t.s == s)
                    && p.is_none_or(|p| t.p == p)
                    && o.is_none_or(|o| t.o == o)
            })
            .count()
    }
}

impl TripleLookup for SnapshotIndex {
    fn matching(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> Vec<Triple> {
        let mut out = self.base.matching(s, p, o);
        if !self.dels.is_empty() {
            out.retain(|t| !self.dels.contains(t));
        }
        out.extend(self.adds.matching(s, p, o));
        out
    }

    fn cardinality(&self, s: Option<Iri>, p: Option<Iri>, o: Option<Iri>) -> usize {
        self.base.cardinality(s, p, o) - self.dels_matching(s, p, o)
            + self.adds.cardinality(s, p, o)
    }

    fn contains(&self, t: &Triple) -> bool {
        (self.base.contains(t) && !self.dels.contains(t)) || self.adds.contains(t)
    }

    fn len(&self) -> usize {
        self.base.len() - self.dels.len() + self.adds.len()
    }

    /// A merged id view exists only when base and overlay carry id
    /// state encoded by the *same* dictionary (the invariant
    /// `owql-store` maintains); otherwise the ids of the two run sets
    /// are not comparable and the engine must stay on the term path.
    fn id_view(&self) -> Option<IdView<'_>> {
        let base = self.base.ids.as_ref()?;
        let adds = self.adds.ids.as_ref()?;
        if !Arc::ptr_eq(&base.dict, &adds.dict) {
            return None;
        }
        Some(IdView {
            dict: &base.dict,
            base: &base.runs,
            adds: (!adds.runs.is_empty()).then_some(&adds.runs),
            dels: (!self.dels.is_empty()).then_some(&self.dels),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;
    use crate::term::triple;

    fn idx() -> GraphIndex {
        GraphIndex::build(&graph_from(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("d", "p", "b"),
        ]))
    }

    #[test]
    fn full_scan() {
        let i = idx();
        assert_eq!(i.len(), 4);
        assert_eq!(i.matching(None, None, None).len(), 4);
    }

    #[test]
    fn single_position_lookups() {
        let i = idx();
        assert_eq!(i.matching(Some(Iri::new("a")), None, None).len(), 3);
        assert_eq!(i.matching(None, Some(Iri::new("p")), None).len(), 3);
        assert_eq!(i.matching(None, None, Some(Iri::new("b"))).len(), 3);
        assert_eq!(i.matching(Some(Iri::new("zz")), None, None).len(), 0);
    }

    #[test]
    fn pair_lookups() {
        let i = idx();
        assert_eq!(
            i.matching(Some(Iri::new("a")), Some(Iri::new("p")), None)
                .len(),
            2
        );
        assert_eq!(
            i.matching(None, Some(Iri::new("p")), Some(Iri::new("b")))
                .len(),
            2
        );
        assert_eq!(
            i.matching(Some(Iri::new("a")), None, Some(Iri::new("b")))
                .len(),
            2
        );
    }

    #[test]
    fn ground_lookup() {
        let i = idx();
        assert!(i.contains(&triple("a", "p", "b")));
        assert!(!i.contains(&triple("a", "p", "zz")));
        assert_eq!(
            i.matching(
                Some(Iri::new("a")),
                Some(Iri::new("p")),
                Some(Iri::new("b"))
            ),
            vec![triple("a", "p", "b")]
        );
    }

    #[test]
    fn cardinality_matches_matching_len() {
        let i = idx();
        let terms = [
            None,
            Some(Iri::new("a")),
            Some(Iri::new("p")),
            Some(Iri::new("b")),
        ];
        for &s in &terms {
            for &p in &terms {
                for &o in &terms {
                    assert_eq!(i.cardinality(s, p, o), i.matching(s, p, o).len());
                }
            }
        }
    }

    #[test]
    fn empty_graph_index() {
        let i = GraphIndex::build(&Graph::new());
        assert!(i.is_empty());
        assert_eq!(i.matching(None, None, None).len(), 0);
    }

    /// Incremental insert/remove reaches exactly the state a fresh
    /// build would produce, across every access path.
    #[test]
    fn incremental_matches_rebuild() {
        let mut incremental = GraphIndex::default();
        let mut graph = Graph::new();
        let steps = [
            ("a", "p", "b", true),
            ("a", "p", "c", true),
            ("d", "p", "b", true),
            ("a", "p", "b", false), // duplicate insert
        ];
        for (s, p, o, fresh) in steps {
            assert_eq!(incremental.insert(triple(s, p, o)), fresh);
            graph.insert(triple(s, p, o));
        }
        assert!(incremental.remove(&triple("a", "p", "c")));
        assert!(!incremental.remove(&triple("a", "p", "c")));
        assert!(!incremental.remove(&triple("zz", "zz", "zz")));
        graph.remove(&triple("a", "p", "c"));

        let rebuilt = GraphIndex::build(&graph);
        assert_eq!(incremental.all(), rebuilt.all());
        let terms = [
            None,
            Some(Iri::new("a")),
            Some(Iri::new("p")),
            Some(Iri::new("b")),
        ];
        for &s in &terms {
            for &p in &terms {
                for &o in &terms {
                    let mut got = incremental.matching(s, p, o);
                    let mut want = rebuilt.matching(s, p, o);
                    got.sort();
                    want.sort();
                    assert_eq!(got, want);
                    assert_eq!(incremental.cardinality(s, p, o), want.len());
                }
            }
        }
    }

    /// Removing a triple fully cleans its access-path entries (no empty
    /// buckets linger to distort cardinalities).
    #[test]
    fn remove_cleans_all_paths() {
        let mut idx = GraphIndex::default();
        idx.insert(triple("a", "p", "b"));
        idx.remove(&triple("a", "p", "b"));
        assert!(idx.is_empty());
        assert_eq!(idx.cardinality(Some(Iri::new("a")), None, None), 0);
        assert_eq!(idx.matching(None, Some(Iri::new("p")), None).len(), 0);
    }

    mod snapshot_overlay {
        use super::*;
        use crate::index::{SnapshotIndex, TripleLookup};
        use std::collections::HashSet;
        use std::sync::Arc;

        /// An overlay with adds and dels answers every pattern exactly
        /// like a from-scratch index over the net graph.
        #[test]
        fn overlay_equals_net_graph() {
            let base = graph_from(&[("a", "p", "b"), ("a", "p", "c"), ("d", "q", "b")]);
            let adds = [triple("e", "p", "b"), triple("a", "q", "c")];
            let dels = [triple("a", "p", "c")];

            let snap = SnapshotIndex::new(
                Arc::new(GraphIndex::build(&base)),
                Arc::new(GraphIndex::from_triples(adds)),
                Arc::new(dels.iter().copied().collect::<HashSet<_>>()),
            );

            let mut net = base.clone();
            for t in adds {
                net.insert(t);
            }
            for t in &dels {
                net.remove(t);
            }
            let fresh = GraphIndex::build(&net);

            assert_eq!(TripleLookup::len(&snap), fresh.len());
            assert_eq!(snap.to_graph(), net);
            let terms = [
                None,
                Some(Iri::new("a")),
                Some(Iri::new("p")),
                Some(Iri::new("q")),
                Some(Iri::new("b")),
                Some(Iri::new("c")),
                Some(Iri::new("e")),
            ];
            for &s in &terms {
                for &p in &terms {
                    for &o in &terms {
                        let mut got = TripleLookup::matching(&snap, s, p, o);
                        let mut want = fresh.matching(s, p, o);
                        got.sort();
                        want.sort();
                        assert_eq!(got, want, "pattern ({s:?}, {p:?}, {o:?})");
                        assert_eq!(
                            TripleLookup::cardinality(&snap, s, p, o),
                            want.len(),
                            "cardinality ({s:?}, {p:?}, {o:?})"
                        );
                    }
                }
            }
            for t in net.iter() {
                assert!(TripleLookup::contains(&snap, t));
            }
            assert!(!TripleLookup::contains(&snap, &triple("a", "p", "c")));
        }

        /// Compaction folds the overlay into a fresh base equal to a
        /// from-scratch build.
        #[test]
        fn compacted_folds_overlay() {
            let base = graph_from(&[("a", "p", "b"), ("x", "y", "z")]);
            let snap = SnapshotIndex::new(
                Arc::new(GraphIndex::build(&base)),
                Arc::new(GraphIndex::from_triples([triple("n", "n", "n")])),
                Arc::new([triple("x", "y", "z")].into_iter().collect::<HashSet<_>>()),
            );
            let compacted = snap.compacted();
            assert_eq!(compacted.all(), GraphIndex::build(&snap.to_graph()).all());
            assert_eq!(compacted.len(), 2);
        }

        /// An empty overlay is transparent.
        #[test]
        fn empty_overlay_is_transparent() {
            let g = graph_from(&[("a", "p", "b")]);
            let snap = SnapshotIndex::from_graph(&g);
            assert_eq!(snap.delta_len(), 0);
            assert_eq!(TripleLookup::len(&snap), 1);
            assert_eq!(snap.to_graph(), g);
        }
    }
}
