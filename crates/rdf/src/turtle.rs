//! A Turtle-flavoured reader and writer.
//!
//! Supports the practical core of Turtle on the paper's IRI-only data
//! model:
//!
//! * `@prefix pre: <http://...> .` declarations and `pre:local` names,
//! * predicate lists `s p1 o1 ; p2 o2 .` and object lists
//!   `s p o1 , o2 .`,
//! * the `a` keyword for `rdf:type`,
//! * `<...>` IRIs, bare words, `#` comments.
//!
//! Literals and blank nodes are rejected with a clear error — the
//! paper's model (Section 2) excludes them. The writer groups triples
//! by subject and predicate, producing the abbreviated form; it
//! round-trips with the reader.

use crate::graph::Graph;
use crate::term::{Iri, Triple};
use std::collections::HashMap;
use std::fmt;

/// The IRI abbreviated by the Turtle keyword `a`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Error raised by the Turtle reader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurtleError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turtle: line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// A lexical token of the Turtle subset.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Term(String, /* angle-quoted */ bool),
    A,
    Dot,
    Semi,
    Comma,
    PrefixKeyword,
}

fn err(line: usize, message: impl Into<String>) -> TurtleError {
    TurtleError {
        line,
        message: message.into(),
    }
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, TurtleError> {
    let mut out = Vec::new();
    for (li, raw) in text.lines().enumerate() {
        let line_no = li + 1;
        let line = match raw.find('#') {
            Some(pos)
                if !raw[..pos].contains('<')
                    || raw[..pos].matches('<').count() == raw[..pos].matches('>').count() =>
            {
                &raw[..pos]
            }
            _ => raw,
        };
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                c if c.is_whitespace() => i += 1,
                '.' => {
                    out.push((line_no, Tok::Dot));
                    i += 1;
                }
                ';' => {
                    out.push((line_no, Tok::Semi));
                    i += 1;
                }
                ',' => {
                    out.push((line_no, Tok::Comma));
                    i += 1;
                }
                '"' => {
                    return Err(err(
                        line_no,
                        "literals are not part of the paper's data model",
                    ))
                }
                '_' if chars.get(i + 1) == Some(&':') => {
                    return Err(err(
                        line_no,
                        "blank nodes are not part of the paper's data model",
                    ))
                }
                '<' => {
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '>' {
                        j += 1;
                    }
                    if j == chars.len() {
                        return Err(err(line_no, "unterminated '<' IRI"));
                    }
                    out.push((line_no, Tok::Term(chars[i + 1..j].iter().collect(), true)));
                    i = j + 1;
                }
                '@' => {
                    let word: String = chars[i + 1..]
                        .iter()
                        .take_while(|c| c.is_alphabetic())
                        .collect();
                    if word == "prefix" {
                        out.push((line_no, Tok::PrefixKeyword));
                        i += 1 + word.len();
                    } else {
                        return Err(err(line_no, format!("unsupported directive @{word}")));
                    }
                }
                _ => {
                    let mut j = i;
                    while j < chars.len()
                        && !chars[j].is_whitespace()
                        && !".;,<>\"".contains(chars[j])
                    {
                        j += 1;
                    }
                    let word: String = chars[i..j].iter().collect();
                    if word == "a" {
                        out.push((line_no, Tok::A));
                    } else {
                        out.push((line_no, Tok::Term(word, false)));
                    }
                    i = j;
                }
            }
        }
    }
    Ok(out)
}

/// Expands `pre:local` through the prefix table; plain terms pass
/// through.
fn resolve(
    term: &str,
    quoted: bool,
    prefixes: &HashMap<String, String>,
    line: usize,
) -> Result<Iri, TurtleError> {
    // Angle-quoted IRIs are taken verbatim, colons and all.
    if quoted {
        return Ok(Iri::new(term));
    }
    if let Some(colon) = term.find(':') {
        let (pre, local) = term.split_at(colon);
        let local = &local[1..];
        // Absolute bare IRIs like http://... are left intact.
        if local.starts_with("//") {
            return Ok(Iri::new(term));
        }
        if let Some(base) = prefixes.get(pre) {
            return Ok(Iri::new(&format!("{base}{local}")));
        }
        return Err(err(line, format!("undeclared prefix {pre:?}")));
    }
    Ok(Iri::new(term))
}

/// Parses the Turtle subset into a graph.
pub fn parse(text: &str) -> Result<Graph, TurtleError> {
    let tokens = lex(text)?;
    let mut prefixes: HashMap<String, String> = HashMap::new();
    let mut graph = Graph::new();
    let mut i = 0usize;
    let term_at = |i: usize| -> Option<(usize, &String)> {
        match tokens.get(i) {
            Some((l, Tok::Term(t, _))) => Some((*l, t)),
            _ => None,
        }
    };
    while i < tokens.len() {
        let (line, tok) = &tokens[i];
        match tok {
            Tok::PrefixKeyword => {
                // @prefix pre: <base> .
                let Some((l1, pre)) = term_at(i + 1) else {
                    return Err(err(*line, "expected prefix name after @prefix"));
                };
                let pre = pre
                    .strip_suffix(':')
                    .ok_or_else(|| err(l1, "prefix name must end with ':'"))?
                    .to_owned();
                let Some((_, base)) = term_at(i + 2) else {
                    return Err(err(l1, "expected IRI after prefix name"));
                };
                if tokens.get(i + 3).map(|(_, t)| t) != Some(&Tok::Dot) {
                    return Err(err(l1, "expected '.' after @prefix declaration"));
                }
                prefixes.insert(pre, base.clone());
                i += 4;
            }
            Tok::Term(subject_text, subject_quoted) => {
                let subject = resolve(subject_text, *subject_quoted, &prefixes, *line)?;
                i += 1;
                // predicate-object list
                loop {
                    let (pline, predicate) = match tokens.get(i) {
                        Some((l, Tok::Term(t, q))) => (*l, resolve(t, *q, &prefixes, *l)?),
                        Some((l, Tok::A)) => (*l, Iri::new(RDF_TYPE)),
                        Some((l, t)) => {
                            return Err(err(*l, format!("expected predicate, found {t:?}")))
                        }
                        None => return Err(err(*line, "unexpected end of input in triple")),
                    };
                    i += 1;
                    // object list
                    loop {
                        let object = match tokens.get(i) {
                            Some((l, Tok::Term(t, q))) => resolve(t, *q, &prefixes, *l)?,
                            Some((l, t)) => {
                                return Err(err(*l, format!("expected object, found {t:?}")))
                            }
                            None => return Err(err(pline, "unexpected end of input in triple")),
                        };
                        graph.insert(Triple::new(subject, predicate, object));
                        i += 1;
                        match tokens.get(i) {
                            Some((_, Tok::Comma)) => i += 1,
                            _ => break,
                        }
                    }
                    match tokens.get(i) {
                        Some((_, Tok::Semi)) => i += 1,
                        Some((_, Tok::Dot)) => {
                            i += 1;
                            break;
                        }
                        Some((l, t)) => {
                            return Err(err(*l, format!("expected ';' ',' or '.', found {t:?}")))
                        }
                        None => return Err(err(pline, "missing terminating '.'")),
                    }
                }
            }
            Tok::A => return Err(err(*line, "'a' cannot start a statement")),
            other => return Err(err(*line, format!("unexpected token {other:?}"))),
        }
    }
    Ok(graph)
}

fn write_term(out: &mut String, iri: Iri) {
    if iri.as_str() == RDF_TYPE {
        out.push('a');
        return;
    }
    out.push('<');
    out.push_str(iri.as_str());
    out.push('>');
}

/// Serializes a graph in abbreviated Turtle (grouped by subject, then
/// predicate; deterministic order).
pub fn write(graph: &Graph) -> String {
    let triples = graph.iter_sorted();
    let mut out = String::new();
    let mut idx = 0;
    while idx < triples.len() {
        let s = triples[idx].s;
        write_term(&mut out, s);
        let mut first_pred = true;
        while idx < triples.len() && triples[idx].s == s {
            let p = triples[idx].p;
            if first_pred {
                out.push(' ');
                first_pred = false;
            } else {
                out.push_str(" ;\n    ");
            }
            write_term(&mut out, p);
            let mut first_obj = true;
            while idx < triples.len() && triples[idx].s == s && triples[idx].p == p {
                if first_obj {
                    out.push(' ');
                    first_obj = false;
                } else {
                    out.push_str(", ");
                }
                write_term(&mut out, triples[idx].o);
                idx += 1;
            }
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    #[test]
    fn parses_basic_triple() {
        let g = parse("<a> <b> <c> .").unwrap();
        assert_eq!(g, graph_from(&[("a", "b", "c")]));
    }

    #[test]
    fn parses_predicate_and_object_lists() {
        let g = parse("<s> <p> <o1>, <o2> ; <q> <o3> .").unwrap();
        assert_eq!(
            g,
            graph_from(&[("s", "p", "o1"), ("s", "p", "o2"), ("s", "q", "o3")])
        );
    }

    #[test]
    fn parses_prefixes() {
        let text = "@prefix ex: <http://example.org/> .\nex:alice ex:knows ex:bob .";
        let g = parse(text).unwrap();
        assert!(g.contains(&Triple::new(
            "http://example.org/alice",
            "http://example.org/knows",
            "http://example.org/bob"
        )));
    }

    #[test]
    fn parses_a_keyword() {
        let g = parse("<alice> a <Person> .").unwrap();
        assert!(g.contains(&Triple::new("alice", RDF_TYPE, "Person")));
    }

    #[test]
    fn absolute_iris_bypass_prefix_resolution() {
        // Angle-quoted absolute IRIs are never prefix-resolved, even
        // though they contain a colon.
        let g = parse("<s> <p> <http://example.org/x> .").unwrap();
        assert!(g.contains(&Triple::new("s", "p", "http://example.org/x")));
    }

    #[test]
    fn comments_are_ignored() {
        let g = parse("# heading\n<a> <b> <c> . # trailing\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn rejects_literals_and_blank_nodes() {
        let e = parse("<s> <p> \"hello\" .").unwrap_err();
        assert!(e.message.contains("literals"));
        let e = parse("_:b <p> <o> .").unwrap_err();
        assert!(e.message.contains("blank"));
    }

    #[test]
    fn rejects_undeclared_prefix() {
        let e = parse("nope:x <p> <o> .").unwrap_err();
        assert!(e.message.contains("undeclared prefix"));
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse("<a> <b> <c>").is_err());
        assert!(parse("<a> <b> .").is_err());
    }

    #[test]
    fn error_reports_line() {
        let e = parse("<a> <b> <c> .\n<d> ;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn writer_groups_and_roundtrips() {
        let g = graph_from(&[
            ("s", "p", "o1"),
            ("s", "p", "o2"),
            ("s", "q", "o3"),
            ("t", "p", "o1"),
        ]);
        let text = write(&g);
        assert!(text.contains(", "));
        assert!(text.contains(";"));
        assert_eq!(parse(&text).unwrap(), g);
    }

    #[test]
    fn writer_emits_a_for_rdf_type() {
        let g: Graph = [Triple::new("alice", RDF_TYPE, "Person")]
            .into_iter()
            .collect();
        let text = write(&g);
        assert!(text.contains("<alice> a <Person>"));
        assert_eq!(parse(&text).unwrap(), g);
    }

    #[test]
    fn paper_figures_roundtrip_through_turtle() {
        for g in [
            crate::datasets::figure_1(),
            crate::datasets::figure_2_g2(),
            crate::datasets::figure_3(),
        ] {
            assert_eq!(parse(&write(&g)).unwrap(), g);
        }
    }

    #[test]
    fn random_graphs_roundtrip() {
        for seed in 0..10u64 {
            let g = crate::generate::uniform(60, 8, 4, 8, seed);
            assert_eq!(parse(&write(&g)).unwrap(), g, "seed {seed}");
        }
    }
}
