//! A fast, non-cryptographic hasher for interned-handle keys.
//!
//! The engine's hot hash collections key on small fixed-size values —
//! interned [`crate::Iri`] handles, `(Variable, Iri)` binding lists,
//! id-encoded triples. SipHash's DoS resistance buys nothing there
//! (keys are dense interner handles, not attacker-controlled strings)
//! and costs a large constant per lookup, which the columnar result
//! decode pays once per answer. This multiply-rotate hash (the classic
//! "Fx" scheme) folds each word in a few cycles.
//!
//! Not for untrusted input: collisions are trivial to construct.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate word folder (64-bit Fx variant).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// `2^64 / φ`, the usual odd multiplier.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some((chunk, rest)) = bytes.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hashes_are_stable_and_spread() {
        let b = FxBuildHasher::default();
        let h1 = b.hash_one([1u64, 2, 3]);
        let h2 = b.hash_one([1u64, 2, 3]);
        let h3 = b.hash_one([1u64, 2, 4]);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn byte_tail_is_hashed() {
        let b = FxBuildHasher::default();
        assert_ne!(b.hash_one("ab"), b.hash_one("ac"));
        assert_ne!(b.hash_one("abcdefghi"), b.hash_one("abcdefghj"));
    }
}
