//! Finite RDF graphs as sets of triples.
//!
//! A [`Graph`] is the paper's "RDF graph": a finite subset of `I × I × I`
//! (Section 2). The type is a thin wrapper over a hash set with the set
//! algebra needed throughout the paper — union, containment (`G₁ ⊆ G₂`,
//! the premise of monotonicity notions), and the active-domain helper
//! `I(G)` (the set of IRIs mentioned in `G`, used e.g. by Lemma G.2's
//! disjointness conditions).

use crate::term::{Iri, Triple};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A finite set of RDF triples.
///
/// ```
/// use owql_rdf::{Graph, Triple};
/// let mut g = Graph::new();
/// g.insert(Triple::new("Peter_Sunde", "founder", "The_Pirate_Bay"));
/// assert_eq!(g.len(), 1);
/// assert!(g.contains(&Triple::new("Peter_Sunde", "founder", "The_Pirate_Bay")));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    triples: HashSet<Triple>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with capacity for `n` triples.
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            triples: HashSet::with_capacity(n),
        }
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        self.triples.insert(t)
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        self.triples.remove(t)
    }

    /// Tests membership of a triple.
    pub fn contains(&self, t: &Triple) -> bool {
        self.triples.contains(t)
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` iff the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterates over the triples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> + '_ {
        self.triples.iter()
    }

    /// Returns the triples sorted lexicographically (deterministic output).
    pub fn iter_sorted(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.triples.iter().copied().collect();
        v.sort();
        v
    }

    /// `G₁ ⊆ G₂`: every triple of `self` is in `other`.
    ///
    /// This is the premise of (weak) monotonicity (Definitions 3.2 and
    /// 6.2 of the paper).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.triples.is_subset(&other.triples)
    }

    /// Set union `G₁ ∪ G₂` producing a new graph.
    pub fn union(&self, other: &Graph) -> Graph {
        let mut g = self.clone();
        g.extend(other.iter().copied());
        g
    }

    /// Adds all triples of `other` into `self`.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        self.triples.extend(triples);
    }

    /// `I(G)`: the set of all IRIs mentioned in the graph, sorted.
    pub fn iris(&self) -> BTreeSet<Iri> {
        let mut set = BTreeSet::new();
        for t in self.iter() {
            set.insert(t.s);
            set.insert(t.p);
            set.insert(t.o);
        }
        set
    }

    /// `true` iff `self` and `other` mention no common IRI.
    ///
    /// The combination lemma (Lemma H.1) and the disjointness lemma
    /// (Lemma G.2) of the paper require vocabulary-disjoint graphs.
    pub fn iris_disjoint_from(&self, other: &Graph) -> bool {
        let mine = self.iris();
        other.iris().is_disjoint(&mine)
    }

    /// All subsets of `self` (as graphs), smallest first.
    ///
    /// Used by the bounded-exhaustive monotonicity checkers; only
    /// sensible for very small graphs (`len() <= ~16`).
    pub fn subgraphs(&self) -> Vec<Graph> {
        let triples = self.iter_sorted();
        assert!(
            triples.len() <= 20,
            "refusing to enumerate 2^{} subgraphs",
            triples.len()
        );
        let mut out = Vec::with_capacity(1 << triples.len());
        for mask in 0u32..(1u32 << triples.len()) {
            let mut g = Graph::new();
            for (i, t) in triples.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    g.insert(*t);
                }
            }
            out.push(g);
        }
        out.sort_by_key(|g| g.len());
        out
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        self.triples.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = std::collections::hash_set::Iter<'a, Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph {{")?;
        for t in self.iter_sorted() {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

/// Builds a graph from `(s, p, o)` string triples.
///
/// ```
/// use owql_rdf::graph::graph_from;
/// let g = graph_from(&[("a", "b", "c"), ("a", "b", "d")]);
/// assert_eq!(g.len(), 2);
/// ```
pub fn graph_from(triples: &[(&str, &str, &str)]) -> Graph {
    triples
        .iter()
        .map(|&(s, p, o)| Triple::new(s, p, o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::triple;

    fn sample() -> Graph {
        graph_from(&[("a", "p", "b"), ("b", "p", "c"), ("a", "q", "c")])
    }

    #[test]
    fn insert_and_contains() {
        let mut g = Graph::new();
        assert!(g.insert(triple("x", "y", "z")));
        assert!(!g.insert(triple("x", "y", "z")));
        assert!(g.contains(&triple("x", "y", "z")));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn remove_works() {
        let mut g = sample();
        assert!(g.remove(&triple("a", "p", "b")));
        assert!(!g.remove(&triple("a", "p", "b")));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn subgraph_relation() {
        let g = sample();
        let mut h = g.clone();
        h.insert(triple("z", "z", "z"));
        assert!(g.is_subgraph_of(&h));
        assert!(!h.is_subgraph_of(&g));
        assert!(g.is_subgraph_of(&g));
        assert!(Graph::new().is_subgraph_of(&g));
    }

    #[test]
    fn union_is_set_union() {
        let g = sample();
        let h = graph_from(&[("a", "p", "b"), ("z", "z", "z")]);
        let u = g.union(&h);
        assert_eq!(u.len(), 4);
        assert!(g.is_subgraph_of(&u) && h.is_subgraph_of(&u));
    }

    #[test]
    fn iris_collects_all_positions() {
        let g = graph_from(&[("s1", "p1", "o1")]);
        let iris: Vec<&str> = g.iris().into_iter().map(|i| i.as_str()).collect();
        assert_eq!(iris, vec!["o1", "p1", "s1"]);
    }

    #[test]
    fn iri_disjointness() {
        let g = graph_from(&[("a", "b", "c")]);
        let h = graph_from(&[("x", "y", "z")]);
        let k = graph_from(&[("x", "y", "a")]);
        assert!(g.iris_disjoint_from(&h));
        assert!(!g.iris_disjoint_from(&k));
    }

    #[test]
    fn subgraph_enumeration() {
        let g = graph_from(&[("a", "p", "b"), ("b", "p", "c")]);
        let subs = g.subgraphs();
        assert_eq!(subs.len(), 4);
        assert!(subs[0].is_empty());
        assert_eq!(subs[3], g);
        // Every enumerated graph is a subgraph.
        assert!(subs.iter().all(|s| s.is_subgraph_of(&g)));
    }

    #[test]
    fn sorted_iteration_is_deterministic() {
        let g = sample();
        assert_eq!(g.iter_sorted(), g.iter_sorted());
        let v = g.iter_sorted();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_iterator_dedups() {
        let g: Graph = vec![triple("a", "b", "c"), triple("a", "b", "c")]
            .into_iter()
            .collect();
        assert_eq!(g.len(), 1);
    }
}
