//! Seeded synthetic workload generators.
//!
//! The paper evaluates no concrete datasets (it is a theory paper), but
//! its motivating scenarios are Web-style graphs with *partial*
//! information: people whose email may be missing (Figure 2),
//! organizations with founders and supporters (Figure 1), professors and
//! universities (Figure 3). The generators here produce scalable versions
//! of exactly those shapes, so the benchmark harness can measure the
//! engines and the OPT-vs-NS comparison on data with the same
//! characteristics. All generators are deterministic in their seed.

use crate::graph::Graph;
use crate::term::{Iri, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random graph: `n_triples` triples drawn uniformly over
/// disjoint subject/predicate/object pools.
///
/// Duplicate draws are retried, so the result has exactly
/// `min(n_triples, pool product)` triples.
pub fn uniform(
    n_triples: usize,
    n_subjects: usize,
    n_predicates: usize,
    n_objects: usize,
    seed: u64,
) -> Graph {
    assert!(n_subjects > 0 && n_predicates > 0 && n_objects > 0);
    let cap = n_subjects * n_predicates * n_objects;
    let target = n_triples.min(cap);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(target);
    while g.len() < target {
        let s = Iri::new(&format!("s{}", rng.gen_range(0..n_subjects)));
        let p = Iri::new(&format!("p{}", rng.gen_range(0..n_predicates)));
        let o = Iri::new(&format!("o{}", rng.gen_range(0..n_objects)));
        g.insert(Triple { s, p, o });
    }
    g
}

/// A star: `center` linked to `n` leaves through `pred`.
pub fn star(center: &str, pred: &str, n: usize) -> Graph {
    (0..n)
        .map(|i| Triple::new(center, pred, format!("leaf{i}").as_str()))
        .collect()
}

/// A chain `v0 -pred-> v1 -pred-> ... -> vn`.
pub fn chain(pred: &str, n: usize) -> Graph {
    (0..n)
        .map(|i| {
            Triple::new(
                format!("v{i}").as_str(),
                pred,
                format!("v{}", i + 1).as_str(),
            )
        })
        .collect()
}

/// Options for [`social_network`].
#[derive(Clone, Copy, Debug)]
pub struct SocialOptions {
    /// Number of people.
    pub people: usize,
    /// Average number of `follows` edges per person.
    pub avg_follows: usize,
    /// Probability that a person has an `email` triple — the *optional*
    /// information driving OPT/NS behaviour.
    pub email_probability: f64,
    /// Probability that a person has a `was_born_in` triple.
    pub birthplace_probability: f64,
}

impl Default for SocialOptions {
    fn default() -> Self {
        SocialOptions {
            people: 100,
            avg_follows: 4,
            email_probability: 0.6,
            birthplace_probability: 0.8,
        }
    }
}

/// Figure-2-flavoured social graph: people with names, partial emails,
/// partial birthplaces, and follow edges.
///
/// Country of birth is one of three IRIs so that selective FILTERs (e.g.
/// `was_born_in Chile`) return about a third of the people.
pub fn social_network(opts: SocialOptions, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let countries = ["Chile", "Belgium", "Sweden"];
    let mut g = Graph::new();
    for i in 0..opts.people {
        let person = Iri::new(&format!("person{i}"));
        g.insert(Triple::new(
            person,
            Iri::new("name"),
            Iri::new(&format!("Name_{i}")),
        ));
        if rng.gen_bool(opts.email_probability) {
            g.insert(Triple::new(
                person,
                Iri::new("email"),
                Iri::new(&format!("person{i}@example.org")),
            ));
        }
        if rng.gen_bool(opts.birthplace_probability) {
            let c = countries[rng.gen_range(0..countries.len())];
            g.insert(Triple::new(person, Iri::new("was_born_in"), Iri::new(c)));
        }
        for _ in 0..opts.avg_follows {
            let j = rng.gen_range(0..opts.people);
            if j != i {
                g.insert(Triple::new(
                    person,
                    Iri::new("follows"),
                    Iri::new(&format!("person{j}")),
                ));
            }
        }
    }
    g
}

/// Options for [`university`].
#[derive(Clone, Copy, Debug)]
pub struct UniversityOptions {
    /// Number of universities.
    pub universities: usize,
    /// Professors per university.
    pub professors_per_university: usize,
    /// Probability that a professor has an email (optional info).
    pub email_probability: f64,
    /// Probability that a professor holds a second affiliation.
    pub second_affiliation_probability: f64,
}

impl Default for UniversityOptions {
    fn default() -> Self {
        UniversityOptions {
            universities: 5,
            professors_per_university: 20,
            email_probability: 0.5,
            second_affiliation_probability: 0.2,
        }
    }
}

/// Figure-3-flavoured university graph: professors with `name`,
/// `works_at` (possibly twice), and optional `email` — the input shape of
/// the paper's CONSTRUCT example (Example 6.1).
pub fn university(opts: UniversityOptions, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let mut prof_id = 0usize;
    for u in 0..opts.universities {
        let uni = Iri::new(&format!("University_{u}"));
        for _ in 0..opts.professors_per_university {
            let prof = Iri::new(&format!("prof_{prof_id:04}"));
            g.insert(Triple::new(
                prof,
                Iri::new("name"),
                Iri::new(&format!("ProfName_{prof_id}")),
            ));
            g.insert(Triple::new(prof, Iri::new("works_at"), uni));
            if rng.gen_bool(opts.second_affiliation_probability) {
                let u2 = rng.gen_range(0..opts.universities);
                g.insert(Triple::new(
                    prof,
                    Iri::new("works_at"),
                    Iri::new(&format!("University_{u2}")),
                ));
            }
            if rng.gen_bool(opts.email_probability) {
                g.insert(Triple::new(
                    prof,
                    Iri::new("email"),
                    Iri::new(&format!("prof{prof_id}@uni.edu")),
                ));
            }
            prof_id += 1;
        }
    }
    g
}

/// Figure-1-flavoured organizations graph: `orgs` organizations, each
/// with founders and supporters drawn from a pool of `people`, a subset
/// of organizations standing for `sharing_rights`.
pub fn organizations(orgs: usize, people: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    g.insert(Triple::new("founder", "sub_property", "supporter"));
    for o in 0..orgs {
        let org = Iri::new(&format!("org{o}"));
        if rng.gen_bool(0.5) {
            g.insert(Triple::new(
                org,
                Iri::new("stands_for"),
                Iri::new("sharing_rights"),
            ));
        }
        let founders = rng.gen_range(1..4usize);
        for _ in 0..founders {
            let p = rng.gen_range(0..people);
            g.insert(Triple::new(
                Iri::new(&format!("p{p}")),
                Iri::new("founder"),
                org,
            ));
        }
        let supporters = rng.gen_range(0..6usize);
        for _ in 0..supporters {
            let p = rng.gen_range(0..people);
            g.insert(Triple::new(
                Iri::new(&format!("p{p}")),
                Iri::new("supporter"),
                org,
            ));
        }
    }
    g
}

/// Draws a random subgraph containing each triple of `g` independently
/// with probability `keep`. Useful for building `G₁ ⊆ G₂` pairs for the
/// monotonicity checkers.
pub fn random_subgraph(g: &Graph, keep: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sorted = g.iter_sorted();
    sorted.retain(|_| rng.gen_bool(keep));
    sorted.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_sized() {
        let a = uniform(50, 10, 3, 10, 7);
        let b = uniform(50, 10, 3, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn uniform_respects_pool_cap() {
        let g = uniform(1000, 2, 2, 2, 1);
        assert_eq!(g.len(), 8);
    }

    #[test]
    fn star_and_chain_shapes() {
        let s = star("hub", "spoke", 5);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|t| t.s.as_str() == "hub"));
        let c = chain("next", 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn social_network_has_names_for_everyone() {
        let g = social_network(
            SocialOptions {
                people: 20,
                ..Default::default()
            },
            3,
        );
        let names = g.iter().filter(|t| t.p.as_str() == "name").count();
        assert_eq!(names, 20);
        // emails are partial
        let emails = g.iter().filter(|t| t.p.as_str() == "email").count();
        assert!(emails < 20);
    }

    #[test]
    fn university_every_prof_works_somewhere() {
        let g = university(UniversityOptions::default(), 11);
        let profs = 5 * 20;
        let works = g.iter().filter(|t| t.p.as_str() == "works_at").count();
        assert!(works >= profs);
        let names = g.iter().filter(|t| t.p.as_str() == "name").count();
        assert_eq!(names, profs);
    }

    #[test]
    fn organizations_mentions_subproperty() {
        let g = organizations(10, 30, 5);
        assert!(g.contains(&Triple::new("founder", "sub_property", "supporter")));
    }

    #[test]
    fn random_subgraph_is_subgraph() {
        let g = uniform(100, 10, 4, 10, 9);
        let h = random_subgraph(&g, 0.5, 10);
        assert!(h.is_subgraph_of(&g));
        assert!(h.len() < g.len());
        assert_eq!(random_subgraph(&g, 0.5, 10), h);
    }
}
