//! # owql-rdf
//!
//! The RDF substrate of the OWQL project: an implementation of the data
//! model of Arenas & Ugarte, *"Designing a Query Language for RDF:
//! Marrying Open and Closed Worlds"* (PODS 2016), Section 2.
//!
//! Following the paper, an RDF **triple** is an element of `I × I × I`
//! where `I` is an infinite set of IRIs, and an RDF **graph** is a finite
//! set of triples. Constant values and existential (blank) nodes are
//! intentionally *not* modelled — the paper disallows them because none of
//! its results are affected by their presence. Also following the paper,
//! every string may be used as an IRI.
//!
//! The crate provides:
//!
//! * [`Iri`] — globally interned identifiers with `O(1)` equality/hash,
//! * [`Triple`] — a subject/predicate/object record,
//! * [`Graph`] — a finite set of triples with set-algebra helpers,
//! * [`index::GraphIndex`] — SPO/POS/OSP indexes for fast pattern matching,
//! * [`ntriples`] — a line-oriented reader/writer for an N-Triples-like
//!   exchange format,
//! * [`generate`] — seeded synthetic workload generators used by the
//!   benchmark harness,
//! * [`datasets`] — the concrete graphs of Figures 1–3 of the paper.

pub mod datasets;
pub mod dict;
pub mod fx;
pub mod generate;
pub mod graph;
pub mod index;
pub mod ntriples;
pub mod shard;
pub mod stats;
pub mod term;
pub mod turtle;

pub use dict::{IdRuns, IdView, RunOrder, TermDict, TermId, NO_TERM};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use graph::Graph;
pub use index::{GraphIndex, SnapshotIndex, TripleLookup};
pub use shard::{shard_of, shard_rows};
pub use term::{Iri, Triple};
