//! A line-oriented exchange format for graphs.
//!
//! Two syntaxes are accepted, one per line, blank lines and `#` comments
//! ignored:
//!
//! * **Angle form** (N-Triples flavoured): `<s> <p> <o> .`
//! * **Bare form**: `s p o .` where a term is any run of
//!   non-whitespace characters other than `<`, `>`, `.` — convenient for
//!   the paper's readable string IRIs.
//!
//! The writer emits the angle form sorted lexicographically so output is
//! canonical: `parse(write(g)) == g` for every graph.

use crate::graph::Graph;
use crate::term::{Iri, Triple};
use std::fmt;

/// Error raised while parsing the exchange format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a single term starting at `input`, returning the term text and
/// the rest of the line.
fn parse_term(input: &str, line: usize) -> Result<(&str, &str), ParseError> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('<') {
        let end = rest
            .find('>')
            .ok_or_else(|| err(line, "unterminated '<' term"))?;
        if rest[..end].is_empty() {
            return Err(err(line, "empty IRI '<>'"));
        }
        Ok((&rest[..end], &rest[end + 1..]))
    } else {
        let end = input
            .find(|c: char| c.is_whitespace() || c == '>')
            .unwrap_or(input.len());
        let term = &input[..end];
        // A trailing '.' terminator may be glued to the bare term.
        let term = term.strip_suffix('.').unwrap_or(term);
        if term.is_empty() {
            return Err(err(line, "expected a term"));
        }
        if term.contains('<') || term.contains('>') {
            return Err(err(line, format!("malformed term {term:?}")));
        }
        Ok((term, &input[end.min(input.len())..]))
    }
}

/// Parses the exchange format into a [`Graph`].
///
/// ```
/// use owql_rdf::ntriples::parse;
/// let g = parse("<a> <founder> <b> .\nx supporter y .").unwrap();
/// assert_eq!(g.len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, rest) = parse_term(line, line_no)?;
        let (p, rest) = parse_term(rest, line_no)?;
        let (o, rest) = parse_term(rest, line_no)?;
        let tail = rest.trim();
        if !(tail.is_empty() || tail == ".") {
            return Err(err(line_no, format!("unexpected trailing input {tail:?}")));
        }
        graph.insert(Triple::new(s, p, o));
    }
    Ok(graph)
}

fn write_term(out: &mut String, iri: Iri) {
    out.push('<');
    out.push_str(iri.as_str());
    out.push('>');
}

/// Serializes a graph in canonical (sorted) angle form.
///
/// ```
/// use owql_rdf::{graph::graph_from, ntriples};
/// let g = graph_from(&[("b", "p", "c"), ("a", "p", "b")]);
/// let text = ntriples::write(&g);
/// assert_eq!(text, "<a> <p> <b> .\n<b> <p> <c> .\n");
/// assert_eq!(ntriples::parse(&text).unwrap(), g);
/// ```
pub fn write(graph: &Graph) -> String {
    let mut out = String::with_capacity(graph.len() * 24);
    for t in graph.iter_sorted() {
        write_term(&mut out, t.s);
        out.push(' ');
        write_term(&mut out, t.p);
        out.push(' ');
        write_term(&mut out, t.o);
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    #[test]
    fn parse_angle_form() {
        let g = parse("<a> <b> <c> .").unwrap();
        assert_eq!(g, graph_from(&[("a", "b", "c")]));
    }

    #[test]
    fn parse_bare_form() {
        let g = parse("Peter_Sunde founder The_Pirate_Bay .").unwrap();
        assert_eq!(
            g,
            graph_from(&[("Peter_Sunde", "founder", "The_Pirate_Bay")])
        );
    }

    #[test]
    fn parse_bare_form_without_dot() {
        let g = parse("a b c").unwrap();
        assert_eq!(g, graph_from(&[("a", "b", "c")]));
    }

    #[test]
    fn parse_mixed_and_comments() {
        let text = "# a comment\n\n<a> <b> <c> .\n x y z .\n";
        let g = parse(text).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parse_rejects_unterminated_iri() {
        let e = parse("<a <b> <c> .").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn parse_rejects_missing_term() {
        assert!(parse("<a> <b>").is_err());
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("<a> <b> <c> . extra").is_err());
    }

    #[test]
    fn parse_rejects_empty_iri() {
        assert!(parse("<> <b> <c> .").is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let e = parse("ok ok ok .\n<bad").unwrap_err();
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn roundtrip_canonical() {
        let g = graph_from(&[("a", "p", "b"), ("b", "q", "c"), ("c c", "p", "d")]);
        let text = write(&g);
        assert_eq!(parse(&text).unwrap(), g);
        // Canonical: re-serialization is identical.
        assert_eq!(write(&parse(&text).unwrap()), text);
    }

    #[test]
    fn empty_graph_roundtrip() {
        assert_eq!(write(&Graph::new()), "");
        assert_eq!(parse("").unwrap(), Graph::new());
    }
}
