//! The concrete RDF graphs appearing in the paper's figures.
//!
//! * [`figure_1`] — the Pirate Bay founders/supporters graph (Figure 1,
//!   used by Examples 2.1 and 2.2),
//! * [`figure_2_g1`] / [`figure_2_g2`] — the professor graphs `G₁ ⊆ G₂`
//!   (Figure 2, used by Examples 3.1 and 3.3),
//! * [`figure_3`] — the professors/universities graph (Figure 3, used by
//!   Example 6.1),
//! * [`figure_4_expected`] — the output graph of the CONSTRUCT query of
//!   Example 6.1 (Figure 4), used as the expected value in tests.

use crate::graph::{graph_from, Graph};

/// Figure 1: founders and supporters of organizations.
///
/// The exact six triples from the table in Example 2.1.
pub fn figure_1() -> Graph {
    graph_from(&[
        ("Gottfrid_Svartholm", "founder", "The_Pirate_Bay"),
        ("Fredrik_Neij", "founder", "The_Pirate_Bay"),
        ("Peter_Sunde", "founder", "The_Pirate_Bay"),
        ("founder", "sub_property", "supporter"),
        ("The_Pirate_Bay", "stands_for", "sharing_rights"),
        ("Carl_Lundström", "supporter", "The_Pirate_Bay"),
    ])
}

/// Figure 2, left graph `G₁`.
///
/// Professors with names, emails, and employers, plus Juan who was born
/// in Chile but has no email yet.
pub fn figure_2_g1() -> Graph {
    graph_from(&[
        ("prof_01", "name", "Cristian"),
        ("prof_02", "name", "Denis"),
        ("prof_01", "email", "cris@puc.cl"),
        ("prof_01", "works_at", "PUC Chile"),
        ("prof_02", "works_at", "U Oxford"),
        ("Juan", "was_born_in", "Chile"),
    ])
}

/// Figure 2, right graph `G₂ ⊇ G₁`: `G₁` extended with Juan's email.
pub fn figure_2_g2() -> Graph {
    let mut g = figure_2_g1();
    g.insert(crate::term::Triple::new("Juan", "email", "juan@puc.cl"));
    g
}

/// Figure 3: information about professors and universities, the input of
/// the CONSTRUCT query of Example 6.1.
pub fn figure_3() -> Graph {
    graph_from(&[
        ("prof_01", "name", "Cristian"),
        ("prof_02", "name", "Denis"),
        ("prof_01", "email", "cris@puc.cl"),
        ("prof_01", "works_at", "U_Oxford"),
        ("prof_01", "works_at", "PUC_Chile"),
        ("prof_02", "works_at", "PUC_Chile"),
        ("Juan", "was_born_in", "Chile"),
        ("Juan", "email", "juan@puc.cl"),
    ])
}

/// Figure 4: the RDF graph produced by evaluating the CONSTRUCT query of
/// Example 6.1 over [`figure_3`].
pub fn figure_4_expected() -> Graph {
    graph_from(&[
        ("Denis", "affiliated_to", "PUC_Chile"),
        ("Cristian", "affiliated_to", "U_Oxford"),
        ("Cristian", "affiliated_to", "PUC_Chile"),
        ("Cristian", "email", "cris@puc.cl"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_has_six_triples() {
        assert_eq!(figure_1().len(), 6);
    }

    #[test]
    fn figure_2_graphs_nest() {
        let g1 = figure_2_g1();
        let g2 = figure_2_g2();
        assert!(g1.is_subgraph_of(&g2));
        assert_eq!(g2.len(), g1.len() + 1);
    }

    #[test]
    fn figure_3_mentions_both_professors() {
        let iris = figure_3().iris();
        assert!(iris.contains(&crate::term::Iri::new("prof_01")));
        assert!(iris.contains(&crate::term::Iri::new("prof_02")));
    }

    #[test]
    fn figure_4_has_four_triples() {
        assert_eq!(figure_4_expected().len(), 4);
    }
}
