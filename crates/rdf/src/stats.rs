//! Descriptive statistics over a graph.
//!
//! Query engines live and die by cardinality knowledge; [`GraphStats`]
//! summarizes a graph (distinct subjects/predicates/objects, predicate
//! histogram, degree distribution) and offers the selectivity
//! estimates a cost-based planner wants. The experiment driver also
//! prints these summaries so workload shapes are visible next to
//! measurements.

use crate::graph::Graph;
use crate::term::Iri;
use std::collections::HashMap;
use std::fmt;

/// Summary statistics of a graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Total number of triples.
    pub triples: usize,
    /// Number of distinct subjects.
    pub distinct_subjects: usize,
    /// Number of distinct predicates.
    pub distinct_predicates: usize,
    /// Number of distinct objects.
    pub distinct_objects: usize,
    /// Triple count per predicate, sorted descending.
    pub predicate_histogram: Vec<(Iri, usize)>,
    /// Maximum out-degree (triples sharing one subject).
    pub max_out_degree: usize,
    /// Mean out-degree over subjects.
    pub mean_out_degree: f64,
}

impl GraphStats {
    /// Computes the statistics in one pass over the graph.
    pub fn of(graph: &Graph) -> GraphStats {
        let mut subjects: HashMap<Iri, usize> = HashMap::new();
        let mut predicates: HashMap<Iri, usize> = HashMap::new();
        let mut objects: HashMap<Iri, usize> = HashMap::new();
        for t in graph.iter() {
            *subjects.entry(t.s).or_default() += 1;
            *predicates.entry(t.p).or_default() += 1;
            *objects.entry(t.o).or_default() += 1;
        }
        let mut histogram: Vec<(Iri, usize)> = predicates.iter().map(|(&p, &n)| (p, n)).collect();
        histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let max_out = subjects.values().copied().max().unwrap_or(0);
        let mean_out = if subjects.is_empty() {
            0.0
        } else {
            graph.len() as f64 / subjects.len() as f64
        };
        GraphStats {
            triples: graph.len(),
            distinct_subjects: subjects.len(),
            distinct_predicates: predicates.len(),
            distinct_objects: objects.len(),
            predicate_histogram: histogram,
            max_out_degree: max_out,
            mean_out_degree: mean_out,
        }
    }

    /// Estimated fraction of triples carrying predicate `p`
    /// (`0.0` when absent) — the selectivity of a `(?s, p, ?o)` scan.
    pub fn predicate_selectivity(&self, p: Iri) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        self.predicate_histogram
            .iter()
            .find(|(q, _)| *q == p)
            .map_or(0.0, |(_, n)| *n as f64 / self.triples as f64)
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} triples | {} subjects | {} predicates | {} objects | out-degree mean {:.1} max {}",
            self.triples,
            self.distinct_subjects,
            self.distinct_predicates,
            self.distinct_objects,
            self.mean_out_degree,
            self.max_out_degree
        )?;
        for (p, n) in self.predicate_histogram.iter().take(8) {
            writeln!(f, "  {p}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    fn sample() -> Graph {
        graph_from(&[
            ("a", "p", "x"),
            ("a", "p", "y"),
            ("a", "q", "x"),
            ("b", "p", "x"),
        ])
    }

    #[test]
    fn counts() {
        let s = GraphStats::of(&sample());
        assert_eq!(s.triples, 4);
        assert_eq!(s.distinct_subjects, 2);
        assert_eq!(s.distinct_predicates, 2);
        assert_eq!(s.distinct_objects, 2);
        assert_eq!(s.max_out_degree, 3);
        assert!((s.mean_out_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_sorted_descending() {
        let s = GraphStats::of(&sample());
        assert_eq!(s.predicate_histogram[0], (Iri::new("p"), 3));
        assert_eq!(s.predicate_histogram[1], (Iri::new("q"), 1));
    }

    #[test]
    fn selectivity() {
        let s = GraphStats::of(&sample());
        assert!((s.predicate_selectivity(Iri::new("p")) - 0.75).abs() < 1e-9);
        assert_eq!(s.predicate_selectivity(Iri::new("absent")), 0.0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::of(&Graph::new());
        assert_eq!(s.triples, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.predicate_selectivity(Iri::new("p")), 0.0);
    }

    #[test]
    fn display_renders() {
        let text = GraphStats::of(&sample()).to_string();
        assert!(text.contains("4 triples"));
        assert!(text.contains("p: 3"));
    }
}
