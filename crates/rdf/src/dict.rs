//! Term dictionary and id-encoded sorted-run indexes.
//!
//! The evaluation hot path — scans, AND-spine joins, mapping
//! compatibility, NS subsumption — historically compared [`Iri`] terms
//! per mapping. This module interns every term into a dense `u64`
//! [`TermId`] once, at load/commit time, so the hot path becomes word
//! compares over columnar batches:
//!
//! * [`TermDict`] — an append-only, thread-safe `Iri ↔ TermId` map.
//!   Ids are *rank-preserving at seed time*: [`TermDict::from_sorted_terms`]
//!   assigns `id = rank + 1` over a lexicographically sorted term table,
//!   which is exactly the layout of a persisted segment's term
//!   dictionary — so a store recovered from disk serves id scans with
//!   zero re-interning. Ids are never renumbered afterwards (terms
//!   interned later get the next id), so an id is stable for the
//!   lifetime of the dictionary across epochs.
//! * [`IdRuns`] — the id-encoded SPO/POS/OSP sorted runs. Every one of
//!   the eight triple-pattern shapes maps to one contiguous,
//!   binary-searchable range of exactly one run (the same layout the
//!   persist segments use on disk).
//! * [`IdView`] — the borrowed id-scan surface an evaluation engine
//!   consumes: a dictionary plus base runs, optionally overlaid with
//!   delta runs and a deletion set (the `owql-store` snapshot shape).
//!
//! Id `0` is reserved as the "unbound" sentinel so a columnar mapping
//! row can use a plain `0` for an absent binding.

use crate::fx::{FxHashMap, FxHashSet};
use crate::term::{Iri, Triple};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// A dictionary-assigned term identifier. `0` is reserved for "unbound";
/// real ids start at `1`.
pub type TermId = u64;

/// The reserved "no binding" sentinel.
pub const NO_TERM: TermId = 0;

#[derive(Debug, Default)]
struct DictInner {
    ids: FxHashMap<Iri, TermId>,
    /// `terms[id - 1]` is the term with id `id`.
    terms: Vec<Iri>,
}

/// Append-only, thread-safe term dictionary.
///
/// Interning is a read-locked hash probe on the hit path and a
/// write-locked append on the miss path; ids are assigned in intern
/// order and never renumbered, so every id handed out stays valid (and
/// keeps meaning the same term) for the lifetime of the dictionary.
#[derive(Debug, Default)]
pub struct TermDict {
    inner: RwLock<DictInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TermDict {
    /// An empty dictionary.
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Seeds a dictionary from a lexicographically sorted, distinct term
    /// table, assigning `id = rank + 1` — the persisted-segment layout,
    /// so a recovered store reuses segment ids verbatim.
    pub fn from_sorted_terms(terms: &[Iri]) -> TermDict {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "seed terms must be sorted and distinct"
        );
        let mut inner = DictInner {
            ids: FxHashMap::with_capacity_and_hasher(terms.len(), Default::default()),
            terms: terms.to_vec(),
        };
        for (rank, &t) in terms.iter().enumerate() {
            inner.ids.insert(t, rank as TermId + 1);
        }
        TermDict {
            inner: RwLock::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Interns a term, returning its id (existing id on a hit, a fresh
    /// one on a miss).
    pub fn intern(&self, term: Iri) -> TermId {
        if let Some(&id) = self.inner.read().unwrap().ids.get(&term) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let mut inner = self.inner.write().unwrap();
        // Double-check: another writer may have interned it between locks.
        if let Some(&id) = inner.ids.get(&term) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        inner.terms.push(term);
        let id = inner.terms.len() as TermId;
        inner.ids.insert(term, id);
        self.misses.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// The id of an already-interned term, if any. Does not intern and
    /// does not touch the hit/miss counters (this is the query-time
    /// probe: a constant absent from the dictionary matches nothing).
    pub fn lookup(&self, term: Iri) -> Option<TermId> {
        self.inner.read().unwrap().ids.get(&term).copied()
    }

    /// The term behind an id, if the id was ever assigned.
    pub fn resolve(&self, id: TermId) -> Option<Iri> {
        if id == NO_TERM {
            return None;
        }
        self.inner
            .read()
            .unwrap()
            .terms
            .get(id as usize - 1)
            .copied()
    }

    /// Runs `f` over the full id→term table under one read lock —
    /// the batch-decode path (avoids a lock round-trip per id).
    /// `terms[id - 1]` is the term with id `id`.
    pub fn with_terms<R>(&self, f: impl FnOnce(&[Iri]) -> R) -> R {
        f(&self.inner.read().unwrap().terms)
    }

    /// Encodes each triple of `triples` as an `[s, p, o]` id row under
    /// one read lock. Returns `None` if any term is not interned.
    pub fn encode_all(&self, triples: &[Triple]) -> Option<Vec<[TermId; 3]>> {
        let inner = self.inner.read().unwrap();
        triples
            .iter()
            .map(|t| {
                Some([
                    *inner.ids.get(&t.s)?,
                    *inner.ids.get(&t.p)?,
                    *inner.ids.get(&t.o)?,
                ])
            })
            .collect()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().terms.len()
    }

    /// `true` iff no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns that found an existing id.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Interns that assigned a fresh id.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Which permutation a sorted run stores its rows in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOrder {
    /// Rows are `[s, p, o]`.
    Spo,
    /// Rows are `[p, o, s]`.
    Pos,
    /// Rows are `[o, s, p]`.
    Osp,
}

impl RunOrder {
    /// Restores a permuted row to `[s, p, o]` order.
    #[inline]
    pub fn to_spo(self, row: [TermId; 3]) -> [TermId; 3] {
        match self {
            RunOrder::Spo => row,
            RunOrder::Pos => [row[2], row[0], row[1]],
            RunOrder::Osp => [row[1], row[2], row[0]],
        }
    }

    /// Permutes an `[s, p, o]` row into this run's component order.
    #[inline]
    pub fn from_spo(self, [s, p, o]: [TermId; 3]) -> [TermId; 3] {
        match self {
            RunOrder::Spo => [s, p, o],
            RunOrder::Pos => [p, o, s],
            RunOrder::Osp => [o, s, p],
        }
    }
}

/// Id-encoded SPO/POS/OSP sorted runs over one triple set.
///
/// The three permutations make every triple-pattern shape a contiguous
/// range found by two `partition_point` binary searches — the in-memory
/// twin of the persisted segment layout.
#[derive(Clone, Debug, Default)]
pub struct IdRuns {
    spo: Vec<[TermId; 3]>,
    pos: Vec<[TermId; 3]>,
    osp: Vec<[TermId; 3]>,
}

impl IdRuns {
    /// Builds the three runs for `triples`, interning any new terms into
    /// `dict`.
    ///
    /// Terms are interned in lexicographic order, so on a fresh
    /// dictionary the assigned ids are exactly the sorted ranks (the
    /// segment-compatible layout); on a pre-seeded dictionary existing
    /// ids are reused untouched and only genuinely new terms extend it.
    pub fn build(triples: &[Triple], dict: &TermDict) -> IdRuns {
        let mut terms: Vec<Iri> = triples
            .iter()
            .flat_map(|t| [t.s, t.p, t.o])
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        terms.sort_unstable();
        for t in terms {
            dict.intern(t);
        }
        let rows = dict
            .encode_all(triples)
            .expect("all terms were just interned");
        let mut runs = IdRuns {
            spo: rows,
            pos: Vec::new(),
            osp: Vec::new(),
        };
        runs.spo.sort_unstable();
        runs.spo.dedup();
        runs.pos = runs
            .spo
            .iter()
            .map(|&r| RunOrder::Pos.from_spo(r))
            .collect();
        runs.pos.sort_unstable();
        runs.osp = runs
            .spo
            .iter()
            .map(|&r| RunOrder::Osp.from_spo(r))
            .collect();
        runs.osp.sort_unstable();
        runs
    }

    /// Builds the three runs from already-encoded `[s, p, o]` id rows
    /// (sorted or not, duplicates tolerated). This is the shard
    /// partitioner's constructor: the rows were id-encoded by an
    /// existing dictionary, so no interning happens here and the ids
    /// stay comparable across every shard built from the same dict.
    pub fn from_spo_rows(rows: Vec<[TermId; 3]>) -> IdRuns {
        let mut runs = IdRuns {
            spo: rows,
            pos: Vec::new(),
            osp: Vec::new(),
        };
        runs.spo.sort_unstable();
        runs.spo.dedup();
        runs.pos = runs
            .spo
            .iter()
            .map(|&r| RunOrder::Pos.from_spo(r))
            .collect();
        runs.pos.sort_unstable();
        runs.osp = runs
            .spo
            .iter()
            .map(|&r| RunOrder::Osp.from_spo(r))
            .collect();
        runs.osp.sort_unstable();
        runs
    }

    /// Inserts one `[s, p, o]` id row into all three runs; returns
    /// `true` if it was new. `O(n)` per run (binary search + shift) —
    /// sized for the store's bounded delta overlays, like
    /// `GraphIndex::insert`.
    pub fn insert(&mut self, row: [TermId; 3]) -> bool {
        match self.spo.binary_search(&row) {
            Ok(_) => false,
            Err(pos) => {
                self.spo.insert(pos, row);
                for (run, order) in [
                    (&mut self.pos, RunOrder::Pos),
                    (&mut self.osp, RunOrder::Osp),
                ] {
                    let permuted = order.from_spo(row);
                    if let Err(p) = run.binary_search(&permuted) {
                        run.insert(p, permuted);
                    }
                }
                true
            }
        }
    }

    /// Removes one `[s, p, o]` id row from all three runs; returns
    /// `true` if it was present.
    pub fn remove(&mut self, row: [TermId; 3]) -> bool {
        match self.spo.binary_search(&row) {
            Err(_) => false,
            Ok(pos) => {
                self.spo.remove(pos);
                for (run, order) in [
                    (&mut self.pos, RunOrder::Pos),
                    (&mut self.osp, RunOrder::Osp),
                ] {
                    if let Ok(p) = run.binary_search(&order.from_spo(row)) {
                        run.remove(p);
                    }
                }
                true
            }
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// `true` iff no row is indexed.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// The full SPO run, sorted.
    pub fn spo(&self) -> &[[TermId; 3]] {
        &self.spo
    }

    /// The contiguous rows matching a pattern with optionally bound
    /// positions, plus the component order the rows are stored in.
    ///
    /// Shape → run: `S*`, `SP*`, `SPO`, and the full scan use SPO;
    /// `P*` and `PO` use POS; `O*` and `SO` use OSP (key `[o, s]`).
    pub fn scan(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> (&[[TermId; 3]], RunOrder) {
        match (s, p, o) {
            (None, None, None) => (&self.spo, RunOrder::Spo),
            (Some(s), None, None) => (prefix_range(&self.spo, &[s]), RunOrder::Spo),
            (Some(s), Some(p), None) => (prefix_range(&self.spo, &[s, p]), RunOrder::Spo),
            (Some(s), Some(p), Some(o)) => (prefix_range(&self.spo, &[s, p, o]), RunOrder::Spo),
            (None, Some(p), None) => (prefix_range(&self.pos, &[p]), RunOrder::Pos),
            (None, Some(p), Some(o)) => (prefix_range(&self.pos, &[p, o]), RunOrder::Pos),
            (None, None, Some(o)) => (prefix_range(&self.osp, &[o]), RunOrder::Osp),
            (Some(s), None, Some(o)) => (prefix_range(&self.osp, &[o, s]), RunOrder::Osp),
        }
    }

    /// [`IdRuns::scan`] with a positional hint: `hint` is a guess at the
    /// matching range's start in the chosen run (updated to the actual
    /// start on return). The search gallops outward from the hint, so a
    /// caller scanning a sequence of *near-sorted* keys — an AND-spine
    /// extending rows that themselves came out of a sorted run — pays
    /// `O(log distance)` per scan instead of a full binary search.
    ///
    /// The hint only stays meaningful while the pattern *shape* (which
    /// positions are bound) is fixed, since the shape picks the run.
    pub fn scan_from(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        hint: &mut usize,
    ) -> (&[[TermId; 3]], RunOrder) {
        let (run, order, key, k): (&[[TermId; 3]], RunOrder, [TermId; 3], usize) = match (s, p, o) {
            (None, None, None) => return (&self.spo, RunOrder::Spo),
            (Some(s), None, None) => (&self.spo, RunOrder::Spo, [s, 0, 0], 1),
            (Some(s), Some(p), None) => (&self.spo, RunOrder::Spo, [s, p, 0], 2),
            (Some(s), Some(p), Some(o)) => (&self.spo, RunOrder::Spo, [s, p, o], 3),
            (None, Some(p), None) => (&self.pos, RunOrder::Pos, [p, 0, 0], 1),
            (None, Some(p), Some(o)) => (&self.pos, RunOrder::Pos, [p, o, 0], 2),
            (None, None, Some(o)) => (&self.osp, RunOrder::Osp, [o, 0, 0], 1),
            (Some(s), None, Some(o)) => (&self.osp, RunOrder::Osp, [o, s, 0], 2),
        };
        let key = &key[..k];
        let lo = partition_from(run, *hint, |r| r[..k] < *key);
        let hi = partition_from(run, lo, |r| r[..k] <= *key);
        *hint = lo;
        (&run[lo..hi], order)
    }

    /// Exact number of rows matching a pattern (a slice length — two
    /// binary searches, no row is touched).
    pub fn cardinality(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.scan(s, p, o).0.len()
    }

    /// Membership test for a fully ground id row.
    pub fn contains(&self, row: [TermId; 3]) -> bool {
        self.spo.binary_search(&row).is_ok()
    }
}

/// The rows of `run` whose first `key.len()` components equal `key`.
fn prefix_range<'a>(run: &'a [[TermId; 3]], key: &[TermId]) -> &'a [[TermId; 3]] {
    let k = key.len();
    let lo = run.partition_point(|row| row[..k] < *key);
    let hi = run.partition_point(|row| row[..k] <= *key);
    &run[lo..hi]
}

/// The partition point of monotone `pred` (`true*false*`) found by
/// galloping outward from `from` — `O(log distance)` instead of
/// `O(log n)` when the caller's guess is close.
fn partition_from(run: &[[TermId; 3]], from: usize, pred: impl Fn(&[TermId; 3]) -> bool) -> usize {
    let n = run.len();
    let start = from.min(n);
    if start < n && pred(&run[start]) {
        // The point is above `start`: bracket it going forward.
        let mut prev = start;
        let mut step = 1usize;
        loop {
            let next = start.saturating_add(step).min(n);
            if next == n || !pred(&run[next]) {
                return prev + 1 + run[prev + 1..next].partition_point(&pred);
            }
            prev = next;
            step *= 2;
        }
    } else {
        // The point is at or below `start`: bracket it going backward.
        let mut upper = start;
        let mut step = 1usize;
        loop {
            let next = start.saturating_sub(step);
            if next == 0 || pred(&run[next - 1]) {
                return next + run[next..upper].partition_point(&pred);
            }
            upper = next;
            step *= 2;
        }
    }
}

/// The borrowed id-scan surface an evaluation engine consumes: a
/// dictionary plus base runs, optionally overlaid with delta runs
/// (sharing the *same* dictionary) and a set of deleted base triples.
///
/// Exposed through `TripleLookup::id_view`; `None` there means the
/// backend cannot serve id scans and the engine must stay on the
/// term-at-a-time path.
#[derive(Clone, Copy, Debug)]
pub struct IdView<'a> {
    /// The shared dictionary every id in `base`/`adds` was assigned by.
    pub dict: &'a TermDict,
    /// Sorted runs over the base triple set.
    pub base: &'a IdRuns,
    /// Sorted runs over added triples (disjoint from the base), if any.
    pub adds: Option<&'a IdRuns>,
    /// Base triples deleted since the base was built, if any.
    pub dels: Option<&'a HashSet<Triple>>,
}

impl<'a> IdView<'a> {
    /// A view over a single run set with no overlay.
    pub fn plain(dict: &'a TermDict, base: &'a IdRuns) -> IdView<'a> {
        IdView {
            dict,
            base,
            adds: None,
            dels: None,
        }
    }

    /// The deletion set encoded as id rows (empty if there are no
    /// deletions). Deleted triples are always base triples, so every
    /// term resolves.
    pub fn del_rows(&self) -> FxHashSet<[TermId; 3]> {
        let Some(dels) = self.dels else {
            return FxHashSet::default();
        };
        let rows: Vec<Triple> = dels.iter().copied().collect();
        self.dict
            .encode_all(&rows)
            .expect("deleted triples are base triples, so their terms are interned")
            .into_iter()
            .collect()
    }

    /// Upper bound on the rows matching a pattern (ignores deletions —
    /// good enough for join ordering).
    pub fn cardinality_upper(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> usize {
        self.base.cardinality(s, p, o) + self.adds.map_or(0, |a| a.cardinality(s, p, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::triple;

    #[test]
    fn intern_is_stable_and_counted() {
        let d = TermDict::new();
        let a = d.intern(Iri::new("a"));
        let b = d.intern(Iri::new("b"));
        assert_ne!(a, b);
        assert_ne!(a, NO_TERM);
        assert_eq!(d.intern(Iri::new("a")), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.misses(), 2);
        assert_eq!(d.hits(), 1);
        assert_eq!(d.resolve(a), Some(Iri::new("a")));
        assert_eq!(d.resolve(NO_TERM), None);
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.lookup(Iri::new("b")), Some(b));
        assert_eq!(d.lookup(Iri::new("zz")), None);
    }

    #[test]
    fn seeded_ids_are_ranks() {
        let terms: Vec<Iri> = ["a", "b", "m", "z"].iter().map(|s| Iri::new(s)).collect();
        let d = TermDict::from_sorted_terms(&terms);
        for (rank, &t) in terms.iter().enumerate() {
            assert_eq!(d.lookup(t), Some(rank as TermId + 1));
        }
        // Interning a seeded term is a pure hit; a new term appends.
        assert_eq!(d.intern(Iri::new("m")), 3);
        assert_eq!(d.misses(), 0);
        let fresh = d.intern(Iri::new("q"));
        assert_eq!(fresh, 5);
        assert_eq!(d.lookup(Iri::new("z")), Some(4), "existing ids unchanged");
    }

    #[test]
    fn runs_serve_all_eight_shapes() {
        let triples = vec![
            triple("a", "p", "b"),
            triple("a", "p", "c"),
            triple("a", "q", "b"),
            triple("d", "p", "b"),
        ];
        let dict = TermDict::new();
        let runs = IdRuns::build(&triples, &dict);
        assert_eq!(runs.len(), 4);
        let id = |s: &str| dict.lookup(Iri::new(s)).unwrap();
        let count = |s: Option<&str>, p: Option<&str>, o: Option<&str>| {
            let (rows, order) = runs.scan(s.map(id), p.map(id), o.map(id));
            // Every returned row actually matches after un-permuting.
            for &row in rows {
                let [rs, rp, ro] = order.to_spo(row);
                assert!(s.is_none_or(|s| id(s) == rs));
                assert!(p.is_none_or(|p| id(p) == rp));
                assert!(o.is_none_or(|o| id(o) == ro));
            }
            rows.len()
        };
        assert_eq!(count(None, None, None), 4);
        assert_eq!(count(Some("a"), None, None), 3);
        assert_eq!(count(None, Some("p"), None), 3);
        assert_eq!(count(None, None, Some("b")), 3);
        assert_eq!(count(Some("a"), Some("p"), None), 2);
        assert_eq!(count(None, Some("p"), Some("b")), 2);
        assert_eq!(count(Some("a"), None, Some("b")), 2);
        assert_eq!(count(Some("a"), Some("p"), Some("b")), 1);
        // A constant that was never interned has no id, hence no match.
        assert_eq!(dict.lookup(Iri::new("zz")), None);
        assert_eq!(runs.scan(Some(999), None, None).0.len(), 0);
    }

    #[test]
    fn incremental_runs_match_rebuild() {
        let dict = TermDict::new();
        let mut runs = IdRuns::build(&[], &dict);
        let triples = vec![
            triple("a", "p", "b"),
            triple("c", "q", "d"),
            triple("a", "r", "d"),
        ];
        for t in &triples {
            let row = [dict.intern(t.s), dict.intern(t.p), dict.intern(t.o)];
            assert!(runs.insert(row));
            assert!(!runs.insert(row), "duplicate insert is a no-op");
        }
        let gone = triples[1];
        let gone_row = [
            dict.lookup(gone.s).unwrap(),
            dict.lookup(gone.p).unwrap(),
            dict.lookup(gone.o).unwrap(),
        ];
        assert!(runs.remove(gone_row));
        assert!(!runs.remove(gone_row));

        let kept: Vec<Triple> = vec![triples[0], triples[2]];
        let rebuilt = IdRuns::build(&kept, &dict);
        assert_eq!(runs.spo, rebuilt.spo);
        assert_eq!(runs.pos, rebuilt.pos);
        assert_eq!(runs.osp, rebuilt.osp);
    }

    #[test]
    fn fresh_dict_build_assigns_rank_ids() {
        let triples = vec![triple("z", "p", "a"), triple("m", "p", "a")];
        let dict = TermDict::new();
        IdRuns::build(&triples, &dict);
        // Distinct sorted terms: a, m, p, z → ids 1..=4.
        assert_eq!(dict.lookup(Iri::new("a")), Some(1));
        assert_eq!(dict.lookup(Iri::new("m")), Some(2));
        assert_eq!(dict.lookup(Iri::new("p")), Some(3));
        assert_eq!(dict.lookup(Iri::new("z")), Some(4));
    }
}
