//! Interned IRIs and RDF triples.
//!
//! The paper (Section 2) assumes an infinite set `I` of IRIs and, for
//! readability, allows every string to be used as an IRI. We intern IRIs
//! in a process-global table so that a term is a 4-byte `Copy` handle:
//! equality and hashing are integer operations, while ordering and display
//! go through the underlying string (so output is deterministic and
//! human-readable).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroU32;
use std::sync::{Mutex, OnceLock};

/// Process-global IRI interner.
///
/// Interned strings are leaked to obtain a `'static` lifetime; the total
/// leaked memory is bounded by the number of *distinct* IRIs ever created,
/// which is the standard trade-off for interning in query engines.
struct Interner {
    ids: HashMap<&'static str, NonZeroU32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            ids: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// An International Resource Identifier, interned globally.
///
/// Construction is via [`Iri::new`] (or `From<&str>`); the original text
/// is recovered with [`Iri::as_str`]. Two `Iri`s are equal iff their text
/// is equal. `Ord` compares the underlying strings, so sorted collections
/// of IRIs iterate in lexicographic order.
///
/// ```
/// use owql_rdf::Iri;
/// let a = Iri::new("founder");
/// let b = Iri::new("founder");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "founder");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iri(NonZeroU32);

impl Iri {
    /// Interns `text` and returns its handle.
    pub fn new(text: &str) -> Self {
        let mut guard = interner().lock().expect("IRI interner poisoned");
        if let Some(&id) = guard.ids.get(text) {
            return Iri(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = NonZeroU32::new(guard.strings.len() as u32 + 1).expect("interner id overflow");
        guard.ids.insert(leaked, id);
        guard.strings.push(leaked);
        Iri(id)
    }

    /// Returns the IRI text.
    ///
    /// Resolution goes through a per-thread snapshot of the id → text
    /// table: ids are dense and append-only and the texts are
    /// `'static`, so any id below the snapshot length resolves without
    /// the global lock. A miss (an IRI interned since the snapshot)
    /// refreshes the snapshot under the lock. This keeps `as_str` —
    /// and through it `Ord`/`Display` — off the interner mutex on hot
    /// paths like sorting and serialization.
    pub fn as_str(self) -> &'static str {
        thread_local! {
            static RESOLVED: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }
        let idx = self.0.get() as usize - 1;
        RESOLVED.with(|cache| {
            if let Some(&text) = cache.borrow().get(idx) {
                return text;
            }
            let guard = interner().lock().expect("IRI interner poisoned");
            let mut cache = cache.borrow_mut();
            cache.clear();
            cache.extend_from_slice(&guard.strings);
            cache[idx]
        })
    }

    /// Returns the dense interner id (useful as an array index).
    pub fn id(self) -> u32 {
        self.0.get()
    }
}

impl From<&str> for Iri {
    fn from(text: &str) -> Self {
        Iri::new(text)
    }
}

impl From<&String> for Iri {
    fn from(text: &String) -> Self {
        Iri::new(text)
    }
}

impl PartialOrd for Iri {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Iri {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// An RDF triple `(subject, predicate, object)` over interned IRIs.
///
/// Triples are `Copy` (12 bytes) and ordered lexicographically by
/// subject, then predicate, then object text — so sorted triple lists are
/// deterministic across runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject of the triple.
    pub s: Iri,
    /// The predicate of the triple.
    pub p: Iri,
    /// The object of the triple.
    pub o: Iri,
}

impl Triple {
    /// Builds a triple from anything convertible to [`Iri`].
    pub fn new(s: impl Into<Iri>, p: impl Into<Iri>, o: impl Into<Iri>) -> Self {
        Triple {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// Returns the three components as an array `[s, p, o]`.
    pub fn components(self) -> [Iri; 3] {
        [self.s, self.p, self.o]
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.p, self.o)
    }
}

/// Convenience constructor: `triple("a", "b", "c")`.
pub fn triple(s: impl Into<Iri>, p: impl Into<Iri>, o: impl Into<Iri>) -> Triple {
    Triple::new(s, p, o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interning_is_idempotent() {
        let a = Iri::new("alpha-term");
        let b = Iri::new("alpha-term");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "alpha-term");
    }

    #[test]
    fn distinct_text_distinct_iri() {
        assert_ne!(Iri::new("x-one"), Iri::new("x-two"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order to make sure Ord is not by id.
        let z = Iri::new("zzz-order");
        let a = Iri::new("aaa-order");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn triple_equality_and_hash() {
        let t1 = triple("s", "p", "o");
        let t2 = Triple::new("s", "p", "o");
        assert_eq!(t1, t2);
        let mut set = HashSet::new();
        set.insert(t1);
        assert!(set.contains(&t2));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn triple_ordering() {
        let a = triple("a", "b", "c");
        let b = triple("a", "b", "d");
        let c = triple("a", "c", "a");
        let d = triple("b", "a", "a");
        let mut v = vec![d, c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c, d]);
    }

    #[test]
    fn display_formats() {
        let t = triple("s", "p", "o");
        assert_eq!(format!("{t}"), "(s, p, o)");
        assert_eq!(format!("{t:?}"), "(s, p, o)");
    }

    #[test]
    fn components_roundtrip() {
        let t = triple("s", "p", "o");
        let [s, p, o] = t.components();
        assert_eq!(Triple { s, p, o }, t);
    }

    #[test]
    fn iri_is_small_and_copy() {
        assert_eq!(std::mem::size_of::<Iri>(), 4);
        assert_eq!(std::mem::size_of::<Triple>(), 12);
        assert_eq!(std::mem::size_of::<Option<Iri>>(), 4); // NonZero niche
    }
}
