//! Clausal form: literals, clauses, CNF formulas, and the Tseitin
//! transform from [`crate::formula::Formula`] trees.

use crate::formula::Formula;
use std::fmt;

/// A literal: a variable index with a sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of variable `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// The negative literal of variable `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (trivially true) CNF over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause, growing `num_vars` as needed.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            self.num_vars = self.num_vars.max(lit.var + 1);
        }
        self.clauses.push(clause);
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Converts to a [`Formula`] tree (e.g. for embedding in a FILTER).
    pub fn to_formula(&self) -> Formula {
        Formula::conj(self.clauses.iter().map(|c| {
            Formula::disj(c.iter().map(|l| {
                if l.positive {
                    Formula::var(l.var)
                } else {
                    Formula::var(l.var).not()
                }
            }))
        }))
    }
}

/// Tseitin transform: an equisatisfiable CNF for `f`.
///
/// The original variables `0..f.num_vars()` keep their indices; fresh
/// definition variables are appended, so a satisfying assignment of the
/// result restricted to the original indices satisfies `f`, and every
/// model of `f` extends to a model of the result.
pub fn tseitin(f: &Formula) -> Cnf {
    let mut cnf = Cnf::new(f.num_vars());
    let root = encode(f, &mut cnf);
    cnf.add_clause(vec![root]);
    cnf
}

/// Encodes `f` into `cnf`, returning a literal equivalent to `f`.
fn encode(f: &Formula, cnf: &mut Cnf) -> Lit {
    match f {
        Formula::True => {
            // A fresh variable forced true.
            let v = cnf.fresh_var();
            cnf.add_clause(vec![Lit::pos(v)]);
            Lit::pos(v)
        }
        Formula::False => {
            let v = cnf.fresh_var();
            cnf.add_clause(vec![Lit::neg(v)]);
            Lit::pos(v)
        }
        Formula::Var(i) => Lit::pos(*i),
        Formula::Not(inner) => encode(inner, cnf).negated(),
        Formula::And(a, b) => {
            let la = encode(a, cnf);
            let lb = encode(b, cnf);
            let v = cnf.fresh_var();
            let lv = Lit::pos(v);
            // v ↔ (la ∧ lb)
            cnf.add_clause(vec![lv.negated(), la]);
            cnf.add_clause(vec![lv.negated(), lb]);
            cnf.add_clause(vec![la.negated(), lb.negated(), lv]);
            lv
        }
        Formula::Or(a, b) => {
            let la = encode(a, cnf);
            let lb = encode(b, cnf);
            let v = cnf.fresh_var();
            let lv = Lit::pos(v);
            // v ↔ (la ∨ lb)
            cnf.add_clause(vec![lv.negated(), la, lb]);
            cnf.add_clause(vec![la.negated(), lv]);
            cnf.add_clause(vec![lb.negated(), lv]);
            lv
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let l = Lit::pos(2);
        assert!(l.eval(&[false, false, true]));
        assert!(!l.negated().eval(&[false, false, true]));
        assert_eq!(l.negated().negated(), l);
        assert_eq!(format!("{:?}", Lit::neg(1)), "¬x1");
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause(vec![Lit::pos(5)]);
        assert_eq!(cnf.num_vars, 6);
    }

    #[test]
    fn tseitin_equisatisfiable() {
        // For a sample of formulas, check: f sat ⟺ tseitin(f) sat, and
        // models of tseitin(f) restrict to models of f.
        let formulas = vec![
            Formula::var(0).and(Formula::var(1)),
            Formula::var(0).and(Formula::var(0).not()),
            Formula::var(0)
                .or(Formula::var(1))
                .and(Formula::var(0).not()),
            Formula::var(0)
                .or(Formula::var(1))
                .and(Formula::var(0).not().or(Formula::var(1).not())),
            Formula::True,
            Formula::False,
            Formula::var(2).not().not(),
        ];
        for f in formulas {
            let n = f.num_vars();
            let cnf = tseitin(&f);
            let direct = f.satisfiable_brute_force(n).is_some();
            // Brute-force the CNF (small enough here).
            let mut cnf_sat = false;
            let total = cnf.num_vars;
            assert!(total <= 20);
            for mask in 0u32..(1 << total) {
                let a: Vec<bool> = (0..total).map(|i| mask & (1 << i) != 0).collect();
                if cnf.eval(&a) {
                    cnf_sat = true;
                    assert!(f.eval(&a[..n.max(1).min(a.len())]) || n == 0 || f.eval(&a));
                    break;
                }
            }
            assert_eq!(direct, cnf_sat, "formula {f}");
        }
    }

    #[test]
    fn to_formula_roundtrip_semantics() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(1)]);
        let f = cnf.to_formula();
        for mask in 0..4u32 {
            let a = vec![mask & 1 != 0, mask & 2 != 0];
            assert_eq!(cnf.eval(&a), f.eval(&a));
        }
    }
}
