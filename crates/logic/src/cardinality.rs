//! Cardinality constraints via the sequential-counter encoding.
//!
//! The MAX-ODD-SAT reduction (Theorem 7.3 / Appendix I) needs, for a
//! formula `φ` over `m` variables, the family `φ_k = φ ∧ "at least k
//! variables true"`. The paper invokes Cook's theorem for `φ_k`; the
//! implementable substitute (documented in DESIGN.md) is a direct
//! cardinality encoding, which is satisfiability-equivalent: `φ_k` is
//! satisfiable iff some model of `φ` sets at least `k` variables true.
//!
//! The encoding introduces counter variables `s[i][j]` ("among the
//! first `i` literals at least `j` hold") with the one-directional
//! clauses sufficient for equisatisfiability.

use crate::cnf::{Cnf, Lit};

/// Appends clauses to `cnf` enforcing that at least `k` of `lits` hold.
///
/// Auxiliary variables are allocated from `cnf`; the constraint is
/// equisatisfiable (every assignment with `≥ k` true literals extends
/// to a model of the new clauses, and every model has `≥ k` true
/// literals).
pub fn at_least_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let n = lits.len();
    if k == 0 {
        return;
    }
    if k > n {
        cnf.add_clause(vec![]); // unsatisfiable
        return;
    }
    // s[i][j] for 0 <= i <= n, 0 <= j <= k: among the first i literals
    // at least j hold.
    let s: Vec<Vec<usize>> = (0..=n)
        .map(|_| (0..=k).map(|_| cnf.fresh_var()).collect())
        .collect();
    // Base: s[0][0] true, s[0][j] false for j >= 1.
    cnf.add_clause(vec![Lit::pos(s[0][0])]);
    for &sj in s[0].iter().skip(1) {
        cnf.add_clause(vec![Lit::neg(sj)]);
    }
    // s[i][0] is true for every i.
    for si in s.iter().skip(1) {
        cnf.add_clause(vec![Lit::pos(si[0])]);
    }
    // s[i][j] -> s[i-1][j] ∨ (lit_{i-1} ∧ s[i-1][j-1])
    for i in 1..=n {
        for j in 1..=k {
            cnf.add_clause(vec![Lit::neg(s[i][j]), Lit::pos(s[i - 1][j]), lits[i - 1]]);
            cnf.add_clause(vec![
                Lit::neg(s[i][j]),
                Lit::pos(s[i - 1][j]),
                Lit::pos(s[i - 1][j - 1]),
            ]);
        }
    }
    // Demand the full count.
    cnf.add_clause(vec![Lit::pos(s[n][k])]);
}

/// A *direct* (auxiliary-free) formula asserting that at least `k` of
/// the variables `vars` are true: the disjunction over all `k`-subsets
/// of their conjunctions.
///
/// Size is `C(n, k)` conjunctions — exponential in general, but free of
/// fresh variables, which is what the SPARQL reduction gadgets need
/// (every formula variable becomes a pattern variable there, and
/// evaluation is exponential in the pattern's variable count; trading
/// formula size for variable count is the right call at reduction
/// scale). Capped at `n ≤ 16`.
pub fn at_least_k_formula(vars: &[usize], k: usize) -> crate::formula::Formula {
    use crate::formula::Formula;
    let n = vars.len();
    assert!(n <= 16, "direct cardinality formula capped at 16 variables");
    if k == 0 {
        return Formula::True;
    }
    if k > n {
        return Formula::False;
    }
    let mut disjuncts = Vec::new();
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        disjuncts.push(Formula::conj(
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| Formula::var(vars[i])),
        ));
    }
    Formula::disj(disjuncts)
}

/// Appends clauses enforcing that at most `k` of `lits` hold
/// (encoded as "at least `n − k` of the negations hold").
pub fn at_most_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    let negated: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
    let n = lits.len();
    if k >= n {
        return;
    }
    at_least_k(cnf, &negated, n - k);
}

/// Appends clauses enforcing that exactly `k` of `lits` hold.
pub fn exactly_k(cnf: &mut Cnf, lits: &[Lit], k: usize) {
    at_least_k(cnf, lits, k);
    at_most_k(cnf, lits, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::{solve, Solution};

    /// Counts the true original variables in a model.
    fn count_true(model: &[bool], n: usize) -> usize {
        model[..n].iter().filter(|&&b| b).count()
    }

    fn vars_as_lits(n: usize) -> Vec<Lit> {
        (0..n).map(Lit::pos).collect()
    }

    #[test]
    fn at_least_k_is_satisfiable_when_possible() {
        for n in 1..=5usize {
            for k in 0..=n {
                let mut cnf = Cnf::new(n);
                at_least_k(&mut cnf, &vars_as_lits(n), k);
                match solve(&cnf) {
                    Solution::Sat(m) => assert!(
                        count_true(&m, n) >= k,
                        "n={n}, k={k}: model has too few true vars"
                    ),
                    Solution::Unsat => panic!("n={n}, k={k} should be satisfiable"),
                }
            }
        }
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let mut cnf = Cnf::new(3);
        at_least_k(&mut cnf, &vars_as_lits(3), 4);
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn at_least_k_blocks_small_counts() {
        // Force x1 and x2 false; demand >= 2 of 3: only x0 left → unsat.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(1)]);
        cnf.add_clause(vec![Lit::neg(2)]);
        at_least_k(&mut cnf, &vars_as_lits(3), 2);
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn at_most_k_blocks_large_counts() {
        // Force all three true; demand <= 2 → unsat.
        let mut cnf = Cnf::new(3);
        for v in 0..3 {
            cnf.add_clause(vec![Lit::pos(v)]);
        }
        at_most_k(&mut cnf, &vars_as_lits(3), 2);
        assert_eq!(solve(&cnf), Solution::Unsat);

        // <= 3 is free.
        let mut cnf2 = Cnf::new(3);
        for v in 0..3 {
            cnf2.add_clause(vec![Lit::pos(v)]);
        }
        at_most_k(&mut cnf2, &vars_as_lits(3), 3);
        assert!(solve(&cnf2).is_sat());
    }

    #[test]
    fn exactly_k_pins_the_count() {
        for k in 0..=4usize {
            let mut cnf = Cnf::new(4);
            exactly_k(&mut cnf, &vars_as_lits(4), k);
            match solve(&cnf) {
                Solution::Sat(m) => assert_eq!(count_true(&m, 4), k, "k={k}"),
                Solution::Unsat => panic!("exactly {k} of 4 should be satisfiable"),
            }
        }
    }

    #[test]
    fn works_over_negative_literals() {
        // At least 2 of {¬x0, ¬x1, ¬x2} with x0 forced true:
        // x1 and x2 must be false.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0)]);
        let lits: Vec<Lit> = (0..3).map(Lit::neg).collect();
        at_least_k(&mut cnf, &lits, 2);
        match solve(&cnf) {
            Solution::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1] && !m[2]);
            }
            Solution::Unsat => panic!("should be satisfiable"),
        }
    }

    #[test]
    fn direct_formula_matches_count() {
        use super::at_least_k_formula;
        let vars = [0, 1, 2, 3];
        for k in 0..=5usize {
            let f = at_least_k_formula(&vars, k);
            for mask in 0u32..16 {
                let a: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
                assert_eq!(
                    f.eval(&a),
                    (mask.count_ones() as usize) >= k,
                    "mask={mask:04b}, k={k}"
                );
            }
        }
    }

    #[test]
    fn direct_formula_on_scattered_vars() {
        use super::at_least_k_formula;
        // Variables need not be contiguous.
        let f = at_least_k_formula(&[1, 3], 2);
        assert!(f.eval(&[false, true, false, true]));
        assert!(!f.eval(&[true, true, true, false]));
    }

    /// Exhaustive correctness on all assignments for small n: the
    /// constraint is exactly "count >= k" after projecting away the
    /// auxiliaries (checked via satisfiability of the constraint
    /// conjoined with a forced assignment of the originals).
    #[test]
    fn exhaustive_projection_check() {
        let n = 4usize;
        for k in 0..=n {
            for mask in 0u32..(1 << n) {
                let mut cnf = Cnf::new(n);
                for v in 0..n {
                    if mask & (1 << v) != 0 {
                        cnf.add_clause(vec![Lit::pos(v)]);
                    } else {
                        cnf.add_clause(vec![Lit::neg(v)]);
                    }
                }
                at_least_k(&mut cnf, &vars_as_lits(n), k);
                let expected = (mask.count_ones() as usize) >= k;
                assert_eq!(solve(&cnf).is_sat(), expected, "mask={mask:04b}, k={k}");
            }
        }
    }
}
