//! Propositional formulas over integer-indexed variables.
//!
//! Variables are `usize` indices `0..n`; an assignment is a `&[bool]`.
//! [`Formula`] is the tree form used by reductions (the SAT gadget of
//! Lemma G.1 embeds an arbitrary formula as a FILTER condition);
//! clausal form lives in [`crate::cnf`].

use std::collections::BTreeSet;
use std::fmt;

/// A propositional formula.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// The variable with the given index.
    Var(usize),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The variable `xᵢ`.
    pub fn var(i: usize) -> Formula {
        Formula::Var(i)
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Conjunction of many formulas (`True` when empty).
    pub fn conj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().reduce(Formula::and).unwrap_or(Formula::True)
    }

    /// Disjunction of many formulas (`False` when empty).
    pub fn disj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().reduce(Formula::or).unwrap_or(Formula::False)
    }

    /// Evaluates under a total assignment (indexing panics if the
    /// assignment is too short).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(i) => assignment[*i],
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Formula::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }

    /// The set of variable indices occurring in the formula.
    pub fn vars(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<usize>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(i) => {
                out.insert(*i);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// `max(vars) + 1`, i.e. the length an assignment slice must have.
    pub fn num_vars(&self) -> usize {
        self.vars().last().map_or(0, |m| m + 1)
    }

    /// Brute-force satisfiability over `n` variables — the ultimate
    /// oracle used to validate the DPLL solver on small inputs.
    pub fn satisfiable_brute_force(&self, n: usize) -> Option<Vec<bool>> {
        assert!(n <= 24, "brute force capped at 24 variables");
        for mask in 0u32..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Counts satisfying assignments over `n` variables (brute force).
    pub fn count_models(&self, n: usize) -> usize {
        assert!(n <= 24, "model counting capped at 24 variables");
        (0u32..(1u32 << n))
            .filter(|mask| {
                let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                self.eval(&assignment)
            })
            .count()
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Var(i) => write!(f, "x{i}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basics() {
        let f = Formula::var(0).and(Formula::var(1).not());
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    fn constants() {
        assert!(Formula::True.eval(&[]));
        assert!(!Formula::False.eval(&[]));
        assert_eq!(Formula::conj(vec![]), Formula::True);
        assert_eq!(Formula::disj(vec![]), Formula::False);
    }

    #[test]
    fn vars_and_num_vars() {
        let f = Formula::var(3).or(Formula::var(1));
        assert_eq!(f.vars().into_iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(f.num_vars(), 4);
        assert_eq!(Formula::True.num_vars(), 0);
    }

    #[test]
    fn brute_force_sat() {
        // x0 ∧ ¬x0 unsat; x0 ∨ x1 sat.
        let unsat = Formula::var(0).and(Formula::var(0).not());
        assert_eq!(unsat.satisfiable_brute_force(1), None);
        let sat = Formula::var(0).or(Formula::var(1));
        let a = sat.satisfiable_brute_force(2).unwrap();
        assert!(sat.eval(&a));
    }

    #[test]
    fn model_counting() {
        let f = Formula::var(0).or(Formula::var(1));
        assert_eq!(f.count_models(2), 3);
        assert_eq!(Formula::True.count_models(2), 4);
        assert_eq!(Formula::False.count_models(2), 0);
    }

    #[test]
    fn display() {
        let f = Formula::var(0).and(Formula::var(1)).not();
        assert_eq!(f.to_string(), "¬(x0 ∧ x1)");
    }
}
