//! Graph coloring: undirected graphs, SAT encodings, and chromatic
//! numbers.
//!
//! Theorem 7.2 proves BH₂ₖ-hardness of `Eval(USP–SPARQLₖ)` by reduction
//! from **Exact-Mₖ-Colorability** — deciding whether the chromatic
//! number `χ(H)` of a graph `H` lies in the set
//! `Mₖ = {6k+1, 6k+3, …, 8k−1}`. The reduction's inner step is the
//! observation that `χ(H) = m` iff "`H` is m-colorable" (SAT) and
//! "`H` is (m−1)-colorable" is false (UNSAT) — i.e. a SAT-UNSAT pair of
//! coloring encodings. This module supplies the graphs, the encoding,
//! and a reference chromatic-number computation used to verify the
//! reduction end-to-end on small instances.

use crate::cnf::{Cnf, Lit};
use crate::dpll::{solve, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UGraph {
    /// Number of vertices.
    pub n: usize,
    /// Edge set (stored with `u < v`).
    pub edges: BTreeSet<(usize, usize)>,
}

impl UGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> UGraph {
        UGraph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge (self-loops are rejected).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loops make a graph uncolorable");
        assert!(u < self.n && v < self.n);
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// The complete graph `K_n` (chromatic number `n`).
    pub fn complete(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// A cycle `C_n` (chromatic number 2 if even, 3 if odd; `n >= 3`).
    pub fn cycle(n: usize) -> UGraph {
        assert!(n >= 3);
        let mut g = UGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// Erdős–Rényi random graph with edge probability `p`.
    pub fn random(n: usize, p: f64, seed: u64) -> UGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The disjoint union of `self` and `other` (chromatic number is
    /// the max of the two) — handy for building graphs with prescribed
    /// chromatic numbers.
    pub fn disjoint_union(&self, other: &UGraph) -> UGraph {
        let mut g = UGraph::new(self.n + other.n);
        g.edges.extend(self.edges.iter().copied());
        g.edges
            .extend(other.edges.iter().map(|&(u, v)| (u + self.n, v + self.n)));
        g
    }

    /// `true` iff `colors` (one entry per vertex, values `< k` not
    /// required) is a proper coloring.
    pub fn is_proper_coloring(&self, colors: &[usize]) -> bool {
        colors.len() == self.n && self.edges.iter().all(|&(u, v)| colors[u] != colors[v])
    }
}

/// The SAT encoding of "`g` is `k`-colorable": variable `v·k + c` means
/// "vertex `v` has color `c`"; each vertex gets at least one color and
/// adjacent vertices never share one.
pub fn coloring_cnf(g: &UGraph, k: usize) -> Cnf {
    let var = |v: usize, c: usize| v * k + c;
    let mut cnf = Cnf::new(g.n * k);
    for v in 0..g.n {
        cnf.add_clause((0..k).map(|c| Lit::pos(var(v, c))).collect());
    }
    for &(u, v) in &g.edges {
        for c in 0..k {
            cnf.add_clause(vec![Lit::neg(var(u, c)), Lit::neg(var(v, c))]);
        }
    }
    cnf
}

/// Decides `k`-colorability via the SAT encoding, returning a proper
/// coloring when one exists.
pub fn k_colorable(g: &UGraph, k: usize) -> Option<Vec<usize>> {
    if g.n == 0 {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    match solve(&coloring_cnf(g, k)) {
        Solution::Sat(m) => {
            let colors: Vec<usize> = (0..g.n)
                .map(|v| {
                    (0..k)
                        .find(|&c| m[v * k + c])
                        .expect("vertex must have a color")
                })
                .collect();
            debug_assert!(g.is_proper_coloring(&colors));
            Some(colors)
        }
        Solution::Unsat => None,
    }
}

/// The chromatic number `χ(g)` (0 for the empty graph), by incremental
/// SAT calls.
pub fn chromatic_number(g: &UGraph) -> usize {
    if g.n == 0 {
        return 0;
    }
    (1..=g.n)
        .find(|&k| k_colorable(g, k).is_some())
        .expect("every graph is n-colorable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_chromatic_number() {
        for n in 1..=5 {
            assert_eq!(chromatic_number(&UGraph::complete(n)), n);
        }
    }

    #[test]
    fn cycle_chromatic_numbers() {
        assert_eq!(chromatic_number(&UGraph::cycle(4)), 2);
        assert_eq!(chromatic_number(&UGraph::cycle(5)), 3);
        assert_eq!(chromatic_number(&UGraph::cycle(6)), 2);
        assert_eq!(chromatic_number(&UGraph::cycle(7)), 3);
    }

    #[test]
    fn edgeless_graph_is_1_colorable() {
        assert_eq!(chromatic_number(&UGraph::new(5)), 1);
        assert_eq!(chromatic_number(&UGraph::new(0)), 0);
    }

    #[test]
    fn k_colorable_returns_proper_colorings() {
        let g = UGraph::random(8, 0.4, 11);
        let chi = chromatic_number(&g);
        let coloring = k_colorable(&g, chi).unwrap();
        assert!(g.is_proper_coloring(&coloring));
        if chi > 1 {
            assert!(k_colorable(&g, chi - 1).is_none());
        }
    }

    #[test]
    fn disjoint_union_takes_max() {
        let g = UGraph::complete(4).disjoint_union(&UGraph::cycle(5));
        assert_eq!(chromatic_number(&g), 4);
        assert_eq!(g.n, 9);
    }

    #[test]
    fn coloring_cnf_shape() {
        let g = UGraph::complete(3);
        let cnf = coloring_cnf(&g, 2);
        // 3 at-least-one clauses + 3 edges × 2 colors conflict clauses.
        assert_eq!(cnf.clauses.len(), 3 + 6);
        assert_eq!(cnf.num_vars, 6);
        // K3 is not 2-colorable.
        assert!(k_colorable(&g, 2).is_none());
        assert!(k_colorable(&g, 3).is_some());
    }

    #[test]
    fn random_graph_is_deterministic() {
        assert_eq!(UGraph::random(6, 0.5, 3), UGraph::random(6, 0.5, 3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        UGraph::new(2).add_edge(1, 1);
    }
}
