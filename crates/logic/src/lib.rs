//! # owql-logic
//!
//! The propositional-logic substrate required by the complexity section
//! of the paper (Section 7 and Appendices G–I). Every hardness result
//! there is a *constructive reduction* from a SAT-style problem:
//!
//! * Theorem 7.1 reduces **SAT-UNSAT** (pairs `(φ, ψ)` with `φ`
//!   satisfiable and `ψ` unsatisfiable) to evaluation of simple
//!   patterns;
//! * Theorem 7.2 reduces **Exact-Mₖ-Colorability** (chromatic number in
//!   a k-element set), which itself decomposes into SAT-UNSAT pairs of
//!   graph-coloring encodings;
//! * Theorem 7.3 reduces **MAX-ODD-SAT** through cardinality-bounded
//!   satisfiability;
//! * Theorem 7.4 reduces plain **SAT** to `CONSTRUCT[AUF]` evaluation.
//!
//! To *build and verify* those reductions end-to-end the project needs
//! propositional formulas ([`formula`]), CNF and the Tseitin transform
//! ([`cnf`]), a complete SAT solver used as the ground-truth oracle
//! ([`dpll`]), cardinality constraints ([`cardinality`]), and
//! graph-coloring encodings ([`coloring`]). Everything is built from
//! scratch — the solver is a classic DPLL with unit propagation and
//! pure-literal elimination, entirely adequate for the ≤ 40-variable
//! instances the experiments use.

pub mod cardinality;
pub mod cnf;
pub mod coloring;
pub mod dpll;
pub mod enumerate;
pub mod formula;

pub use cnf::{Clause, Cnf, Lit};
pub use dpll::{solve, Solution};
pub use formula::Formula;
