//! A complete DPLL SAT solver.
//!
//! Classic Davis–Putnam–Logemann–Loveland with unit propagation,
//! pure-literal elimination, and most-occurrences branching. It is the
//! ground-truth oracle against which all of the paper's reductions are
//! verified (a reduction instance is *correct* when the engine's answer
//! over the constructed RDF graph matches the solver's answer on the
//! source formula), so the solver itself is validated against
//! brute-force enumeration on thousands of random small formulas.

use crate::cnf::{Cnf, Lit};
use crate::formula::Formula;

/// The result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Solution {
    /// Satisfiable, with a witnessing total assignment.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl Solution {
    /// `true` iff satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, Solution::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            Solution::Sat(m) => Some(m),
            Solution::Unsat => None,
        }
    }
}

/// Solves a CNF formula.
pub fn solve(cnf: &Cnf) -> Solution {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars];
    if dpll(cnf, &mut assignment) {
        Solution::Sat(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        Solution::Unsat
    }
}

/// Solves a formula tree via the Tseitin transform; the returned model
/// (if any) is restricted to the formula's original variables.
pub fn solve_formula(f: &Formula) -> Solution {
    let n = f.num_vars();
    match solve(&crate::cnf::tseitin(f)) {
        Solution::Sat(m) => {
            let mut model = m;
            model.truncate(n);
            model.resize(n, false);
            debug_assert!(f.eval(&model));
            Solution::Sat(model)
        }
        Solution::Unsat => Solution::Unsat,
    }
}

/// Clause state under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(Lit),
    /// Two or more literals unassigned.
    Open,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Lit> = None;
    let mut unassigned_count = 0;
    for &lit in clause {
        match assignment[lit.var] {
            Some(v) if v == lit.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Open,
    }
}

/// Unit propagation to fixpoint. Returns `false` on conflict; records
/// the variables it assigned in `trail` so the caller can undo them.
fn propagate(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<usize>) -> bool {
    loop {
        let mut changed = false;
        for clause in &cnf.clauses {
            match clause_state(clause, assignment) {
                ClauseState::Conflict => return false,
                ClauseState::Unit(lit) => {
                    assignment[lit.var] = Some(lit.positive);
                    trail.push(lit.var);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Pure-literal elimination: assigns variables occurring with only one
/// polarity among not-yet-satisfied clauses.
fn assign_pure_literals(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<usize>) {
    let n = assignment.len();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in &cnf.clauses {
        if matches!(clause_state(clause, assignment), ClauseState::Satisfied) {
            continue;
        }
        for &lit in clause {
            if assignment[lit.var].is_none() {
                if lit.positive {
                    pos[lit.var] = true;
                } else {
                    neg[lit.var] = true;
                }
            }
        }
    }
    for v in 0..n {
        if assignment[v].is_none() && (pos[v] ^ neg[v]) {
            assignment[v] = Some(pos[v]);
            trail.push(v);
        }
    }
}

/// Branching heuristic: the unassigned variable occurring in the most
/// unsatisfied clauses.
fn pick_branch_var(cnf: &Cnf, assignment: &[Option<bool>]) -> Option<usize> {
    let mut counts = vec![0usize; assignment.len()];
    for clause in &cnf.clauses {
        if matches!(clause_state(clause, assignment), ClauseState::Satisfied) {
            continue;
        }
        for &lit in clause {
            if assignment[lit.var].is_none() {
                counts[lit.var] += 1;
            }
        }
    }
    counts
        .iter()
        .enumerate()
        .filter(|&(v, _)| assignment[v].is_none())
        .max_by_key(|&(_, c)| *c)
        .map(|(v, _)| v)
}

fn undo(assignment: &mut [Option<bool>], trail: &[usize], from: usize) {
    for &v in &trail[from..] {
        assignment[v] = None;
    }
}

fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    let mut trail = Vec::new();
    if !propagate(cnf, assignment, &mut trail) {
        undo(assignment, &trail, 0);
        return false;
    }
    assign_pure_literals(cnf, assignment, &mut trail);

    // Done when every clause is satisfied.
    let all_satisfied = cnf
        .clauses
        .iter()
        .all(|c| matches!(clause_state(c, assignment), ClauseState::Satisfied));
    if all_satisfied {
        return true;
    }

    let Some(v) = pick_branch_var(cnf, assignment) else {
        // No unassigned variable left but some clause unsatisfied.
        undo(assignment, &trail, 0);
        return false;
    };

    for value in [true, false] {
        assignment[v] = Some(value);
        if dpll(cnf, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    undo(assignment, &trail, 0);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::tseitin;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clause(lits: &[i64]) -> Vec<Lit> {
        lits.iter()
            .map(|&l| {
                if l > 0 {
                    Lit::pos(l as usize - 1)
                } else {
                    Lit::neg((-l) as usize - 1)
                }
            })
            .collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut sat = Cnf::new(1);
        sat.add_clause(clause(&[1]));
        assert!(solve(&sat).is_sat());

        let mut unsat = Cnf::new(1);
        unsat.add_clause(clause(&[1]));
        unsat.add_clause(clause(&[-1]));
        assert_eq!(solve(&unsat), Solution::Unsat);
    }

    #[test]
    fn empty_cnf_is_sat() {
        assert!(solve(&Cnf::new(3)).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![]);
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    #[test]
    fn models_actually_satisfy() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(clause(&[1, 2]));
        cnf.add_clause(clause(&[-1, 3]));
        cnf.add_clause(clause(&[-2, 4]));
        cnf.add_clause(clause(&[-3, -4]));
        match solve(&cnf) {
            Solution::Sat(m) => assert!(cnf.eval(&m)),
            Solution::Unsat => panic!("expected satisfiable"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let var = |i: usize, j: usize| i * 2 + j;
        let mut cnf = Cnf::new(6);
        for i in 0..3 {
            cnf.add_clause(vec![Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_clause(vec![Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        assert_eq!(solve(&cnf), Solution::Unsat);
    }

    /// Differential test against brute force on random 3-CNFs.
    #[test]
    fn random_cnfs_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..400 {
            let n = rng.gen_range(1..=8usize);
            let m = rng.gen_range(0..=(3 * n));
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let k = rng.gen_range(1..=3usize);
                let c: Vec<Lit> = (0..k)
                    .map(|_| {
                        let v = rng.gen_range(0..n);
                        if rng.gen_bool(0.5) {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                cnf.add_clause(c);
            }
            let brute = (0u32..(1 << n)).any(|mask| {
                let a: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                cnf.eval(&a)
            });
            let solved = solve(&cnf);
            assert_eq!(solved.is_sat(), brute, "cnf {cnf:?}");
            if let Solution::Sat(m) = solved {
                assert!(cnf.eval(&m));
            }
        }
    }

    /// Formula-level solving through Tseitin matches formula brute force.
    #[test]
    fn solve_formula_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let f = random_formula(&mut rng, 3);
            let n = f.num_vars();
            let brute = f.satisfiable_brute_force(n.clamp(1, 10)).is_some();
            let solved = solve_formula(&f);
            assert_eq!(solved.is_sat(), brute, "formula {f}");
            if let Solution::Sat(m) = solved {
                assert!(f.eval(&m) || n == 0);
            }
        }
    }

    fn random_formula(rng: &mut StdRng, depth: usize) -> Formula {
        if depth == 0 {
            return Formula::var(rng.gen_range(0..5));
        }
        match rng.gen_range(0..4) {
            0 => random_formula(rng, depth - 1).not(),
            1 => random_formula(rng, depth - 1).and(random_formula(rng, depth - 1)),
            2 => random_formula(rng, depth - 1).or(random_formula(rng, depth - 1)),
            _ => Formula::var(rng.gen_range(0..5)),
        }
    }

    #[test]
    fn tseitin_plus_dpll_on_deep_formula() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ ¬x2 ∧ ¬x1 is unsat.
        let f = Formula::var(0)
            .or(Formula::var(1))
            .and(Formula::var(0).not().or(Formula::var(2)))
            .and(Formula::var(2).not())
            .and(Formula::var(1).not());
        assert_eq!(solve(&tseitin(&f)), Solution::Unsat);
    }
}
