//! Complete model enumeration via DPLL with blocking clauses.
//!
//! The reduction tests need an oracle stronger than "is there a model":
//! the SAT gadget's answer set must be *exactly* the set of models
//! (Lemma G.1's interface). [`all_models`] enumerates every model of a
//! CNF restricted to a chosen prefix of "interesting" variables by
//! repeatedly solving and adding a clause blocking the found
//! restriction.

use crate::cnf::{Cnf, Lit};
use crate::dpll::{solve, Solution};
use crate::formula::Formula;
use std::collections::BTreeSet;

/// Enumerates the distinct restrictions to variables `0..num_vars` of
/// all models of `cnf`. The result is sorted (as bit-vectors).
///
/// Capped at `limit` models to keep runaway enumerations visible;
/// returns `None` if the cap is hit.
pub fn all_models(cnf: &Cnf, num_vars: usize, limit: usize) -> Option<BTreeSet<Vec<bool>>> {
    assert!(num_vars <= cnf.num_vars.max(num_vars));
    let mut working = cnf.clone();
    working.num_vars = working.num_vars.max(num_vars);
    let mut found = BTreeSet::new();
    loop {
        match solve(&working) {
            Solution::Unsat => return Some(found),
            Solution::Sat(model) => {
                let restricted: Vec<bool> = (0..num_vars)
                    .map(|v| model.get(v).copied().unwrap_or(false))
                    .collect();
                // Block this restriction.
                let clause: Vec<Lit> = restricted
                    .iter()
                    .enumerate()
                    .map(|(v, &b)| if b { Lit::neg(v) } else { Lit::pos(v) })
                    .collect();
                if clause.is_empty() {
                    // Zero interesting variables: one model class.
                    found.insert(Vec::new());
                    return Some(found);
                }
                working.add_clause(clause);
                found.insert(restricted);
                if found.len() > limit {
                    return None;
                }
            }
        }
    }
}

/// Enumerates all models of a formula over its first `num_vars`
/// variables (through the Tseitin transform).
pub fn all_models_formula(
    f: &Formula,
    num_vars: usize,
    limit: usize,
) -> Option<BTreeSet<Vec<bool>>> {
    // Tseitin allocates auxiliaries starting at `f.num_vars()`; when the
    // enumeration range is wider than the formula, pad the formula with
    // a tautology mentioning the last variable so the auxiliaries land
    // strictly above the range.
    let padded;
    let f = if num_vars > 0 && f.num_vars() < num_vars {
        let last = Formula::var(num_vars - 1);
        padded = f.clone().and(last.clone().or(last.not()));
        &padded
    } else {
        f
    };
    all_models(&crate::cnf::tseitin(f), num_vars, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_or() {
        let f = Formula::var(0).or(Formula::var(1));
        let models = all_models_formula(&f, 2, 100).unwrap();
        assert_eq!(models.len(), 3);
        assert!(!models.contains(&vec![false, false]));
    }

    #[test]
    fn enumerates_unsat_as_empty() {
        let f = Formula::var(0).and(Formula::var(0).not());
        assert_eq!(all_models_formula(&f, 1, 10).unwrap().len(), 0);
    }

    #[test]
    fn enumeration_matches_brute_force_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let f = random_formula(&mut rng, 3);
            let n = 4usize;
            let enumerated = all_models_formula(&f, n, 64).unwrap();
            let brute = f.count_models(n);
            assert_eq!(enumerated.len(), brute, "{f}");
            for m in &enumerated {
                assert!(f.eval(m), "{f} on {m:?}");
            }
        }
    }

    fn random_formula(rng: &mut rand::rngs::StdRng, depth: usize) -> Formula {
        use rand::Rng;
        if depth == 0 {
            return Formula::var(rng.gen_range(0..4));
        }
        match rng.gen_range(0..4) {
            0 => random_formula(rng, depth - 1).not(),
            1 => random_formula(rng, depth - 1).and(random_formula(rng, depth - 1)),
            2 => random_formula(rng, depth - 1).or(random_formula(rng, depth - 1)),
            _ => Formula::var(rng.gen_range(0..4)),
        }
    }

    #[test]
    fn cap_is_reported() {
        // A tautology over 6 variables has 64 models; cap at 10.
        assert_eq!(all_models_formula(&Formula::True, 6, 10), None);
    }

    #[test]
    fn zero_variables() {
        let models = all_models_formula(&Formula::True, 0, 10).unwrap();
        assert_eq!(models.len(), 1);
        assert!(models.contains(&Vec::new()));
    }
}
