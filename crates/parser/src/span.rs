//! Byte-offset spans over pattern source text.
//!
//! A [`Span`] is a half-open byte range `[start, end)` into the source
//! a pattern was parsed from; a [`SpanNode`] mirrors the shape of an
//! [`owql_algebra::pattern::Pattern`] so every algebra node can be
//! traced back to the text that produced it. Two constructions exist
//! and agree (property-tested in the parser):
//!
//! * [`crate::parser::parse_pattern_spanned`] records real spans while
//!   parsing, and
//! * [`SpanNode::synthesize`] re-derives them from the canonical
//!   `Display` rendering — the fallback for patterns built
//!   programmatically, so span-carrying diagnostics (owql-lint) work
//!   even without source text.

use owql_algebra::pattern::Pattern;
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The span tree of a pattern: one node per [`Pattern`] node, in the
/// same shape. Children follow the algebra's structure — binary
/// operators (`AND`/`UNION`/`OPT`/`MINUS`) carry `[left, right]`,
/// wrappers (`FILTER`/`SELECT`/`NS`) carry `[inner]`, and triple
/// patterns are leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The byte range this pattern node occupies.
    pub span: Span,
    /// Span trees of the node's sub-patterns.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Derives the span tree of `p`'s canonical rendering
    /// (`p.to_string()`), mirroring the `Display` grammar exactly.
    ///
    /// ```
    /// use owql_algebra::pattern::Pattern;
    /// use owql_parser::SpanNode;
    /// let p = Pattern::t("?x", "a", "b").and(Pattern::t("?x", "c", "?y"));
    /// let spans = SpanNode::synthesize(&p);
    /// let text = p.to_string();
    /// assert_eq!(&text[spans.children[0].span.start..spans.children[0].span.end],
    ///            "(?x, a, b)");
    /// ```
    pub fn synthesize(p: &Pattern) -> SpanNode {
        synth(p, 0)
    }
}

fn synth(p: &Pattern, start: usize) -> SpanNode {
    let span = Span::new(start, start + p.to_string().len());
    let children = match p {
        Pattern::Triple(_) => Vec::new(),
        Pattern::And(a, b) => binary(a, b, " AND ", start),
        Pattern::Union(a, b) => binary(a, b, " UNION ", start),
        Pattern::Opt(a, b) => binary(a, b, " OPT ", start),
        Pattern::Minus(a, b) => binary(a, b, " MINUS ", start),
        Pattern::Filter(q, _) => vec![synth(q, start + 1)],
        Pattern::Select(vs, q) => {
            let vars: usize = vs.iter().map(|v| v.to_string().len()).sum::<usize>()
                + vs.len().saturating_sub(1) * ", ".len();
            vec![synth(
                q,
                start + "(SELECT {".len() + vars + "} WHERE ".len(),
            )]
        }
        Pattern::Ns(q) => vec![synth(q, start + "NS(".len())],
    };
    SpanNode { span, children }
}

fn binary(a: &Pattern, b: &Pattern, op: &str, start: usize) -> Vec<SpanNode> {
    let left = synth(a, start + 1);
    let right = synth(b, left.span.end + op.len());
    vec![left, right]
}

/// Maps a byte offset to a 1-based `(line, column)` pair in `input`;
/// the column counts *characters* from the start of the line, so
/// multibyte input reports editor-style positions. Offsets past the end
/// (or mid-character, which token offsets never are) are clamped.
pub fn line_col(input: &str, offset: usize) -> (usize, usize) {
    let mut clamped = offset.min(input.len());
    while !input.is_char_boundary(clamped) {
        clamped -= 1;
    }
    let prefix = &input[..clamped];
    let line = prefix.matches('\n').count() + 1;
    let line_start = prefix.rfind('\n').map_or(0, |i| i + 1);
    let column = prefix[line_start..].chars().count() + 1;
    (line, column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;

    /// Every synthesized span slices the canonical rendering back to
    /// exactly that sub-pattern's own rendering.
    fn assert_spans_slice(p: &Pattern, node: &SpanNode, text: &str) {
        assert_eq!(&text[node.span.start..node.span.end], p.to_string());
        let subs: Vec<&Pattern> = match p {
            Pattern::Triple(_) => vec![],
            Pattern::And(a, b)
            | Pattern::Union(a, b)
            | Pattern::Opt(a, b)
            | Pattern::Minus(a, b) => vec![a, b],
            Pattern::Filter(q, _) => vec![q],
            Pattern::Select(_, q) | Pattern::Ns(q) => vec![q],
        };
        assert_eq!(subs.len(), node.children.len());
        for (sub, child) in subs.iter().zip(&node.children) {
            assert_spans_slice(sub, child, text);
        }
    }

    #[test]
    fn synthesized_spans_match_rendering() {
        for text in [
            "(?o, stands_for, sharing_rights)",
            "((?x, a, b) AND ((?y, c, ?z) UNION (?y, d, ?w)))",
            "(((?x, a, b) OPT (?x, c, ?y)) FILTER bound(?y))",
            "(SELECT {?x, ?y} WHERE NS(((?x, a, b) MINUS (?x, c, ?y))))",
            "(SELECT {} WHERE (?x, a, b))",
            "NS(NS((?x, <a b>, ?y)))",
        ] {
            let p = parse_pattern(text).unwrap();
            let rendered = p.to_string();
            assert_spans_slice(&p, &SpanNode::synthesize(&p), &rendered);
        }
    }

    #[test]
    fn line_col_is_one_based_and_char_counted() {
        assert_eq!(line_col("", 0), (1, 1));
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("abc", 3), (1, 4));
        let multi = "ab\ncd\ne";
        assert_eq!(line_col(multi, 3), (2, 1));
        assert_eq!(line_col(multi, 5), (2, 3));
        assert_eq!(line_col(multi, 6), (3, 1));
        // Multibyte: "é" is one column but two bytes.
        assert_eq!(line_col("(?é, >", 6), (1, 6));
        // Past-the-end offsets clamp.
        assert_eq!(line_col("ab", 99), (1, 3));
    }
}
