//! # owql-parser
//!
//! A lexer, recursive-descent parser, and (via `owql-algebra`'s
//! `Display` impls) pretty-printer for the paper-style surface syntax of
//! NS–SPARQL:
//!
//! ```text
//! (?o, stands_for, sharing_rights)
//! (P1 AND P2)   (P1 UNION P2)   (P1 OPT P2)   (P1 MINUS P2)
//! (P FILTER (bound(?X) || ?Y = c))
//! (SELECT {?x, ?y} WHERE P)
//! NS(P)
//! (CONSTRUCT {(?n, affiliated_to, ?u)} WHERE P)
//! ```
//!
//! The grammar is exactly the language produced by
//! `owql_algebra::Pattern`'s `Display`, so `parse(p.to_string()) == p`
//! for every pattern (round-trip property-tested). IRIs are bare words;
//! an IRI that collides with a keyword or contains delimiters can be
//! written in angle brackets: `<SELECT>`, `<a b>`.
//!
//! Spans survive the whole pipeline: every token records its byte
//! range, [`parse_pattern_spanned`] returns a [`SpanNode`] tree shaped
//! like the pattern, and [`ParseError`]s report line:column alongside
//! the raw byte offset (multi-line inputs included).

pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;

pub use lexer::{tokenize, tokenize_spanned, LexError, SpannedToken, Token};
pub use parser::{
    parse_condition, parse_construct, parse_pattern, parse_pattern_spanned, ParseError,
};
pub use pretty::{pretty, pretty_construct};
pub use span::{line_col, Span, SpanNode};
