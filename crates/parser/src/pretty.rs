//! Indented pretty-printing of patterns and CONSTRUCT queries.
//!
//! `Display` on `Pattern` emits the compact one-line paper notation
//! (and is what [`crate::parse_pattern`] round-trips). For large
//! patterns — NS-elimination outputs reach tens of thousands of nodes
//! (experiment E7) — the one-liner is unreadable; [`pretty`] renders
//! the same grammar with one operator per line and indentation, still
//! parseable by [`crate::parse_pattern`].

use owql_algebra::construct::ConstructQuery;
use owql_algebra::pattern::Pattern;
use std::fmt::Write;

const INDENT: &str = "  ";

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str(INDENT);
    }
}

fn walk(p: &Pattern, depth: usize, out: &mut String) {
    match p {
        Pattern::Triple(t) => {
            pad(out, depth);
            let _ = write!(out, "{t}");
        }
        Pattern::And(a, b) | Pattern::Union(a, b) | Pattern::Opt(a, b) | Pattern::Minus(a, b) => {
            let op = match p {
                Pattern::And(..) => "AND",
                Pattern::Union(..) => "UNION",
                Pattern::Opt(..) => "OPT",
                _ => "MINUS",
            };
            pad(out, depth);
            out.push('(');
            out.push('\n');
            walk(a, depth + 1, out);
            out.push('\n');
            pad(out, depth + 1);
            out.push_str(op);
            out.push('\n');
            walk(b, depth + 1, out);
            out.push('\n');
            pad(out, depth);
            out.push(')');
        }
        Pattern::Filter(q, r) => {
            pad(out, depth);
            out.push('(');
            out.push('\n');
            walk(q, depth + 1, out);
            out.push('\n');
            pad(out, depth + 1);
            let _ = write!(out, "FILTER {r}");
            out.push('\n');
            pad(out, depth);
            out.push(')');
        }
        Pattern::Select(vs, q) => {
            pad(out, depth);
            out.push_str("(SELECT {");
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("} WHERE\n");
            walk(q, depth + 1, out);
            out.push('\n');
            pad(out, depth);
            out.push(')');
        }
        Pattern::Ns(q) => {
            pad(out, depth);
            out.push_str("NS(\n");
            walk(q, depth + 1, out);
            out.push('\n');
            pad(out, depth);
            out.push(')');
        }
    }
}

/// Renders a pattern with one operator per line; the output parses
/// back to the same pattern.
pub fn pretty(p: &Pattern) -> String {
    let mut out = String::new();
    walk(p, 0, &mut out);
    out
}

/// Renders a CONSTRUCT query with the pattern pretty-printed.
pub fn pretty_construct(q: &ConstructQuery) -> String {
    let mut out = String::new();
    out.push_str("CONSTRUCT {");
    for (i, t) in q.template.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("} WHERE\n");
    walk(&q.pattern, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_construct, parse_pattern};
    use owql_algebra::analysis::Operators;
    use owql_algebra::random::{random_pattern, PatternConfig};

    #[test]
    fn pretty_is_indented() {
        let p = parse_pattern("(((?x, a, b) AND (?x, c, ?y)) OPT (?y, d, ?z))").unwrap();
        let text = pretty(&p);
        assert!(text.contains("\n"));
        assert!(text.contains("  AND"));
        assert!(text.contains("  OPT"));
    }

    #[test]
    fn pretty_roundtrips_random_patterns() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..200u64 {
            let p = random_pattern(&cfg, seed);
            let text = pretty(&p);
            let reparsed =
                parse_pattern(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(reparsed, p, "seed {seed}");
        }
    }

    #[test]
    fn pretty_construct_roundtrips() {
        let q = owql_algebra::construct::example_6_1();
        let text = pretty_construct(&q);
        assert_eq!(parse_construct(&text).unwrap(), q);
        assert!(text.contains("OPT"));
    }
}
