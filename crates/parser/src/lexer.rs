//! Tokenizer for the NS–SPARQL surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// A variable `?name`.
    Var(String),
    /// A bare word: IRI text or keyword (`AND`, `SELECT`, `bound`, ...).
    Word(String),
    /// An angle-quoted IRI `<text>` (always an IRI, never a keyword).
    QuotedIri(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIri(i) => write!(f, "<{i}>"),
        }
    }
}

/// A lexer error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// `true` for characters that may appear in a bare word (IRI/keyword).
fn is_word_char(c: char) -> bool {
    !c.is_whitespace() && !"(){},=!&|<>?".contains(c)
}

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                tokens.push(Token::Bang);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_word_char(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "'?' must be followed by a variable name".into(),
                    });
                }
                tokens.push(Token::Var(bytes[start..j].iter().collect()));
                i = j;
            }
            '<' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '>' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated '<' IRI".into(),
                    });
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "empty '<>' IRI".into(),
                    });
                }
                tokens.push(Token::QuotedIri(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            '>' => {
                return Err(LexError {
                    offset: i,
                    message: "unexpected '>'".into(),
                });
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_word_char(bytes[j]) {
                    j += 1;
                }
                debug_assert!(j > start);
                tokens.push(Token::Word(bytes[start..j].iter().collect()));
                i = j;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_triple_pattern() {
        let toks = tokenize("(?o, stands_for, sharing_rights)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Var("o".into()),
                Token::Comma,
                Token::Word("stands_for".into()),
                Token::Comma,
                Token::Word("sharing_rights".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_condition_symbols() {
        let toks = tokenize("(bound(?X) || !(?Y = c)) && true").unwrap();
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Bang));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::Word("true".into())));
    }

    #[test]
    fn tokenizes_quoted_iri() {
        let toks = tokenize("<has space> <SELECT>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::QuotedIri("has space".into()),
                Token::QuotedIri("SELECT".into()),
            ]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("& x").is_err());
        assert!(tokenize("| x").is_err());
        assert!(tokenize("? ").is_err());
        assert!(tokenize("<unterminated").is_err());
        assert!(tokenize("<>").is_err());
        assert!(tokenize(">").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let e = tokenize("abc &x").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
