//! Tokenizer for the NS–SPARQL surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// A variable `?name`.
    Var(String),
    /// A bare word: IRI text or keyword (`AND`, `SELECT`, `bound`, ...).
    Word(String),
    /// An angle-quoted IRI `<text>` (always an IRI, never a keyword).
    QuotedIri(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIri(i) => write!(f, "<{i}>"),
        }
    }
}

/// A lexer error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// A token plus the byte range it occupies in the input — the span
/// information parse errors and the span-building parser report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character in the input.
    pub offset: usize,
    /// Byte offset one past the token's last character, so the token's
    /// text is `input[offset..end]`.
    pub end: usize,
}

/// `true` for characters that may appear in a bare word (IRI/keyword).
fn is_word_char(c: char) -> bool {
    !c.is_whitespace() && !"(){},=!&|<>?".contains(c)
}

/// Tokenizes `input`, discarding span information.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    Ok(tokenize_spanned(input)?
        .into_iter()
        .map(|st| st.token)
        .collect())
}

/// Tokenizes `input`, tagging every token with its starting byte
/// offset. All offsets — including [`LexError::offset`] — are *byte*
/// offsets into the original string, so callers can echo them against
/// the wire input directly.
pub fn tokenize_spanned(input: &str) -> Result<Vec<SpannedToken>, LexError> {
    // (byte offset, char) pairs; `at(j)` maps a char index back to its
    // byte offset (or the input length past the end).
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let at = |j: usize| chars.get(j).map_or(input.len(), |&(o, _)| o);
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let (offset, c) = chars[i];
        let mut push = |token: Token, next: usize| {
            tokens.push(SpannedToken {
                token,
                offset,
                end: at(next),
            });
            next
        };
        i = match c {
            c if c.is_whitespace() => i + 1,
            '(' => push(Token::LParen, i + 1),
            ')' => push(Token::RParen, i + 1),
            '{' => push(Token::LBrace, i + 1),
            '}' => push(Token::RBrace, i + 1),
            ',' => push(Token::Comma, i + 1),
            '=' => push(Token::Eq, i + 1),
            '!' => push(Token::Bang, i + 1),
            '&' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('&') {
                    push(Token::AndAnd, i + 2)
                } else {
                    return Err(LexError {
                        offset,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('|') {
                    push(Token::OrOr, i + 2)
                } else {
                    return Err(LexError {
                        offset,
                        message: "expected '||'".into(),
                    });
                }
            }
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && is_word_char(chars[j].1) {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset,
                        message: "'?' must be followed by a variable name".into(),
                    });
                }
                push(Token::Var(input[at(start)..at(j)].to_owned()), j)
            }
            '<' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j].1 != '>' {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(LexError {
                        offset,
                        message: "unterminated '<' IRI".into(),
                    });
                }
                if j == start {
                    return Err(LexError {
                        offset,
                        message: "empty '<>' IRI".into(),
                    });
                }
                push(Token::QuotedIri(input[at(start)..at(j)].to_owned()), j + 1)
            }
            '>' => {
                return Err(LexError {
                    offset,
                    message: "unexpected '>'".into(),
                });
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < chars.len() && is_word_char(chars[j].1) {
                    j += 1;
                }
                debug_assert!(j > start);
                push(Token::Word(input[at(start)..at(j)].to_owned()), j)
            }
        };
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_triple_pattern() {
        let toks = tokenize("(?o, stands_for, sharing_rights)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Var("o".into()),
                Token::Comma,
                Token::Word("stands_for".into()),
                Token::Comma,
                Token::Word("sharing_rights".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_condition_symbols() {
        let toks = tokenize("(bound(?X) || !(?Y = c)) && true").unwrap();
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Bang));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::Word("true".into())));
    }

    #[test]
    fn tokenizes_quoted_iri() {
        let toks = tokenize("<has space> <SELECT>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::QuotedIri("has space".into()),
                Token::QuotedIri("SELECT".into()),
            ]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("& x").is_err());
        assert!(tokenize("| x").is_err());
        assert!(tokenize("? ").is_err());
        assert!(tokenize("<unterminated").is_err());
        assert!(tokenize("<>").is_err());
        assert!(tokenize(">").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let e = tokenize("abc &x").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    /// Every token's `[offset, end)` range slices back to exactly the
    /// text it was lexed from — including multibyte input.
    #[test]
    fn spans_slice_back_to_token_text() {
        let input = "(?élan, <a b>, wörd) && ?x";
        for st in tokenize_spanned(input).unwrap() {
            let text = &input[st.offset..st.end];
            match &st.token {
                Token::Var(v) => assert_eq!(text, format!("?{v}")),
                Token::QuotedIri(i) => assert_eq!(text, format!("<{i}>")),
                other => assert_eq!(text, other.to_string()),
            }
        }
        // The last token of the input ends at the input length.
        let toks = tokenize_spanned(input).unwrap();
        assert_eq!(toks.last().unwrap().end, input.len());
    }
}
