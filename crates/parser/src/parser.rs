//! Recursive-descent parser for NS–SPARQL patterns, conditions, and
//! CONSTRUCT queries.

use crate::lexer::{tokenize_spanned, LexError, SpannedToken, Token};
use crate::span::{line_col, Span, SpanNode};
use owql_algebra::condition::Condition;
use owql_algebra::construct::ConstructQuery;
use owql_algebra::pattern::{Pattern, TermPattern, TriplePattern};
use owql_algebra::variable::Variable;
use owql_rdf::Iri;
use std::fmt;

/// A parse error with a byte-offset span and its line/column position.
///
/// The offset points into the *original input string* (for an
/// unexpected-end-of-input error it is the input length), and the
/// `Display` rendering — `parse error at byte N (line L, column C): ...`
/// — is what the HTTP server echoes back verbatim in `400` bodies, so
/// clients can point at the offending position without any extra
/// bookkeeping. Line and column are 1-based and computed against the
/// original input, so they stay correct for multi-line patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token (input length at EOF).
    pub offset: usize,
    /// 1-based line of the offending token (0 until located against
    /// the input; every public entry point locates).
    pub line: usize,
    /// 1-based character column of the offending token within its line
    /// (0 until located).
    pub column: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            line: 0,
            column: 0,
            message: message.into(),
        }
    }

    /// Fills [`ParseError::line`]/[`ParseError::column`] from the
    /// source text the offset points into.
    fn located(mut self, input: &str) -> ParseError {
        let (line, column) = line_col(input, self.offset);
        self.line = line;
        self.column = column;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at byte {} (line {}, column {}): {}",
                self.offset, self.line, self.column, self.message
            )
        } else {
            write!(f, "parse error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.offset, e.message)
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    /// Byte length of the input — the offset reported at end-of-input.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|st| &st.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|st| &st.token)
    }

    /// Byte offset of the current token (input length at EOF).
    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.end, |st| st.offset)
    }

    /// A parse error anchored at the current token.
    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), message)
    }

    /// A parse error anchored at the *previous* (just-consumed) token.
    fn err_prev(&self, message: impl Into<String>) -> ParseError {
        let offset = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map_or(self.end, |st| st.offset);
        ParseError::new(offset, message)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|st| st.token.clone())
            .ok_or_else(|| self.err_here("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t == expected {
            Ok(())
        } else {
            Err(self.err_prev(format!("expected '{expected}', found '{t}'")))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Word(w) if w == word => Ok(()),
            t => Err(self.err_prev(format!("expected '{word}', found '{t}'"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Byte end of the *previous* (just-consumed) token — the end of
    /// whatever construct that token closed.
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            self.end
        } else {
            self.tokens.get(self.pos - 1).map_or(self.end, |st| st.end)
        }
    }

    /// A leaf span node covering `start` through the last consumed
    /// token.
    fn leaf(&self, start: usize) -> SpanNode {
        SpanNode {
            span: Span::new(start, self.prev_end()),
            children: Vec::new(),
        }
    }

    /// A term: variable, bare word, or quoted IRI.
    fn term(&mut self) -> Result<TermPattern, ParseError> {
        match self.next()? {
            Token::Var(v) => Ok(TermPattern::Var(Variable::new(&v))),
            Token::Word(w) => Ok(TermPattern::Iri(Iri::new(&w))),
            Token::QuotedIri(i) => Ok(TermPattern::Iri(Iri::new(&i))),
            t => Err(self.err_prev(format!("expected a term, found '{t}'"))),
        }
    }

    /// A triple pattern body after the opening paren: `t, t, t)`.
    fn triple_tail(&mut self) -> Result<TriplePattern, ParseError> {
        let s = self.term()?;
        self.expect(&Token::Comma)?;
        let p = self.term()?;
        self.expect(&Token::Comma)?;
        let o = self.term()?;
        self.expect(&Token::RParen)?;
        Ok(TriplePattern { s, p, o })
    }

    /// A graph pattern, paired with its span tree.
    fn pattern(&mut self) -> Result<(Pattern, SpanNode), ParseError> {
        match self.peek() {
            Some(Token::Word(w)) if w == "NS" => {
                let start = self.offset();
                self.next()?;
                self.expect(&Token::LParen)?;
                let (inner, inner_node) = self.pattern()?;
                self.expect(&Token::RParen)?;
                Ok((
                    inner.ns(),
                    SpanNode {
                        span: Span::new(start, self.prev_end()),
                        children: vec![inner_node],
                    },
                ))
            }
            Some(Token::LParen) => {
                let start = self.offset();
                self.next()?;
                self.paren_tail(start)
            }
            Some(t) => {
                let msg = format!("expected a pattern, found '{t}'");
                Err(self.err_here(msg))
            }
            None => Err(self.err_here("expected a pattern, found end of input")),
        }
    }

    /// After consuming `(` (which started at byte `start`): a triple
    /// pattern, a SELECT, or a binary compound.
    fn paren_tail(&mut self, start: usize) -> Result<(Pattern, SpanNode), ParseError> {
        // SELECT?
        if let Some(Token::Word(w)) = self.peek() {
            if w == "SELECT" {
                self.next()?;
                let vars = self.var_set()?;
                self.expect_word("WHERE")?;
                let (inner, inner_node) = self.pattern()?;
                self.expect(&Token::RParen)?;
                return Ok((
                    Pattern::Select(vars, Box::new(inner)),
                    SpanNode {
                        span: Span::new(start, self.prev_end()),
                        children: vec![inner_node],
                    },
                ));
            }
            if w != "NS" {
                // A bare word here must start a triple pattern.
                let t = self.triple_tail()?;
                return Ok((Pattern::Triple(t), self.leaf(start)));
            }
        }
        // Variable or quoted IRI starts a triple pattern.
        if matches!(self.peek(), Some(Token::Var(_)) | Some(Token::QuotedIri(_))) {
            let t = self.triple_tail()?;
            return Ok((Pattern::Triple(t), self.leaf(start)));
        }
        // Otherwise: a compound `(P op P)` or `(P FILTER R)`.
        let (left, left_node) = self.pattern()?;
        let op = self.next()?;
        let (result, children) = match op {
            Token::Word(w) => match w.as_str() {
                "AND" => {
                    let (right, right_node) = self.pattern()?;
                    (left.and(right), vec![left_node, right_node])
                }
                "UNION" => {
                    let (right, right_node) = self.pattern()?;
                    (left.union(right), vec![left_node, right_node])
                }
                "OPT" => {
                    let (right, right_node) = self.pattern()?;
                    (left.opt(right), vec![left_node, right_node])
                }
                "MINUS" => {
                    let (right, right_node) = self.pattern()?;
                    (left.minus(right), vec![left_node, right_node])
                }
                "FILTER" => (left.filter(self.condition()?), vec![left_node]),
                other => {
                    return Err(self.err_prev(format!(
                        "expected AND/UNION/OPT/MINUS/FILTER, found '{other}'"
                    )))
                }
            },
            t => return Err(self.err_prev(format!("expected an operator keyword, found '{t}'"))),
        };
        self.expect(&Token::RParen)?;
        Ok((
            result,
            SpanNode {
                span: Span::new(start, self.prev_end()),
                children,
            },
        ))
    }

    /// `{?x, ?y, ...}` (possibly empty).
    fn var_set(&mut self) -> Result<std::collections::BTreeSet<Variable>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut vars = std::collections::BTreeSet::new();
        if self.peek() == Some(&Token::RBrace) {
            self.next()?;
            return Ok(vars);
        }
        loop {
            match self.next()? {
                Token::Var(v) => {
                    vars.insert(Variable::new(&v));
                }
                t => return Err(self.err_prev(format!("expected a variable, found '{t}'"))),
            }
            match self.next()? {
                Token::Comma => {}
                Token::RBrace => break,
                t => return Err(self.err_prev(format!("expected ',' or '}}', found '{t}'"))),
            }
        }
        Ok(vars)
    }

    /// A condition (precedence: `!` > `&&` > `||`; both binary
    /// operators associate to the left).
    fn condition(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.cond_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.next()?;
            left = left.or(self.cond_and()?);
        }
        Ok(left)
    }

    fn cond_and(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.cond_unary()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.next()?;
            left = left.and(self.cond_unary()?);
        }
        Ok(left)
    }

    fn cond_unary(&mut self) -> Result<Condition, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.next()?;
                Ok(self.cond_unary()?.not())
            }
            Some(Token::LParen) => {
                self.next()?;
                let inner = self.condition()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            _ => self.cond_atom(),
        }
    }

    fn cond_atom(&mut self) -> Result<Condition, ParseError> {
        match self.next()? {
            Token::Word(w) if w == "true" => Ok(Condition::True),
            Token::Word(w) if w == "false" => Ok(Condition::False),
            Token::Word(w) if w == "bound" => {
                self.expect(&Token::LParen)?;
                let v = match self.next()? {
                    Token::Var(v) => Variable::new(&v),
                    t => return Err(self.err_prev(format!("expected a variable, found '{t}'"))),
                };
                self.expect(&Token::RParen)?;
                Ok(Condition::Bound(v))
            }
            Token::Var(v) => {
                self.expect(&Token::Eq)?;
                let left = Variable::new(&v);
                match self.next()? {
                    Token::Var(w) => Ok(Condition::EqVar(left, Variable::new(&w))),
                    Token::Word(c) => Ok(Condition::EqConst(left, Iri::new(&c))),
                    Token::QuotedIri(c) => Ok(Condition::EqConst(left, Iri::new(&c))),
                    t => Err(self.err_prev(format!("expected a term, found '{t}'"))),
                }
            }
            t => Err(self.err_prev(format!("expected a condition atom, found '{t}'"))),
        }
    }

    /// `(CONSTRUCT {t, t, ...} WHERE P)` — outer parens optional.
    fn construct(&mut self) -> Result<ConstructQuery, ParseError> {
        let parenthesized = if self.peek() == Some(&Token::LParen)
            && matches!(self.peek2(), Some(Token::Word(w)) if w == "CONSTRUCT")
        {
            self.next()?;
            true
        } else {
            false
        };
        self.expect_word("CONSTRUCT")?;
        self.expect(&Token::LBrace)?;
        let mut template = Vec::new();
        if self.peek() == Some(&Token::RBrace) {
            self.next()?;
        } else {
            loop {
                self.expect(&Token::LParen)?;
                template.push(self.triple_tail()?);
                match self.next()? {
                    Token::Comma => {}
                    Token::RBrace => break,
                    t => return Err(self.err_prev(format!("expected ',' or '}}', found '{t}'"))),
                }
            }
        }
        self.expect_word("WHERE")?;
        let (pattern, _) = self.pattern()?;
        if parenthesized {
            self.expect(&Token::RParen)?;
        }
        Ok(ConstructQuery::new(template, pattern))
    }
}

fn finish<T>(mut p: Parser, value: T) -> Result<T, ParseError> {
    if p.at_end() {
        Ok(value)
    } else {
        let offset = p.offset();
        let t = p.next().expect("not at end");
        Err(ParseError::new(
            offset,
            format!("unexpected trailing token '{t}'"),
        ))
    }
}

/// Parses a graph pattern.
///
/// ```
/// use owql_parser::parse_pattern;
/// let p = parse_pattern("((?X, was_born_in, Chile) OPT (?X, email, ?Y))").unwrap();
/// assert_eq!(p.to_string(), "((?X, was_born_in, Chile) OPT (?X, email, ?Y))");
/// ```
pub fn parse_pattern(input: &str) -> Result<Pattern, ParseError> {
    Ok(parse_pattern_spanned(input)?.0)
}

/// Parses a graph pattern along with its [`SpanNode`] span tree — one
/// span per algebra node, pointing back into `input`, in the same shape
/// as the pattern. This is what span-carrying diagnostics (owql-lint)
/// consume.
///
/// ```
/// use owql_parser::parse_pattern_spanned;
/// let text = "((?x, a, b) OPT (?x, c, ?y))";
/// let (p, spans) = parse_pattern_spanned(text).unwrap();
/// assert_eq!(&text[spans.span.start..spans.span.end], text);
/// let left = &spans.children[0];
/// assert_eq!(&text[left.span.start..left.span.end], "(?x, a, b)");
/// assert_eq!(p.to_string(), text);
/// ```
pub fn parse_pattern_spanned(input: &str) -> Result<(Pattern, SpanNode), ParseError> {
    let parse = || {
        let mut parser = Parser {
            tokens: tokenize_spanned(input)?,
            pos: 0,
            end: input.len(),
        };
        let p = parser.pattern()?;
        finish(parser, p)
    };
    parse().map_err(|e| e.located(input))
}

/// Parses a built-in condition.
pub fn parse_condition(input: &str) -> Result<Condition, ParseError> {
    let parse = || {
        let mut parser = Parser {
            tokens: tokenize_spanned(input)?,
            pos: 0,
            end: input.len(),
        };
        let c = parser.condition()?;
        finish(parser, c)
    };
    parse().map_err(|e| e.located(input))
}

/// Parses a CONSTRUCT query.
pub fn parse_construct(input: &str) -> Result<ConstructQuery, ParseError> {
    let parse = || {
        let mut parser = Parser {
            tokens: tokenize_spanned(input)?,
            pos: 0,
            end: input.len(),
        };
        let q = parser.construct()?;
        finish(parser, q)
    };
    parse().map_err(|e| e.located(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_algebra::analysis::Operators;
    use owql_algebra::random::{random_pattern, PatternConfig};

    #[test]
    fn parses_triple_pattern() {
        let p = parse_pattern("(?o, stands_for, sharing_rights)").unwrap();
        assert_eq!(p, Pattern::t("?o", "stands_for", "sharing_rights"));
    }

    #[test]
    fn parses_example_2_2() {
        let text = "(SELECT {?p} WHERE ((?o, stands_for, sharing_rights) AND ((?p, founder, ?o) UNION (?p, supporter, ?o))))";
        let p = parse_pattern(text).unwrap();
        assert_eq!(p.to_string(), text);
    }

    #[test]
    fn parses_ns_and_minus() {
        let p = parse_pattern("NS(((?x, a, b) MINUS (?x, c, ?y)))").unwrap();
        assert_eq!(
            p,
            Pattern::t("?x", "a", "b")
                .minus(Pattern::t("?x", "c", "?y"))
                .ns()
        );
    }

    #[test]
    fn parses_filter_conditions() {
        let c = parse_condition("(bound(?X) || !(?Y = c)) && ?Z = ?W").unwrap();
        assert_eq!(
            c,
            Condition::bound("X")
                .or(Condition::eq_const("Y", "c").not())
                .and(Condition::eq_var("Z", "W"))
        );
        assert_eq!(parse_condition("true").unwrap(), Condition::True);
        assert_eq!(parse_condition("false").unwrap(), Condition::False);
    }

    #[test]
    fn condition_precedence() {
        // && binds tighter than ||.
        let c = parse_condition("bound(?a) || bound(?b) && bound(?c)").unwrap();
        assert_eq!(
            c,
            Condition::bound("a").or(Condition::bound("b").and(Condition::bound("c")))
        );
    }

    #[test]
    fn parses_quoted_keyword_iri() {
        let p = parse_pattern("(<SELECT>, <AND>, <a b>)").unwrap();
        assert_eq!(p, Pattern::t("SELECT", "AND", "a b"));
    }

    #[test]
    fn parses_empty_select() {
        let p = parse_pattern("(SELECT {} WHERE (?x, a, b))").unwrap();
        assert_eq!(p, Pattern::t("?x", "a", "b").select(Vec::<Variable>::new()));
    }

    #[test]
    fn parses_construct_example_6_1() {
        let q = owql_algebra::construct::example_6_1();
        let reparsed = parse_construct(&q.to_string()).unwrap();
        assert_eq!(reparsed, q);
        // And without the outer parens.
        let bare = parse_construct(
            "CONSTRUCT {(?n, affiliated_to, ?u), (?n, email, ?e)} WHERE (((?p, name, ?n) AND (?p, works_at, ?u)) OPT (?p, email, ?e))",
        )
        .unwrap();
        assert_eq!(bare, q);
    }

    #[test]
    fn parses_empty_template() {
        let q = parse_construct("CONSTRUCT {} WHERE (?x, a, b)").unwrap();
        assert!(q.template.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_pattern("(?x, a)").is_err());
        assert!(parse_pattern("(?x, a, b) extra").is_err());
        assert!(parse_pattern("((?x, a, b) XOR (?y, c, d))").is_err());
        assert!(parse_pattern("NS(?x, a, b)").is_err());
        assert!(parse_pattern("").is_err());
        assert!(parse_condition("bound(x)").is_err()); // needs a variable
        assert!(parse_construct("CONSTRUCT {(?x, a, b) WHERE (?x, a, b)").is_err());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = parse_pattern("((?x, a, b) XOR (?y, c, d))").unwrap_err();
        assert!(e.to_string().contains("XOR"));
    }

    /// Errors carry the byte offset of the offending token, and the
    /// `Display` rendering names it — the `400` body contract.
    #[test]
    fn error_offsets_point_at_the_problem() {
        // `XOR` starts at byte 12.
        let e = parse_pattern("((?x, a, b) XOR (?y, c, d))").unwrap_err();
        assert_eq!(e.offset, 12);
        assert!(e
            .to_string()
            .starts_with("parse error at byte 12 (line 1, column 13):"));

        // Truncated input: the offset is the input length.
        let input = "((?x, a, b) AND ";
        let e = parse_pattern(input).unwrap_err();
        assert_eq!(e.offset, input.len());
        assert!(e.message.contains("end of input"));

        // Empty input.
        let e = parse_pattern("").unwrap_err();
        assert_eq!(e.offset, 0);

        // Trailing garbage: offset of the first extra token.
        let e = parse_pattern("(?x, a, b) extra").unwrap_err();
        assert_eq!(e.offset, 11);

        // Lex errors flow through with their byte offset.
        let e = parse_pattern("(?x, a, >)").unwrap_err();
        assert_eq!(e.offset, 8);

        // Offsets are *byte* offsets even after multibyte characters:
        // "é" is two bytes, so `>` at char 5 sits at byte 6 — but the
        // column counts characters, so it reports column 6.
        let e = parse_pattern("(?é, >").unwrap_err();
        assert_eq!(e.offset, 6);
        assert_eq!((e.line, e.column), (1, 6));
    }

    /// Multi-line inputs report the line and column of the offending
    /// token alongside the raw byte offset.
    #[test]
    fn errors_locate_line_and_column_in_multiline_input() {
        let input = "((?x, a, b)\n  XOR\n  (?y, c, d))";
        let e = parse_pattern(input).unwrap_err();
        assert_eq!(e.offset, 14); // byte offset of `XOR`
        assert_eq!((e.line, e.column), (2, 3));
        assert!(e
            .to_string()
            .starts_with("parse error at byte 14 (line 2, column 3):"));

        // End-of-input errors point one past the last line's text.
        let input = "((?x, a, b)\n  AND ";
        let e = parse_pattern(input).unwrap_err();
        assert_eq!(e.offset, input.len());
        assert_eq!((e.line, e.column), (2, 7));

        // Lex errors are located too.
        let e = parse_pattern("(?x,\n >)").unwrap_err();
        assert_eq!((e.line, e.column), (2, 2));
    }

    /// The parser-recorded span tree agrees with the spans synthesized
    /// from the canonical rendering, on random patterns over the full
    /// operator set.
    #[test]
    fn parsed_spans_agree_with_synthesized_spans() {
        use crate::span::SpanNode;
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..200u64 {
            let p = random_pattern(&cfg, seed);
            let text = p.to_string();
            let (reparsed, spans) = parse_pattern_spanned(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: failed to parse {text}: {e}"));
            assert_eq!(reparsed, p, "seed {seed}");
            assert_eq!(spans, SpanNode::synthesize(&p), "seed {seed}: {text}");
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2000))]

        /// Totality fuzz: the parser never panics — any input returns
        /// `Ok` or a `ParseError` whose offset stays within the input.
        #[test]
        fn fuzz_parser_is_total(input in "[(){},=!&|<>? a-zA-Z?_\u{e9}]{0,40}") {
            match parse_pattern(&input) {
                Ok(p) => {
                    // Whatever parses must round-trip through Display.
                    let reparsed = parse_pattern(&p.to_string());
                    prop_assert_eq!(reparsed.as_ref(), Ok(&p));
                }
                Err(e) => prop_assert!(e.offset <= input.len()),
            }
            let _ = parse_condition(&input).map_err(|e| e.offset);
            let _ = parse_construct(&input).map_err(|e| e.offset);
        }
    }

    /// The round-trip property: display-then-parse is the identity on
    /// 500 random patterns across the full NS–SPARQL operator set.
    #[test]
    fn roundtrip_random_patterns() {
        let cfg = PatternConfig {
            allowed: Operators::NS_SPARQL.with(Operators::MINUS),
            max_depth: 4,
            ..PatternConfig::standard(4, 4)
        };
        for seed in 0..500u64 {
            let p = random_pattern(&cfg, seed);
            let text = p.to_string();
            let reparsed = parse_pattern(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: failed to parse {text}: {e}"));
            assert_eq!(reparsed, p, "seed {seed}: {text}");
        }
    }
}
