//! # owql-store
//!
//! A versioned, concurrent triple store for the OWQL engine, marrying
//! the paper's static-graph semantics with a mutable world:
//!
//! - **Epochs** — every state-changing [`Store::commit`] bumps a
//!   monotonic epoch counter; the epoch names a graph version.
//! - **Snapshots** — [`Store::snapshot`] returns an `O(1)`,
//!   `Arc`-backed [`Snapshot`] pinned to the current epoch. Readers
//!   evaluate OWQL patterns against it (certain answers under
//!   open-world `AND`/`UNION`, maximal answers under closed-world
//!   `NS`) while writers keep committing — answers never shift under
//!   a running query.
//! - **Incremental indexing** — mutations land in a small delta
//!   overlay ([`owql_rdf::SnapshotIndex`]: base minus net-deletes plus
//!   net-adds); once the overlay outgrows a threshold, compaction
//!   folds it into a fresh base [`owql_rdf::GraphIndex`]. No full
//!   rebuild per write.
//! - **Epoch-keyed query cache** — [`Store::query`] canonicalizes the
//!   pattern (UNION normal form where tractable, see [`cache_key`])
//!   and caches `MappingSet` results keyed by `(pattern, epoch)`. A
//!   write bumps the epoch and thereby invalidates every cached entry
//!   implicitly; hit/miss/eviction counters are exposed via
//!   [`Store::cache_stats`].
//! - **Durability** — [`Store::open`] puts the store on a data
//!   directory: every commit is logged to a checksummed write-ahead
//!   log (fsync'd before its epoch is published), a background indexer
//!   checkpoints the snapshot into binary segment generations, and
//!   reopening the directory recovers the last fully-committed epoch
//!   even after `kill -9` (see `owql-persist` and DESIGN.md §12).
//!
//! ```
//! use owql_rdf::Triple;
//! use owql_algebra::pattern::Pattern;
//! use owql_store::Store;
//!
//! let store = Store::new();
//! let mut tx = store.begin();
//! tx.insert(Triple::new("Juan", "was_born_in", "Chile"));
//! tx.insert(Triple::new("Chile", "is_in", "SouthAmerica"));
//! store.commit(tx);
//!
//! let p = Pattern::t("?x", "was_born_in", "?c").and(Pattern::t("?c", "is_in", "?r"));
//! assert_eq!(store.query(&p).len(), 1);   // cold: evaluated, cached
//! assert_eq!(store.query(&p).len(), 1);   // warm: served from cache
//! assert_eq!(store.cache_stats().hits, 1);
//! ```

pub mod cache;
pub mod store;

pub use cache::{cache_key, CacheStats, QueryCache};
pub use owql_persist::{segment_path, PersistConfig, RecoveryReport, WAL_FILE};
pub use store::{
    CheckpointSummary, CommitSummary, DeltaOp, LogEntry, PersistMetrics, QueryOutcome,
    QueryRequest, ShardRuntime, Snapshot, Store, StoreMetrics, StoreOptions, Transaction,
};
