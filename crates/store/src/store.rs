//! The versioned, concurrent triple store.
//!
//! A [`Store`] holds an immutable `Arc`-shared base [`GraphIndex`] plus
//! a small mutable overlay (net-added and net-deleted triples) and an
//! ordered delta log. Mutations are batched into [`Transaction`]s;
//! committing a batch that changes anything bumps a monotonically
//! increasing **epoch**. Readers take [`Snapshot`]s — three `Arc`
//! clones — and evaluate queries against them while writers proceed;
//! a snapshot keeps answering from the state it captured forever
//! (epoch isolation).
//!
//! When the overlay outgrows `max(min_compact, compact_fraction ×
//! |base|)`, the commit folds it into a fresh base index (**delta
//! compaction**) — replacing the seed's full `O(|G|)` index rebuild on
//! *every* `Engine::new` with an amortized, threshold-driven one.

use crate::cache::{cache_key, CacheStats, QueryCache};
use owql_algebra::mapping_set::MappingSet;
use owql_algebra::pattern::Pattern;
use owql_eval::{Engine, EvalError, ExecOpts};
use owql_exec::Pool;
use owql_obs::{Profile, StoreObs};
use owql_rdf::{Graph, GraphIndex, SnapshotIndex, Triple, TripleLookup};
use std::collections::HashSet;
use std::ops::Deref;
use std::sync::{Arc, RwLock};

/// Expect-message for unwrapping requests made without a deadline.
const NO_BUDGET: &str = "unlimited budget cannot time out";

/// One query, fully described: the pattern plus the execution options.
///
/// This is the wire-level unit of the unified API — the HTTP server
/// builds one per request, `Store::query_request` answers it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// The NS–SPARQL graph pattern to evaluate.
    pub pattern: Pattern,
    /// How to run it (scheduling, tracing, cache, deadline).
    pub opts: ExecOpts,
}

impl QueryRequest {
    /// A request with default (sequential, cached) options.
    pub fn new(pattern: Pattern) -> QueryRequest {
        QueryRequest {
            pattern,
            opts: ExecOpts::seq(),
        }
    }

    /// A request with explicit options.
    pub fn with_opts(pattern: Pattern, opts: ExecOpts) -> QueryRequest {
        QueryRequest { pattern, opts }
    }
}

/// What answering a [`QueryRequest`] produced.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The answer set `⟦P⟧G` at `epoch`.
    pub mappings: MappingSet,
    /// The recorded profile — `Some` iff the request asked for tracing.
    pub profile: Option<Profile>,
    /// The epoch the answer is consistent with (the snapshot the
    /// evaluation pinned).
    pub epoch: u64,
    /// `true` iff the answer came from the epoch-keyed query cache.
    pub cache_hit: bool,
}

/// Tuning knobs for a [`Store`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Compaction never triggers below this overlay size.
    pub min_compact: usize,
    /// Compaction triggers once `|delta| > compact_fraction × |base|`
    /// (and `|delta| > min_compact`).
    pub compact_fraction: f64,
    /// Capacity of the epoch-keyed LRU query cache (0 disables it).
    pub cache_capacity: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            min_compact: 1024,
            compact_fraction: 0.25,
            cache_capacity: 256,
        }
    }
}

/// One mutation in a transaction / the delta log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add a triple (no-op if already present).
    Insert(Triple),
    /// Remove a triple (no-op if absent).
    Delete(Triple),
}

/// A delta-log record: the op plus the epoch whose commit applied it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Epoch the op became visible at.
    pub epoch: u64,
    /// The applied mutation.
    pub op: DeltaOp,
}

/// A batch of mutations, applied atomically by [`Store::commit`].
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    ops: Vec<DeltaOp>,
}

impl Transaction {
    /// An empty batch.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Queues an insertion.
    pub fn insert(&mut self, t: Triple) -> &mut Self {
        self.ops.push(DeltaOp::Insert(t));
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, t: Triple) -> &mut Self {
        self.ops.push(DeltaOp::Delete(t));
        self
    }

    /// Queues every triple of `graph` for insertion.
    pub fn insert_graph(&mut self, graph: &Graph) -> &mut Self {
        for &t in graph.iter() {
            self.insert(t);
        }
        self
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff no op is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What a commit did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitSummary {
    /// The epoch after the commit (unchanged if nothing applied).
    pub epoch: u64,
    /// Ops that actually changed the store (duplicates and misses
    /// don't count).
    pub applied: usize,
    /// Whether this commit folded the delta into a fresh base.
    pub compacted: bool,
}

/// Aggregate store state, for monitoring and the bench harness.
#[derive(Clone, Copy, Debug)]
pub struct StoreMetrics {
    /// Current epoch.
    pub epoch: u64,
    /// Triples visible to a fresh snapshot.
    pub len: usize,
    /// Triples in the shared base index.
    pub base_len: usize,
    /// Overlay size (`|adds| + |dels|`).
    pub delta_len: usize,
    /// Compactions performed so far.
    pub compactions: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
}

#[derive(Debug)]
struct StoreInner {
    base: Arc<GraphIndex>,
    /// Net additions (disjoint from `base`), incrementally indexed.
    adds: Arc<GraphIndex>,
    /// Net deletions (subset of `base`).
    dels: Arc<HashSet<Triple>>,
    epoch: u64,
    /// Ordered mutation log since the last compaction.
    log: Vec<LogEntry>,
    compactions: u64,
}

impl StoreInner {
    fn visible(&self, t: &Triple) -> bool {
        (self.base.contains(t) && !self.dels.contains(t)) || self.adds.contains(t)
    }

    fn snapshot_index(&self) -> SnapshotIndex {
        SnapshotIndex::new(self.base.clone(), self.adds.clone(), self.dels.clone())
    }
}

/// An immutable point-in-time view of a [`Store`].
///
/// Derefs to [`SnapshotIndex`], so it plugs directly into
/// [`Engine::for_snapshot`] (or use the [`Snapshot::engine`] /
/// [`Snapshot::query_request`] conveniences).
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    index: SnapshotIndex,
}

impl Snapshot {
    /// The epoch this snapshot captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying delta-aware index.
    pub fn index(&self) -> &SnapshotIndex {
        &self.index
    }

    /// An evaluation engine bound to this snapshot.
    pub fn engine(&self) -> Engine<SnapshotIndex> {
        Engine::for_snapshot(&self.index)
    }

    /// Answers `req` against this frozen epoch — the snapshot-level
    /// unified entry point. No cache is involved (the cache lives on
    /// the [`Store`]); [`ExecOpts::cache`] is ignored here. The
    /// snapshot's `Arc`-shared index is `Send + Sync`, so a parallel
    /// request's workers all read the same frozen epoch.
    pub fn query_request(
        &self,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        let out = self.engine().run(&req.pattern, &req.opts, pool)?;
        let mut profile = out.profile;
        if let Some(p) = profile.as_mut() {
            p.query = Some(req.pattern.to_string());
            p.answers = Some(out.mappings.len() as u64);
        }
        Ok(QueryOutcome {
            mappings: out.mappings,
            profile,
            epoch: self.epoch,
            cache_hit: false,
        })
    }

    /// EXPLAIN ANALYZE against this snapshot (see
    /// [`owql_eval::AnnotatedPlan`]).
    pub fn explain_analyze(&self, pattern: &Pattern) -> owql_eval::AnnotatedPlan {
        self.engine().explain_analyze(pattern)
    }

    /// Materializes the visible triples.
    pub fn to_graph(&self) -> Graph {
        self.index.to_graph()
    }

    /// Number of visible triples.
    pub fn len(&self) -> usize {
        TripleLookup::len(&self.index)
    }

    /// `true` iff nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Snapshot {
    type Target = SnapshotIndex;
    fn deref(&self) -> &SnapshotIndex {
        &self.index
    }
}

/// The versioned, concurrent triple store. See the module docs.
///
/// ```
/// use owql_algebra::pattern::Pattern;
/// use owql_exec::Pool;
/// use owql_rdf::Triple;
/// use owql_store::{QueryRequest, Store};
///
/// let store = Store::new();
/// store.insert(Triple::new("Juan", "was_born_in", "Chile"));
///
/// let before = store.snapshot();
/// store.insert(Triple::new("Marcelo", "was_born_in", "Chile"));
///
/// let pool = Pool::sequential();
/// let req = QueryRequest::new(Pattern::t("?x", "was_born_in", "Chile"));
/// // The old snapshot still answers from its epoch…
/// assert_eq!(before.query_request(&req, &pool).unwrap().mappings.len(), 1);
/// // …while the store's unified entry point sees the write.
/// let out = store.query_request(&req, &pool).unwrap();
/// assert_eq!(out.mappings.len(), 2);
/// assert_eq!(out.epoch, 2);
/// ```
#[derive(Debug)]
pub struct Store {
    inner: RwLock<StoreInner>,
    cache: QueryCache,
    opts: StoreOptions,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// An empty store with default options.
    pub fn new() -> Self {
        Store::with_options(StoreOptions::default())
    }

    /// An empty store with explicit options.
    pub fn with_options(opts: StoreOptions) -> Self {
        Store {
            inner: RwLock::new(StoreInner {
                base: Arc::new(GraphIndex::default()),
                adds: Arc::new(GraphIndex::default()),
                dels: Arc::new(HashSet::new()),
                epoch: 0,
                log: Vec::new(),
                compactions: 0,
            }),
            cache: QueryCache::new(opts.cache_capacity),
            opts,
        }
    }

    /// A store seeded with `graph` as its base index (epoch 0).
    pub fn from_graph(graph: &Graph) -> Self {
        let store = Store::new();
        {
            let mut inner = store.inner.write().expect("store lock poisoned");
            inner.base = Arc::new(GraphIndex::build(graph));
        }
        store
    }

    /// Current epoch (bumped by every state-changing commit).
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("store lock poisoned").epoch
    }

    /// Number of currently visible triples.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().expect("store lock poisoned");
        inner.base.len() - inner.dels.len() + inner.adds.len()
    }

    /// `true` iff no triple is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a point-in-time snapshot (three `Arc` clones — `O(1)`).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("store lock poisoned");
        Snapshot {
            epoch: inner.epoch,
            index: inner.snapshot_index(),
        }
    }

    /// Starts an empty transaction (a convenience for
    /// `Transaction::new`).
    pub fn begin(&self) -> Transaction {
        Transaction::new()
    }

    /// Applies a batch atomically. One epoch bump per commit that
    /// changes anything; no bump for all-no-op batches.
    pub fn commit(&self, tx: Transaction) -> CommitSummary {
        let mut inner = self.inner.write().expect("store lock poisoned");
        let next_epoch = inner.epoch + 1;
        let mut applied = 0usize;
        for op in tx.ops {
            let changed = match op {
                DeltaOp::Insert(t) => {
                    if inner.visible(&t) {
                        false
                    } else if inner.dels.contains(&t) {
                        // Re-insert of a base triple: cancel the delete.
                        Arc::make_mut(&mut inner.dels).remove(&t);
                        true
                    } else {
                        Arc::make_mut(&mut inner.adds).insert(t);
                        true
                    }
                }
                DeltaOp::Delete(t) => {
                    if !inner.visible(&t) {
                        false
                    } else if inner.adds.contains(&t) {
                        // Delete of an uncompacted add: cancel the add.
                        Arc::make_mut(&mut inner.adds).remove(&t);
                        true
                    } else {
                        Arc::make_mut(&mut inner.dels).insert(t);
                        true
                    }
                }
            };
            if changed {
                applied += 1;
                inner.log.push(LogEntry {
                    epoch: next_epoch,
                    op,
                });
            }
        }
        if applied == 0 {
            return CommitSummary {
                epoch: inner.epoch,
                applied: 0,
                compacted: false,
            };
        }
        inner.epoch = next_epoch;
        let compacted = self.maybe_compact(&mut inner);
        CommitSummary {
            epoch: inner.epoch,
            applied,
            compacted,
        }
    }

    /// Single-triple insert (its own transaction). Returns `true` if
    /// the triple was new.
    pub fn insert(&self, t: Triple) -> bool {
        let mut tx = Transaction::new();
        tx.insert(t);
        self.commit(tx).applied == 1
    }

    /// Single-triple delete (its own transaction). Returns `true` if
    /// the triple was present.
    pub fn delete(&self, t: &Triple) -> bool {
        let mut tx = Transaction::new();
        tx.delete(*t);
        self.commit(tx).applied == 1
    }

    /// Folds the delta into a fresh base if the compaction policy says
    /// so; called under the write lock.
    fn maybe_compact(&self, inner: &mut StoreInner) -> bool {
        let delta_len = inner.adds.len() + inner.dels.len();
        let threshold = self
            .opts
            .min_compact
            .max((self.opts.compact_fraction * inner.base.len() as f64) as usize);
        if delta_len <= threshold {
            return false;
        }
        self.compact_inner(inner);
        true
    }

    fn compact_inner(&self, inner: &mut StoreInner) {
        let folded = inner.snapshot_index().compacted();
        inner.base = Arc::new(folded);
        inner.adds = Arc::new(GraphIndex::default());
        inner.dels = Arc::new(HashSet::new());
        inner.log.clear();
        inner.compactions += 1;
    }

    /// Forces a compaction regardless of the policy (no epoch change —
    /// the visible graph is identical before and after).
    pub fn force_compact(&self) {
        let mut inner = self.inner.write().expect("store lock poisoned");
        if inner.adds.len() + inner.dels.len() > 0 {
            self.compact_inner(&mut inner);
        }
    }

    /// The ordered delta log since the last compaction.
    pub fn history(&self) -> Vec<LogEntry> {
        self.inner.read().expect("store lock poisoned").log.clone()
    }

    /// Materializes the current visible graph.
    pub fn to_graph(&self) -> Graph {
        self.snapshot().to_graph()
    }

    /// Answers `req` at the current epoch — THE store-level entry
    /// point; `query` and `query_uncached` are thin wrappers over it,
    /// and the HTTP server calls it once per request.
    ///
    /// The [`ExecOpts::max_class`] admission ceiling is enforced
    /// *before* the cache lookup, so a cached result can never smuggle
    /// an over-ceiling query past the policy.
    ///
    /// Takes one snapshot up front — **pinning the epoch** for the
    /// whole run, so however long the evaluation takes and however many
    /// commits land meanwhile, it reads one immutable graph version
    /// (the outcome reports that epoch). When [`ExecOpts::cache`] is
    /// set, the epoch-keyed cache is consulted first (canonicalize via
    /// [`cache_key`], look up `(key, epoch)`) and filled on a miss —
    /// so every hit *and* miss shows up in the cache counters that
    /// traced profiles carry in their `"store"` section.
    ///
    /// Linearizable against writers: the result is exactly
    /// `⟦pattern⟧G_e` for the epoch `e` the snapshot captured (the
    /// point in time the query took effect). See DESIGN.md §8.
    pub fn query_request(
        &self,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        owql_eval::check_admission(&req.pattern, &req.opts)?;
        let snapshot = self.snapshot();
        if req.opts.cache {
            let key = cache_key(&req.pattern);
            if let Some(hit) = self.cache.lookup(&key, snapshot.epoch()) {
                let profile = req.opts.trace.then(|| Profile {
                    query: Some(req.pattern.to_string()),
                    answers: Some(hit.len() as u64),
                    store: Some(self.observe()),
                    ..Profile::default()
                });
                return Ok(QueryOutcome {
                    mappings: hit,
                    profile,
                    epoch: snapshot.epoch(),
                    cache_hit: true,
                });
            }
            let mut outcome = snapshot.query_request(req, pool)?;
            self.cache
                .store(key, snapshot.epoch(), outcome.mappings.clone());
            if let Some(p) = outcome.profile.as_mut() {
                p.store = Some(self.observe());
            }
            Ok(outcome)
        } else {
            let mut outcome = snapshot.query_request(req, pool)?;
            if let Some(p) = outcome.profile.as_mut() {
                p.store = Some(self.observe());
            }
            Ok(outcome)
        }
    }

    /// Evaluates `pattern` at the current epoch through the query
    /// cache (sequential, no tracing, no deadline).
    pub fn query(&self, pattern: &Pattern) -> MappingSet {
        self.query_request(&QueryRequest::new(pattern.clone()), &Pool::sequential())
            .expect(NO_BUDGET)
            .mappings
    }

    /// Evaluates `pattern` bypassing (and not touching) the cache.
    pub fn query_uncached(&self, pattern: &Pattern) -> MappingSet {
        self.query_request(
            &QueryRequest::with_opts(pattern.clone(), ExecOpts::seq().uncached()),
            &Pool::sequential(),
        )
        .expect(NO_BUDGET)
        .mappings
    }

    /// Query-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregate state for monitoring.
    pub fn metrics(&self) -> StoreMetrics {
        let inner = self.inner.read().expect("store lock poisoned");
        StoreMetrics {
            epoch: inner.epoch,
            len: inner.base.len() - inner.dels.len() + inner.adds.len(),
            base_len: inner.base.len(),
            delta_len: inner.adds.len() + inner.dels.len(),
            compactions: inner.compactions,
            cache: self.cache.stats(),
        }
    }

    /// The store's counters folded into the obs taxonomy — the
    /// `"store"` section of a [`Profile`].
    pub fn observe(&self) -> StoreObs {
        let m = self.metrics();
        StoreObs {
            epoch: m.epoch,
            triples: m.len,
            base_len: m.base_len,
            delta_len: m.delta_len,
            compactions: m.compactions,
            cache_hits: m.cache.hits,
            cache_misses: m.cache.misses,
            cache_evictions: m.cache.evictions,
            cache_invalidations: m.cache.invalidations,
            cache_hit_rate: m.cache.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_rdf::graph::graph_from;
    use owql_rdf::term::triple;

    fn small_opts() -> StoreOptions {
        StoreOptions {
            min_compact: 4,
            compact_fraction: 0.5,
            cache_capacity: 16,
        }
    }

    #[test]
    fn insert_delete_and_epochs() {
        let store = Store::new();
        assert_eq!(store.epoch(), 0);
        assert!(store.insert(triple("a", "p", "b")));
        assert_eq!(store.epoch(), 1);
        assert!(!store.insert(triple("a", "p", "b"))); // duplicate: no bump
        assert_eq!(store.epoch(), 1);
        assert!(store.delete(&triple("a", "p", "b")));
        assert_eq!(store.epoch(), 2);
        assert!(!store.delete(&triple("a", "p", "b")));
        assert_eq!(store.epoch(), 2);
        assert!(store.is_empty());
    }

    #[test]
    fn batch_commit_is_one_epoch() {
        let store = Store::new();
        let mut tx = store.begin();
        tx.insert(triple("a", "p", "b"))
            .insert(triple("c", "p", "d"))
            .delete(triple("zz", "zz", "zz")); // no-op
        let summary = store.commit(tx);
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.applied, 2);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn insert_then_delete_in_one_batch_nets_out() {
        let store = Store::new();
        let mut tx = store.begin();
        tx.insert(triple("a", "p", "b"))
            .delete(triple("a", "p", "b"));
        let summary = store.commit(tx);
        assert_eq!(summary.applied, 2); // both ops changed state…
        assert!(store.is_empty()); // …and net to nothing
        let log = store.history();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|e| e.epoch == 1));
    }

    #[test]
    fn delete_of_base_triple_then_reinsert() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        assert!(store.delete(&triple("a", "p", "b")));
        assert!(store.is_empty());
        assert!(store.insert(triple("a", "p", "b")));
        assert_eq!(store.len(), 1);
        assert_eq!(store.metrics().delta_len, 0); // delete+reinsert cancel
    }

    #[test]
    fn snapshot_isolation_across_writes() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        let before = store.snapshot();
        store.insert(triple("c", "p", "d"));
        store.delete(&triple("a", "p", "b"));
        assert_eq!(before.len(), 1);
        assert!(before.to_graph().contains(&triple("a", "p", "b")));
        let after = store.snapshot();
        assert_eq!(after.len(), 1);
        assert!(after.to_graph().contains(&triple("c", "p", "d")));
        assert!(before.epoch() < after.epoch());
    }

    #[test]
    fn compaction_folds_delta_and_preserves_graph() {
        let store = Store::with_options(small_opts());
        for i in 0..20 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let metrics = store.metrics();
        assert!(metrics.compactions > 0, "threshold 4 must have tripped");
        assert_eq!(metrics.len, 20);
        assert_eq!(store.to_graph().len(), 20);
        // Post-compaction deltas keep working.
        store.delete(&triple("s0", "p", "o"));
        assert_eq!(store.len(), 19);
    }

    #[test]
    fn force_compact_preserves_visible_graph_and_epoch() {
        let store = Store::new();
        store.insert(triple("a", "p", "b"));
        store.insert(triple("c", "p", "d"));
        store.delete(&triple("a", "p", "b"));
        let graph = store.to_graph();
        let epoch = store.epoch();
        store.force_compact();
        assert_eq!(store.to_graph(), graph);
        assert_eq!(store.epoch(), epoch);
        assert_eq!(store.metrics().delta_len, 0);
        assert!(store.history().is_empty());
    }

    #[test]
    fn snapshot_survives_compaction() {
        let store = Store::with_options(small_opts());
        for i in 0..4 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let snap = store.snapshot(); // holds pre-compaction Arcs
        for i in 4..20 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        assert!(store.metrics().compactions > 0);
        assert_eq!(snap.len(), 4);
        assert_eq!(store.len(), 20);
    }

    #[test]
    fn query_cache_hits_within_epoch_and_invalidates_across() {
        let store = Store::new();
        store.insert(triple("a", "p", "b"));
        let p = Pattern::t("?x", "p", "?y");
        let first = store.query(&p);
        let second = store.query(&p);
        assert_eq!(first, second);
        let stats = store.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);

        store.insert(triple("c", "p", "d"));
        let third = store.query(&p);
        assert_eq!(third.len(), 2);
        let stats = store.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn cached_equals_uncached() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("a", "q", "c"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let uncached = store.query_uncached(&p);
        let cold = store.query(&p);
        let warm = store.query(&p);
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        assert_eq!(store.cache_stats().hits, 1);
    }

    #[test]
    fn parallel_request_matches_sequential_and_uses_cache() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
            ("a", "q", "d"),
        ]));
        let pool = Pool::new(4);
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel());
        let first = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert_eq!(first.mappings, store.query_uncached(&p));
        assert!(!first.cache_hit);
        // Second call hits the epoch-keyed cache (shared with `query`).
        let again = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert_eq!(again.mappings, first.mappings);
        assert!(again.cache_hit);
        assert_eq!(again.epoch, first.epoch);
        assert_eq!(store.cache_stats().hits, 1);
        // And the sequential `query` sees the same entry.
        assert_eq!(store.query(&p), first.mappings);
        assert_eq!(store.cache_stats().hits, 2);
    }

    /// A traced cache hit still yields a profile (store section only —
    /// no operators ran), so cache traffic is visible to observability.
    #[test]
    fn traced_cache_hit_reports_store_section() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        let p = Pattern::t("?x", "p", "?y");
        store.query(&p); // fill the cache
        let req = QueryRequest::with_opts(p.clone(), ExecOpts::seq().traced());
        let out = store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        assert!(out.cache_hit);
        let profile = out.profile.expect("traced request has a profile");
        assert!(profile.spans.is_empty());
        let obs = profile.store.expect("store section");
        assert_eq!(obs.cache_hits, 1);
        assert_eq!(obs.cache_misses, 1);
    }

    /// A zero deadline surfaces as `EvalError::Timeout` from the store
    /// entry point without touching the cache.
    #[test]
    fn store_request_deadline_times_out() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let req = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq().with_deadline(std::time::Duration::ZERO),
        );
        let result = store.query_request(&req, &Pool::sequential());
        assert!(matches!(result, Err(EvalError::Timeout { .. })));
        // The failed run did not poison or fill the cache.
        assert_eq!(store.query(&p).len(), 2);
    }

    /// Epoch pinning: a parallel evaluation races a writer; whatever
    /// interleaving happens, the answer equals the sequential answer at
    /// *some* epoch the store actually passed through — and a snapshot
    /// taken before the run is never skewed by the writes.
    #[test]
    fn parallel_evaluation_pins_epoch_against_writers() {
        use std::thread;

        let store = Arc::new(Store::new());
        for i in 0..64 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let p = Pattern::t("?x", "p", "o").and(Pattern::t("?y", "p", "o"));
        let pool = Pool::new(4);

        let snap = store.snapshot();
        let seq_req = QueryRequest::new(p.clone());
        let par_req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel());
        let frozen = snap
            .query_request(&seq_req, &Pool::sequential())
            .expect(NO_BUDGET)
            .mappings;
        let writer = {
            let store = store.clone();
            thread::spawn(move || {
                for i in 64..128 {
                    let s = format!("s{i}");
                    store.insert(triple(s.as_str(), "p", "o"));
                }
            })
        };
        // Evaluate the pinned snapshot in parallel while writes land.
        for _ in 0..4 {
            let out = snap.query_request(&par_req, &pool).expect(NO_BUDGET);
            assert_eq!(out.mappings, frozen);
            assert_eq!(out.epoch, snap.epoch());
        }
        writer.join().expect("writer panicked");
        // The pre-write snapshot still answers from its epoch…
        assert_eq!(
            snap.query_request(&par_req, &pool)
                .expect(NO_BUDGET)
                .mappings,
            frozen
        );
        // …and a fresh parallel query sees all 128 subjects.
        assert_eq!(
            store
                .query_request(&par_req, &pool)
                .expect(NO_BUDGET)
                .mappings
                .len(),
            128 * 128
        );
    }

    /// A traced uncached request answers like `query_uncached` and
    /// folds the live store/cache counters into the report.
    #[test]
    fn traced_request_folds_store_counters_and_matches_uncached() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        store.query(&p); // a miss, so the profile sees cache traffic
        store.query(&p); // and a hit

        let req = QueryRequest::with_opts(p.clone(), ExecOpts::seq().uncached().traced());
        let out = store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        let result = out.mappings;
        let profile = out.profile.expect("traced run has a profile");
        assert_eq!(result, store.query_uncached(&p));
        assert_eq!(profile.answers, Some(result.len() as u64));
        assert!(!profile.spans.is_empty());
        let obs = profile.store.expect("store section");
        assert_eq!(obs.epoch, store.epoch());
        assert_eq!(obs.triples, 3);
        assert_eq!(obs.cache_hits, 1);
        assert_eq!(obs.cache_misses, 1);
        assert!((obs.cache_hit_rate - 0.5).abs() < 1e-9);
        let json = profile.to_json();
        assert!(json.contains("\"cache_hit_rate\": 0.500"));

        // Parallel profiling agrees and reports pool activity.
        let pool = Pool::new(4);
        let par_req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel().uncached().traced());
        let par = store.query_request(&par_req, &pool).expect(NO_BUDGET);
        assert_eq!(par.mappings, result);
        assert!(par.profile.expect("traced").store.is_some());
    }

    /// The admission ceiling is enforced before the cache: a cached
    /// result for the same pattern must not bypass a later, stricter
    /// ceiling.
    #[test]
    fn admission_is_checked_before_the_cache() {
        use owql_eval::EvalError;
        use owql_lint::ComplexityClass;

        let store = Store::from_graph(&graph_from(&[("a", "p", "b"), ("b", "p", "c")]));
        // PSPACE-class pattern: NS over a non-AUFS operand.
        let p = Pattern::t("?x", "p", "?y")
            .opt(Pattern::t("?y", "p", "?z"))
            .ns();
        let pool = Pool::sequential();

        // Warm the cache without a ceiling.
        let warmed = store
            .query_request(&QueryRequest::new(p.clone()), &pool)
            .expect(NO_BUDGET);
        assert!(!warmed.cache_hit);
        let hit = store
            .query_request(&QueryRequest::new(p.clone()), &pool)
            .expect(NO_BUDGET);
        assert!(hit.cache_hit);

        // The same (cached) pattern is still shed under a ceiling.
        let capped = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq().with_max_class(ComplexityClass::Dp),
        );
        let err = store.query_request(&capped, &pool).unwrap_err();
        assert!(matches!(err, EvalError::AdmissionDenied { .. }), "{err:?}");

        // At or below the ceiling, cached answers still flow.
        let ok =
            QueryRequest::with_opts(p, ExecOpts::seq().with_max_class(ComplexityClass::Pspace));
        assert!(store.query_request(&ok, &pool).expect(NO_BUDGET).cache_hit);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::thread;

        let store = Arc::new(Store::with_options(StoreOptions {
            min_compact: 8,
            compact_fraction: 0.25,
            cache_capacity: 32,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let p = Pattern::t("?x", "p", "?y");

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                let stop = stop.clone();
                let p = p.clone();
                thread::spawn(move || {
                    let mut observed = 0usize;
                    let req = QueryRequest::new(p.clone());
                    let pool = Pool::sequential();
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = store.snapshot();
                        let direct = snapshot
                            .query_request(&req, &pool)
                            .expect(NO_BUDGET)
                            .mappings
                            .len();
                        // The snapshot is frozen: re-evaluating gives the
                        // same answer regardless of concurrent writes.
                        assert_eq!(
                            snapshot
                                .query_request(&req, &pool)
                                .expect(NO_BUDGET)
                                .mappings
                                .len(),
                            direct
                        );
                        observed = observed.max(direct);
                    }
                    observed
                })
            })
            .collect();

        for i in 0..200 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        stop.store(true, Ordering::Relaxed);
        let max_seen = readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .max()
            .unwrap();
        assert!(max_seen <= 200);
        assert_eq!(store.len(), 200);
        assert!(store.metrics().compactions > 0);
    }
}
