//! The versioned, concurrent triple store.
//!
//! A [`Store`] holds an immutable `Arc`-shared base [`GraphIndex`] plus
//! a small mutable overlay (net-added and net-deleted triples) and an
//! ordered delta log. Mutations are batched into [`Transaction`]s;
//! committing a batch that changes anything bumps a monotonically
//! increasing **epoch**. Readers take [`Snapshot`]s — three `Arc`
//! clones — and evaluate queries against them while writers proceed;
//! a snapshot keeps answering from the state it captured forever
//! (epoch isolation).
//!
//! When the overlay outgrows `max(min_compact, compact_fraction ×
//! |base|)`, the commit folds it into a fresh base index (**delta
//! compaction**) — replacing the seed's full `O(|G|)` index rebuild on
//! *every* `Engine::new` with an amortized, threshold-driven one.
//!
//! ## Durability (`owql-persist`)
//!
//! A store opened with [`Store::open`] writes a checksummed
//! write-ahead log record per commit — fsync'd **before** the commit's
//! epoch is published, so every epoch a reader ever observed is
//! reconstructible — and periodically checkpoints the snapshot into a
//! binary segment generation (the **background indexer**, or inline
//! when so configured), truncating the log behind the retained
//! segments. Reopening the directory recovers the newest valid
//! segment, replays the log tail past its epoch watermark, and skips
//! any torn trailing record. See DESIGN.md §12.

use crate::cache::{cache_key, CacheStats, QueryCache};
use owql_algebra::mapping_set::MappingSet;
use owql_algebra::pattern::Pattern;
use owql_eval::{ColumnarPath, Engine, EvalError, ExecMode, ExecOpts};
use owql_exec::Pool;
use owql_obs::{MetricsHub, PersistObs, Profile, ShardMetrics, SlowQuery, StoreObs};
use owql_persist::{CommitRecord, PersistConfig, RecoveryReport, Wal, WalOp};
use owql_rdf::{
    shard_rows, Graph, GraphIndex, IdRuns, SnapshotIndex, TermDict, Triple, TripleLookup,
};
use std::collections::{HashMap, HashSet};
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Expect-message for unwrapping requests made without a deadline.
const NO_BUDGET: &str = "unlimited budget cannot time out";

/// One query, fully described: the pattern plus the execution options.
///
/// This is the wire-level unit of the unified API — the HTTP server
/// builds one per request, `Store::query_request` answers it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// The NS–SPARQL graph pattern to evaluate.
    pub pattern: Pattern,
    /// How to run it (scheduling, tracing, cache, deadline).
    pub opts: ExecOpts,
}

impl QueryRequest {
    /// A request with default (sequential, cached) options.
    pub fn new(pattern: Pattern) -> QueryRequest {
        QueryRequest {
            pattern,
            opts: ExecOpts::seq(),
        }
    }

    /// A request with explicit options.
    pub fn with_opts(pattern: Pattern, opts: ExecOpts) -> QueryRequest {
        QueryRequest { pattern, opts }
    }
}

/// What answering a [`QueryRequest`] produced.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The answer set `⟦P⟧G` at `epoch`.
    pub mappings: MappingSet,
    /// The recorded profile — `Some` iff the request asked for tracing.
    pub profile: Option<Profile>,
    /// The epoch the answer is consistent with (the snapshot the
    /// evaluation pinned).
    pub epoch: u64,
    /// `true` iff the answer came from the epoch-keyed query cache.
    pub cache_hit: bool,
    /// Which engine served the request: `Used` when the columnar
    /// id-batch path answered, `Fallback` when it was requested but the
    /// term-at-a-time engine had to take over, `Disabled` otherwise
    /// (including cache hits, which run no engine at all).
    pub columnar_path: ColumnarPath,
    /// Certified pruning rewrites the optimizer applied to the plan
    /// (all-zero unless the request asked for optimization and a
    /// lint-proven prune fired; cache hits run no optimizer).
    pub prunes: owql_obs::PruneObs,
}

/// Tuning knobs for a [`Store`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Compaction never triggers below this overlay size.
    pub min_compact: usize,
    /// Compaction triggers once `|delta| > compact_fraction × |base|`
    /// (and `|delta| > min_compact`).
    pub compact_fraction: f64,
    /// Capacity of the epoch-keyed LRU query cache (0 disables it).
    pub cache_capacity: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            min_compact: 1024,
            compact_fraction: 0.25,
            cache_capacity: 256,
        }
    }
}

/// One mutation in a transaction / the delta log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add a triple (no-op if already present).
    Insert(Triple),
    /// Remove a triple (no-op if absent).
    Delete(Triple),
}

/// A delta-log record: the op plus the epoch whose commit applied it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Epoch the op became visible at.
    pub epoch: u64,
    /// The applied mutation.
    pub op: DeltaOp,
}

/// A batch of mutations, applied atomically by [`Store::commit`].
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    ops: Vec<DeltaOp>,
}

impl Transaction {
    /// An empty batch.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Queues an insertion.
    pub fn insert(&mut self, t: Triple) -> &mut Self {
        self.ops.push(DeltaOp::Insert(t));
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, t: Triple) -> &mut Self {
        self.ops.push(DeltaOp::Delete(t));
        self
    }

    /// Queues every triple of `graph` for insertion.
    pub fn insert_graph(&mut self, graph: &Graph) -> &mut Self {
        for &t in graph.iter() {
            self.insert(t);
        }
        self
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff no op is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What a commit did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitSummary {
    /// The epoch after the commit (unchanged if nothing applied).
    pub epoch: u64,
    /// Ops that actually changed the store (duplicates and misses
    /// don't count).
    pub applied: usize,
    /// Whether this commit folded the delta into a fresh base.
    pub compacted: bool,
}

/// What a checkpoint did (see [`Store::checkpoint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// The segment generation the checkpoint wrote.
    pub generation: u64,
    /// The epoch watermark baked into that segment.
    pub epoch: u64,
    /// Triples in the segment.
    pub triples: usize,
    /// WAL records truncated behind the retained generations.
    pub wal_records_dropped: u64,
}

/// Durability counters for a store opened with [`Store::open`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistMetrics {
    /// Bytes currently in the write-ahead log.
    pub wal_bytes: u64,
    /// Commit records currently in the write-ahead log.
    pub wal_records: u64,
    /// Newest segment generation on disk (0 = none yet).
    pub segment_generation: u64,
    /// Epoch watermark of the newest checkpoint (0 = none yet).
    pub last_checkpoint_epoch: u64,
    /// Checkpoints taken since this store opened.
    pub checkpoints: u64,
    /// WAL records replayed when this store opened.
    pub recovery_replayed_records: u64,
}

/// Aggregate store state, for monitoring and the bench harness.
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    /// Current epoch.
    pub epoch: u64,
    /// Triples visible to a fresh snapshot.
    pub len: usize,
    /// Triples in the shared base index.
    pub base_len: usize,
    /// Overlay size (`|adds| + |dels|`).
    pub delta_len: usize,
    /// Compactions performed so far.
    pub compactions: u64,
    /// Terms in the store-wide dictionary (append-only across epochs).
    pub dict_terms: usize,
    /// Dictionary interns that found an existing id.
    pub dict_hits: u64,
    /// Dictionary interns that assigned a fresh id.
    pub dict_misses: u64,
    /// Query-cache counters.
    pub cache: CacheStats,
    /// Durability counters — `Some` iff the store persists to disk.
    pub persist: Option<PersistMetrics>,
}

/// Wake/shutdown flags for the background indexer thread.
#[derive(Debug, Default)]
struct IndexerSignal {
    wake: bool,
    shutdown: bool,
}

/// Everything the durable side of a store shares with its background
/// indexer: the open WAL, the data directory, counters mirrored into
/// atomics so `metrics()` never touches the WAL lock.
#[derive(Debug)]
struct PersistState {
    dir: PathBuf,
    config: PersistConfig,
    wal: Mutex<Wal>,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    segment_generation: AtomicU64,
    last_checkpoint_epoch: AtomicU64,
    checkpoints: AtomicU64,
    recovery: RecoveryReport,
    /// The owning store's metrics hub, shared so checkpoints running on
    /// the background indexer thread land in the same histograms.
    hub: Arc<MetricsHub>,
    /// Serializes checkpoints (manual, inline, and background).
    checkpoint_lock: Mutex<()>,
    signal: Mutex<IndexerSignal>,
    wake: Condvar,
}

impl PersistState {
    fn metrics(&self) -> PersistMetrics {
        PersistMetrics {
            wal_bytes: self.wal_bytes.load(Ordering::SeqCst),
            wal_records: self.wal_records.load(Ordering::SeqCst),
            segment_generation: self.segment_generation.load(Ordering::SeqCst),
            last_checkpoint_epoch: self.last_checkpoint_epoch.load(Ordering::SeqCst),
            checkpoints: self.checkpoints.load(Ordering::SeqCst),
            recovery_replayed_records: self.recovery.replayed_records,
        }
    }

    fn wake_indexer(&self) {
        let mut signal = self.signal.lock().expect("indexer signal poisoned");
        signal.wake = true;
        drop(signal);
        self.wake.notify_all();
    }
}

/// Flushes the current snapshot into a fresh segment generation,
/// prunes old generations, and truncates the WAL behind the *oldest*
/// retained one (so a corrupt newest segment still recovers from the
/// previous generation plus the log). Runs on the committing thread
/// (inline config / [`Store::checkpoint`]) or the background indexer.
fn run_checkpoint(
    inner: &RwLock<StoreInner>,
    persist: &PersistState,
) -> io::Result<Option<CheckpointSummary>> {
    let _serialize = persist
        .checkpoint_lock
        .lock()
        .expect("checkpoint lock poisoned");
    let started = Instant::now();
    // Snapshot under a read lock, then write the segment without
    // holding any store lock — commits keep landing meanwhile (their
    // epochs stay in the WAL until the *next* checkpoint).
    let (epoch, index) = {
        let inner = inner.read().expect("store lock poisoned");
        (inner.epoch, inner.snapshot_index())
    };
    if epoch == persist.last_checkpoint_epoch.load(Ordering::SeqCst)
        && persist.segment_generation.load(Ordering::SeqCst) > 0
    {
        return Ok(None); // nothing committed since the last checkpoint
    }
    let graph = index.to_graph();
    let triples: Vec<Triple> = graph.iter().copied().collect();
    let generation = persist.segment_generation.load(Ordering::SeqCst) + 1;
    owql_persist::write_segment(&persist.dir, generation, epoch, &triples)?;
    persist
        .segment_generation
        .store(generation, Ordering::SeqCst);
    persist.last_checkpoint_epoch.store(epoch, Ordering::SeqCst);
    persist.checkpoints.fetch_add(1, Ordering::SeqCst);
    owql_persist::prune_segments(&persist.dir, persist.config.keep_segments.max(1))?;

    // The WAL must still cover everything past the oldest retained
    // generation's watermark, not just the newest one's.
    let mut watermark = epoch;
    for (gen, path) in owql_persist::segment_generations(&persist.dir)? {
        let _ = gen;
        if let Ok(e) = owql_persist::segment_epoch(&path) {
            watermark = watermark.min(e);
        }
    }
    let wal_records_dropped = {
        let mut wal = persist.wal.lock().expect("wal lock poisoned");
        let dropped = wal.truncate_behind(watermark)?;
        persist.wal_records.store(wal.records(), Ordering::SeqCst);
        persist.wal_bytes.store(wal.bytes(), Ordering::SeqCst);
        dropped
    };
    persist.hub.checkpoint.record(started.elapsed());
    Ok(Some(CheckpointSummary {
        generation,
        epoch,
        triples: triples.len(),
        wal_records_dropped,
    }))
}

/// The background indexer: sleeps on the condvar, checkpoints when a
/// commit crosses the WAL threshold, exits on shutdown (store drop).
fn indexer_loop(inner: Arc<RwLock<StoreInner>>, persist: Arc<PersistState>) {
    let mut signal = persist.signal.lock().expect("indexer signal poisoned");
    loop {
        while !signal.wake && !signal.shutdown {
            signal = persist.wake.wait(signal).expect("indexer signal poisoned");
        }
        if signal.shutdown {
            return;
        }
        signal.wake = false;
        drop(signal);
        // A failed background checkpoint is not fatal: the WAL still
        // holds every commit, so durability is unaffected — the next
        // threshold crossing (or a manual checkpoint) retries.
        let _ = run_checkpoint(&inner, &persist);
        signal = persist.signal.lock().expect("indexer signal poisoned");
    }
}

#[derive(Debug)]
struct StoreInner {
    /// The store-wide term dictionary. Append-only: ids survive
    /// compactions and epochs, and both `base` and `adds` encode their
    /// id runs with it (the invariant that makes the merged snapshot
    /// `id_view` valid).
    dict: Arc<TermDict>,
    base: Arc<GraphIndex>,
    /// Net additions (disjoint from `base`), incrementally indexed.
    adds: Arc<GraphIndex>,
    /// Net deletions (subset of `base`).
    dels: Arc<HashSet<Triple>>,
    epoch: u64,
    /// Ordered mutation log since the last compaction.
    log: Vec<LogEntry>,
    compactions: u64,
}

impl StoreInner {
    fn visible(&self, t: &Triple) -> bool {
        (self.base.contains(t) && !self.dels.contains(t)) || self.adds.contains(t)
    }

    fn snapshot_index(&self) -> SnapshotIndex {
        SnapshotIndex::new(self.base.clone(), self.adds.clone(), self.dels.clone())
    }

    /// Applies one op to the overlay, recording it in the delta log
    /// under `epoch`. Returns `true` iff the op changed the store.
    /// Shared by the live commit path and WAL replay on `open`.
    fn apply_op(&mut self, op: DeltaOp, epoch: u64) -> bool {
        let changed = match op {
            DeltaOp::Insert(t) => {
                if self.visible(&t) {
                    false
                } else if self.dels.contains(&t) {
                    // Re-insert of a base triple: cancel the delete.
                    Arc::make_mut(&mut self.dels).remove(&t);
                    true
                } else {
                    Arc::make_mut(&mut self.adds).insert(t);
                    true
                }
            }
            DeltaOp::Delete(t) => {
                if !self.visible(&t) {
                    false
                } else if self.adds.contains(&t) {
                    // Delete of an uncompacted add: cancel the add.
                    Arc::make_mut(&mut self.adds).remove(&t);
                    true
                } else {
                    Arc::make_mut(&mut self.dels).insert(t);
                    true
                }
            }
        };
        if changed {
            self.log.push(LogEntry { epoch, op });
        }
        changed
    }
}

/// An immutable point-in-time view of a [`Store`].
///
/// Derefs to [`SnapshotIndex`], so it plugs directly into
/// [`Engine::for_snapshot`] (or use the [`Snapshot::engine`] /
/// [`Snapshot::query_request`] conveniences).
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    index: SnapshotIndex,
}

impl Snapshot {
    /// The epoch this snapshot captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying delta-aware index.
    pub fn index(&self) -> &SnapshotIndex {
        &self.index
    }

    /// An evaluation engine bound to this snapshot.
    pub fn engine(&self) -> Engine<SnapshotIndex> {
        Engine::for_snapshot(&self.index)
    }

    /// Answers `req` against this frozen epoch — the snapshot-level
    /// unified entry point. No cache is involved (the cache lives on
    /// the [`Store`]); [`ExecOpts::cache`] is ignored here. The
    /// snapshot's `Arc`-shared index is `Send + Sync`, so a parallel
    /// request's workers all read the same frozen epoch.
    pub fn query_request(
        &self,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        let out = self.engine().run(&req.pattern, &req.opts, pool)?;
        let mut profile = out.profile;
        if let Some(p) = profile.as_mut() {
            p.query = Some(req.pattern.to_string());
            p.answers = Some(out.mappings.len() as u64);
        }
        Ok(QueryOutcome {
            mappings: out.mappings,
            profile,
            epoch: self.epoch,
            cache_hit: false,
            columnar_path: out.columnar_path,
            prunes: out.prunes,
        })
    }

    /// Scatter-gather variant of [`Snapshot::query_request`]: answers
    /// `req` across `rt`'s shards, all pinned to this snapshot's epoch.
    /// `None` means the pattern or backend is outside the sharded
    /// columnar envelope — fall back to [`Snapshot::query_request`].
    pub fn query_request_sharded(
        &self,
        req: &QueryRequest,
        rt: &ShardRuntime,
        metrics: Option<&ShardMetrics>,
    ) -> Option<Result<QueryOutcome, EvalError>> {
        let runs = rt.runs_for(self)?;
        let out = self
            .engine()
            .run_sharded(&req.pattern, &req.opts, &runs, rt.pools(), metrics)?;
        Some(out.map(|out| {
            let mut profile = out.profile;
            if let Some(p) = profile.as_mut() {
                p.query = Some(req.pattern.to_string());
                p.answers = Some(out.mappings.len() as u64);
            }
            QueryOutcome {
                mappings: out.mappings,
                profile,
                epoch: self.epoch,
                cache_hit: false,
                columnar_path: out.columnar_path,
                prunes: out.prunes,
            }
        }))
    }

    /// EXPLAIN ANALYZE against this snapshot (see
    /// [`owql_eval::AnnotatedPlan`]).
    pub fn explain_analyze(&self, pattern: &Pattern) -> owql_eval::AnnotatedPlan {
        self.engine().explain_analyze(pattern)
    }

    /// Materializes the visible triples.
    pub fn to_graph(&self) -> Graph {
        self.index.to_graph()
    }

    /// Number of visible triples.
    pub fn len(&self) -> usize {
        TripleLookup::len(&self.index)
    }

    /// `true` iff nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Snapshot {
    type Target = SnapshotIndex;
    fn deref(&self) -> &SnapshotIndex {
        &self.index
    }
}

/// The scatter-gather shard runtime: `N` evaluation pools plus an
/// epoch-keyed cache of the subject-hash shard partitions.
///
/// Shard runs are **pinned to a snapshot epoch**: [`ShardRuntime::runs_for`]
/// rebuilds the partition the first time a query observes a new epoch
/// and reuses the cached `Arc` for every query at that epoch, so a
/// scatter never mixes rows from two store versions. The pools are
/// long-lived — one per shard, each sized independently of the
/// request-level pool.
#[derive(Debug)]
pub struct ShardRuntime {
    shards: usize,
    pools: Vec<Pool>,
    runs: Mutex<Option<(u64, Arc<Vec<IdRuns>>)>>,
}

impl ShardRuntime {
    /// A runtime of `shards` partitions with `threads_each` workers
    /// per shard pool.
    pub fn new(shards: usize, threads_each: usize) -> ShardRuntime {
        let shards = shards.max(1);
        ShardRuntime {
            shards,
            pools: Pool::shard_pools(shards, threads_each),
            runs: Mutex::new(None),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The per-shard evaluation pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// The shard partition for `snapshot`'s epoch, building (and
    /// caching) it on first use. `None` when the snapshot serves no id
    /// view (mixed-dictionary delta) — callers fall back to unsharded
    /// evaluation.
    pub fn runs_for(&self, snapshot: &Snapshot) -> Option<Arc<Vec<IdRuns>>> {
        let epoch = snapshot.epoch();
        {
            let guard = self.runs.lock().expect("shard runs lock poisoned");
            if let Some((e, runs)) = guard.as_ref() {
                if *e == epoch {
                    return Some(runs.clone());
                }
            }
        }
        let view = snapshot.index().id_view()?;
        let built = Arc::new(shard_rows(&view, self.shards));
        let mut guard = self.runs.lock().expect("shard runs lock poisoned");
        // Last writer wins: under churn two epochs can race here, and
        // whichever publishes second simply serves the next rebuild.
        *guard = Some((epoch, built.clone()));
        Some(built)
    }
}

/// The versioned, concurrent triple store. See the module docs.
///
/// ```
/// use owql_algebra::pattern::Pattern;
/// use owql_exec::Pool;
/// use owql_rdf::Triple;
/// use owql_store::{QueryRequest, Store};
///
/// let store = Store::new();
/// store.insert(Triple::new("Juan", "was_born_in", "Chile"));
///
/// let before = store.snapshot();
/// store.insert(Triple::new("Marcelo", "was_born_in", "Chile"));
///
/// let pool = Pool::sequential();
/// let req = QueryRequest::new(Pattern::t("?x", "was_born_in", "Chile"));
/// // The old snapshot still answers from its epoch…
/// assert_eq!(before.query_request(&req, &pool).unwrap().mappings.len(), 1);
/// // …while the store's unified entry point sees the write.
/// let out = store.query_request(&req, &pool).unwrap();
/// assert_eq!(out.mappings.len(), 2);
/// assert_eq!(out.epoch, 2);
/// ```
#[derive(Debug)]
pub struct Store {
    inner: Arc<RwLock<StoreInner>>,
    cache: QueryCache,
    opts: StoreOptions,
    /// Cross-query metrics: latency histograms, columnar engine
    /// counters, and the slow-query log (see [`Store::metrics_hub`]).
    hub: Arc<MetricsHub>,
    /// Durable side — `Some` iff opened with [`Store::open`].
    persist: Option<Arc<PersistState>>,
    /// The background indexer thread, joined on drop.
    indexer: Mutex<Option<JoinHandle<()>>>,
    /// Scatter-gather shard runtime — `Some` after
    /// [`Store::enable_sharding`].
    shards: Mutex<Option<Arc<ShardRuntime>>>,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(p) = &self.persist {
            let mut signal = p.signal.lock().expect("indexer signal poisoned");
            signal.shutdown = true;
            drop(signal);
            p.wake.notify_all();
        }
        let handle = self.indexer.get_mut().ok().and_then(|slot| slot.take());
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Store {
    /// An empty store with default options.
    pub fn new() -> Self {
        Store::with_options(StoreOptions::default())
    }

    /// An empty store with explicit options.
    pub fn with_options(opts: StoreOptions) -> Self {
        let dict = Arc::new(TermDict::new());
        Store {
            inner: Arc::new(RwLock::new(StoreInner {
                base: Arc::new(GraphIndex::default().with_dict(dict.clone())),
                adds: Arc::new(GraphIndex::default().with_dict(dict.clone())),
                dels: Arc::new(HashSet::new()),
                dict,
                epoch: 0,
                log: Vec::new(),
                compactions: 0,
            })),
            cache: QueryCache::new(opts.cache_capacity),
            opts,
            hub: Arc::new(MetricsHub::new()),
            persist: None,
            indexer: Mutex::new(None),
            shards: Mutex::new(None),
        }
    }

    /// Opens (or creates) a **durable** store on `dir` with default
    /// options and persistence config.
    pub fn open_default(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open(dir, StoreOptions::default(), PersistConfig::default())
    }

    /// Opens (or creates) a **durable** store on `dir`: recovers the
    /// newest valid segment, replays the WAL tail past its epoch
    /// watermark (skipping any torn trailing record), and resumes at
    /// the last fully-committed epoch. Every subsequent commit is
    /// WAL-logged (fsync'd before its epoch is published, per
    /// `config.fsync`) and periodically checkpointed into a new
    /// segment generation.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: StoreOptions,
        config: PersistConfig,
    ) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        let recovered = owql_persist::recover(&dir)?;

        // Seed the term dictionary straight from the segment's
        // rank-sorted term table: every segment triple then re-indexes
        // with dictionary *hits* only (zero re-interning on recovery).
        let (dict, base, watermark) = match &recovered.segment {
            Some(seg) => {
                let dict = Arc::new(TermDict::from_sorted_terms(seg.terms()));
                let base = GraphIndex::from_triples_with_dict(seg.triples(), dict.clone());
                (dict, base, seg.epoch())
            }
            None => {
                let dict = Arc::new(TermDict::new());
                (dict.clone(), GraphIndex::default().with_dict(dict), 0)
            }
        };
        let mut inner = StoreInner {
            base: Arc::new(base),
            adds: Arc::new(GraphIndex::default().with_dict(dict.clone())),
            dels: Arc::new(HashSet::new()),
            dict,
            epoch: watermark,
            log: Vec::new(),
            compactions: 0,
        };
        for record in &recovered.replay {
            for op in &record.ops {
                let delta = match op {
                    WalOp::Insert(t) => DeltaOp::Insert(*t),
                    WalOp::Delete(t) => DeltaOp::Delete(*t),
                };
                inner.apply_op(delta, record.epoch);
            }
            inner.epoch = record.epoch;
        }

        let report = recovered.report;
        let wal_records = recovered.wal.records();
        let wal_bytes = recovered.wal.bytes();
        let hub = Arc::new(MetricsHub::new());
        let persist = Arc::new(PersistState {
            dir,
            config: config.clone(),
            wal: Mutex::new(recovered.wal),
            wal_records: AtomicU64::new(wal_records),
            wal_bytes: AtomicU64::new(wal_bytes),
            segment_generation: AtomicU64::new(report.segment_generation),
            last_checkpoint_epoch: AtomicU64::new(report.segment_epoch),
            checkpoints: AtomicU64::new(0),
            recovery: report,
            hub: hub.clone(),
            checkpoint_lock: Mutex::new(()),
            signal: Mutex::new(IndexerSignal::default()),
            wake: Condvar::new(),
        });

        let store = Store {
            inner: Arc::new(RwLock::new(inner)),
            cache: QueryCache::new(opts.cache_capacity),
            opts,
            hub,
            persist: Some(persist.clone()),
            indexer: Mutex::new(None),
            shards: Mutex::new(None),
        };
        if config.background_indexer {
            let inner = store.inner.clone();
            let handle = std::thread::Builder::new()
                .name("owql-indexer".to_owned())
                .spawn(move || indexer_loop(inner, persist))?;
            *store.indexer.lock().expect("indexer slot poisoned") = Some(handle);
        }
        Ok(store)
    }

    /// The data directory, when this store is durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.persist.as_deref().map(|p| p.dir.as_path())
    }

    /// `true` iff this store was opened with [`Store::open`].
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// What recovery found when this store opened (durable stores
    /// only).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.persist.as_deref().map(|p| &p.recovery)
    }

    /// Forces a checkpoint now: flushes the current snapshot into a
    /// new segment generation and truncates the WAL behind the
    /// retained generations. Returns `Ok(None)` on an in-memory store
    /// or when nothing was committed since the last checkpoint.
    pub fn checkpoint(&self) -> io::Result<Option<CheckpointSummary>> {
        match &self.persist {
            Some(p) => run_checkpoint(&self.inner, p),
            None => Ok(None),
        }
    }

    /// A store seeded with `graph` as its base index (epoch 0).
    pub fn from_graph(graph: &Graph) -> Self {
        let store = Store::new();
        {
            let mut inner = store.inner.write().expect("store lock poisoned");
            inner.base = Arc::new(GraphIndex::from_triples_with_dict(
                graph.iter().copied(),
                inner.dict.clone(),
            ));
        }
        store
    }

    /// Current epoch (bumped by every state-changing commit).
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("store lock poisoned").epoch
    }

    /// Number of currently visible triples.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().expect("store lock poisoned");
        inner.base.len() - inner.dels.len() + inner.adds.len()
    }

    /// `true` iff no triple is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a point-in-time snapshot (three `Arc` clones — `O(1)`).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("store lock poisoned");
        Snapshot {
            epoch: inner.epoch,
            index: inner.snapshot_index(),
        }
    }

    /// Starts an empty transaction (a convenience for
    /// `Transaction::new`).
    pub fn begin(&self) -> Transaction {
        Transaction::new()
    }

    /// Applies a batch atomically. One epoch bump per commit that
    /// changes anything; no bump for all-no-op batches.
    ///
    /// On a durable store a WAL-append failure panics; use
    /// [`Store::try_commit`] to handle the I/O error instead.
    pub fn commit(&self, tx: Transaction) -> CommitSummary {
        self.try_commit(tx)
            .expect("write-ahead log append failed; use try_commit to handle I/O errors")
    }

    /// [`Store::commit`], surfacing WAL I/O errors. On `Err` the store
    /// is untouched: the effective ops are planned *before* the WAL
    /// append (a dry run over the current overlay), the record is
    /// written and — per [`PersistConfig::fsync`] — synced, and only
    /// then are the ops applied and the new epoch published. A reader
    /// can therefore never observe an epoch whose WAL record isn't on
    /// disk.
    pub fn try_commit(&self, tx: Transaction) -> io::Result<CommitSummary> {
        let mut inner = self.inner.write().expect("store lock poisoned");
        let next_epoch = inner.epoch + 1;

        // Phase 1 — plan: find the ops that will actually change the
        // store, tracking intra-batch visibility without mutating.
        let mut staged: HashMap<Triple, bool> = HashMap::new();
        let mut effective: Vec<DeltaOp> = Vec::new();
        for &op in &tx.ops {
            let (t, wanted) = match op {
                DeltaOp::Insert(t) => (t, true),
                DeltaOp::Delete(t) => (t, false),
            };
            let currently = staged.get(&t).copied().unwrap_or_else(|| inner.visible(&t));
            if currently != wanted {
                effective.push(op);
                staged.insert(t, wanted);
            }
        }
        if effective.is_empty() {
            return Ok(CommitSummary {
                epoch: inner.epoch,
                applied: 0,
                compacted: false,
            });
        }

        // Phase 2 — log: append + fsync the commit record while still
        // holding the write lock, *before* any in-memory change. An
        // I/O error aborts the commit with the store untouched.
        if let Some(p) = &self.persist {
            let record = CommitRecord {
                epoch: next_epoch,
                ops: effective
                    .iter()
                    .map(|op| match op {
                        DeltaOp::Insert(t) => WalOp::Insert(*t),
                        DeltaOp::Delete(t) => WalOp::Delete(*t),
                    })
                    .collect(),
            };
            let mut wal = p.wal.lock().expect("wal lock poisoned");
            let fsync_started = Instant::now();
            wal.append(&record, p.config.fsync)?;
            self.hub.wal_fsync.record(fsync_started.elapsed());
            p.wal_records.store(wal.records(), Ordering::SeqCst);
            p.wal_bytes.store(wal.bytes(), Ordering::SeqCst);
        }

        // Phase 3 — apply and publish.
        let mut applied = 0usize;
        for &op in &effective {
            if inner.apply_op(op, next_epoch) {
                applied += 1;
            }
        }
        debug_assert_eq!(applied, effective.len(), "plan/apply divergence");
        inner.epoch = next_epoch;
        let compacted = self.maybe_compact(&mut inner);
        let summary = CommitSummary {
            epoch: inner.epoch,
            applied,
            compacted,
        };
        drop(inner);

        // Phase 4 — maybe checkpoint (outside the write lock).
        if let Some(p) = &self.persist {
            let threshold = p.config.checkpoint_wal_records;
            if threshold > 0 && p.wal_records.load(Ordering::SeqCst) >= threshold {
                if p.config.background_indexer {
                    p.wake_indexer();
                } else {
                    run_checkpoint(&self.inner, p)?;
                }
            }
        }
        Ok(summary)
    }

    /// Single-triple insert (its own transaction). Returns `true` if
    /// the triple was new.
    pub fn insert(&self, t: Triple) -> bool {
        let mut tx = Transaction::new();
        tx.insert(t);
        self.commit(tx).applied == 1
    }

    /// Single-triple delete (its own transaction). Returns `true` if
    /// the triple was present.
    pub fn delete(&self, t: &Triple) -> bool {
        let mut tx = Transaction::new();
        tx.delete(*t);
        self.commit(tx).applied == 1
    }

    /// Folds the delta into a fresh base if the compaction policy says
    /// so; called under the write lock.
    fn maybe_compact(&self, inner: &mut StoreInner) -> bool {
        let delta_len = inner.adds.len() + inner.dels.len();
        let threshold = self
            .opts
            .min_compact
            .max((self.opts.compact_fraction * inner.base.len() as f64) as usize);
        if delta_len <= threshold {
            return false;
        }
        self.compact_inner(inner);
        true
    }

    fn compact_inner(&self, inner: &mut StoreInner) {
        // Fold the overlay into a fresh base, re-encoded with the
        // store-wide dictionary (ids are append-only, so every
        // surviving triple keeps the ids it already had).
        let folded = GraphIndex::from_triples_with_dict(
            inner
                .base
                .all()
                .iter()
                .filter(|t| !inner.dels.contains(t))
                .chain(inner.adds.all().iter())
                .copied(),
            inner.dict.clone(),
        );
        inner.base = Arc::new(folded);
        inner.adds = Arc::new(GraphIndex::default().with_dict(inner.dict.clone()));
        inner.dels = Arc::new(HashSet::new());
        inner.log.clear();
        inner.compactions += 1;
    }

    /// Forces a compaction regardless of the policy (no epoch change —
    /// the visible graph is identical before and after).
    pub fn force_compact(&self) {
        let mut inner = self.inner.write().expect("store lock poisoned");
        if inner.adds.len() + inner.dels.len() > 0 {
            self.compact_inner(&mut inner);
        }
    }

    /// The ordered delta log since the last compaction.
    pub fn history(&self) -> Vec<LogEntry> {
        self.inner.read().expect("store lock poisoned").log.clone()
    }

    /// Materializes the current visible graph.
    pub fn to_graph(&self) -> Graph {
        self.snapshot().to_graph()
    }

    /// Answers `req` at the current epoch — THE store-level entry
    /// point; `query` and `query_uncached` are thin wrappers over it,
    /// and the HTTP server calls it once per request.
    ///
    /// The [`ExecOpts::max_class`] admission ceiling is enforced
    /// *before* the cache lookup, so a cached result can never smuggle
    /// an over-ceiling query past the policy.
    ///
    /// Takes one snapshot up front — **pinning the epoch** for the
    /// whole run, so however long the evaluation takes and however many
    /// commits land meanwhile, it reads one immutable graph version
    /// (the outcome reports that epoch). When [`ExecOpts::cache`] is
    /// set, the epoch-keyed cache is consulted first (canonicalize via
    /// [`cache_key`], look up `(key, epoch)`) and filled on a miss —
    /// so every hit *and* miss shows up in the cache counters that
    /// traced profiles carry in their `"store"` section.
    ///
    /// Linearizable against writers: the result is exactly
    /// `⟦pattern⟧G_e` for the epoch `e` the snapshot captured (the
    /// point in time the query took effect). See DESIGN.md §8.
    pub fn query_request(
        &self,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        let started = Instant::now();
        let outcome = self.query_request_inner(req, pool)?;
        let elapsed = started.elapsed();
        self.hub.queries_total.fetch_add(1, Ordering::Relaxed);
        self.hub.query_latency.record(elapsed);
        match outcome.columnar_path {
            ColumnarPath::Used => {
                self.hub.columnar_runs.fetch_add(1, Ordering::Relaxed);
            }
            ColumnarPath::Fallback => {
                self.hub.columnar_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            ColumnarPath::Disabled => {}
        }
        self.hub.observe_prunes(outcome.prunes);
        if let Some(profile) = &outcome.profile {
            self.hub.observe_spans(&profile.spans);
        }
        if let Some(threshold) = req.opts.slow_query {
            if elapsed >= threshold {
                // The static plan is re-derived here rather than carried
                // through the outcome: only queries that cross the
                // threshold pay for the rendering.
                let plan = self.snapshot().engine().explain(&req.pattern).to_string();
                self.hub.record_slow_query(SlowQuery {
                    query: req.pattern.to_string(),
                    epoch: outcome.epoch,
                    elapsed_ns: elapsed.as_nanos() as u64,
                    answers: outcome.mappings.len() as u64,
                    cache_hit: outcome.cache_hit,
                    plan,
                    operators: outcome
                        .profile
                        .as_ref()
                        .map(|p| p.operators.clone())
                        .unwrap_or_default(),
                });
            }
        }
        Ok(outcome)
    }

    /// The uninstrumented body of [`Store::query_request`] (admission,
    /// cache, snapshot evaluation) — the wrapper above times it and
    /// folds the outcome into the [`MetricsHub`].
    fn query_request_inner(
        &self,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        owql_eval::check_admission(&req.pattern, &req.opts)?;
        let snapshot = self.snapshot();
        if req.opts.cache {
            let key = cache_key(&req.pattern);
            if let Some(hit) = self.cache.lookup(&key, snapshot.epoch()) {
                let profile = req.opts.trace.then(|| Profile {
                    query: Some(req.pattern.to_string()),
                    answers: Some(hit.len() as u64),
                    store: Some(self.observe()),
                    persist: self.observe_persist(),
                    ..Profile::default()
                });
                return Ok(QueryOutcome {
                    mappings: hit,
                    profile,
                    epoch: snapshot.epoch(),
                    cache_hit: true,
                    columnar_path: ColumnarPath::Disabled,
                    prunes: owql_obs::PruneObs::default(),
                });
            }
            let mut outcome = self.eval_snapshot(&snapshot, req, pool)?;
            self.cache
                .store(key, snapshot.epoch(), outcome.mappings.clone());
            if let Some(p) = outcome.profile.as_mut() {
                p.store = Some(self.observe());
                p.persist = self.observe_persist();
            }
            Ok(outcome)
        } else {
            let mut outcome = self.eval_snapshot(&snapshot, req, pool)?;
            if let Some(p) = outcome.profile.as_mut() {
                p.store = Some(self.observe());
                p.persist = self.observe_persist();
            }
            Ok(outcome)
        }
    }

    /// Evaluates `req` against `snapshot`, preferring the sharded
    /// scatter-gather path when a [`ShardRuntime`] is enabled and the
    /// request asks for parallel scheduling; anything outside the
    /// sharded envelope falls back to the snapshot's single-node path.
    fn eval_snapshot(
        &self,
        snapshot: &Snapshot,
        req: &QueryRequest,
        pool: &Pool,
    ) -> Result<QueryOutcome, EvalError> {
        if req.opts.mode == ExecMode::Parallel {
            if let Some(rt) = self.shard_runtime() {
                if let Some(out) = snapshot.query_request_sharded(req, &rt, Some(&self.hub.shards))
                {
                    return out;
                }
            }
        }
        snapshot.query_request(req, pool)
    }

    /// Enables scatter-gather evaluation: partitions every queried
    /// epoch into `shards` subject-hash shards, each with its own
    /// `threads_each`-worker pool. Parallel-mode requests then
    /// scatter across the shards (sequential requests keep the
    /// single-node path). Idempotent: calling again replaces the
    /// runtime.
    pub fn enable_sharding(&self, shards: usize, threads_each: usize) {
        *self.shards.lock().expect("shard runtime lock poisoned") =
            Some(Arc::new(ShardRuntime::new(shards, threads_each)));
    }

    /// The active shard runtime, if sharding was enabled.
    pub fn shard_runtime(&self) -> Option<Arc<ShardRuntime>> {
        self.shards
            .lock()
            .expect("shard runtime lock poisoned")
            .clone()
    }

    /// Evaluates `pattern` at the current epoch through the query
    /// cache (sequential, no tracing, no deadline).
    pub fn query(&self, pattern: &Pattern) -> MappingSet {
        self.query_request(&QueryRequest::new(pattern.clone()), &Pool::sequential())
            .expect(NO_BUDGET)
            .mappings
    }

    /// Evaluates `pattern` bypassing (and not touching) the cache.
    pub fn query_uncached(&self, pattern: &Pattern) -> MappingSet {
        self.query_request(
            &QueryRequest::with_opts(pattern.clone(), ExecOpts::seq().uncached()),
            &Pool::sequential(),
        )
        .expect(NO_BUDGET)
        .mappings
    }

    /// Query-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The store's cross-query metrics hub: latency histograms
    /// (query / per-operator / WAL fsync / checkpoint), columnar
    /// run-vs-fallback counters, and the slow-query ring buffer. Shared
    /// (`Arc`) with the background indexer; the HTTP server renders it
    /// on `GET /metrics`.
    pub fn metrics_hub(&self) -> Arc<MetricsHub> {
        self.hub.clone()
    }

    /// Aggregate state for monitoring.
    pub fn metrics(&self) -> StoreMetrics {
        let inner = self.inner.read().expect("store lock poisoned");
        StoreMetrics {
            epoch: inner.epoch,
            len: inner.base.len() - inner.dels.len() + inner.adds.len(),
            base_len: inner.base.len(),
            delta_len: inner.adds.len() + inner.dels.len(),
            compactions: inner.compactions,
            dict_terms: inner.dict.len(),
            dict_hits: inner.dict.hits(),
            dict_misses: inner.dict.misses(),
            cache: self.cache.stats(),
            persist: self.persist.as_deref().map(PersistState::metrics),
        }
    }

    /// The store-wide term dictionary (shared with every index and
    /// snapshot this store hands out). Ids are append-only: once a term
    /// has an id, it keeps it across commits and compactions.
    pub fn dict(&self) -> Arc<TermDict> {
        self.inner.read().expect("store lock poisoned").dict.clone()
    }

    /// Durability counters — `Some` iff the store persists to disk.
    pub fn persist_metrics(&self) -> Option<PersistMetrics> {
        self.persist.as_deref().map(PersistState::metrics)
    }

    /// The durability counters folded into the obs taxonomy — the
    /// `"persist"` section of a [`Profile`].
    pub fn observe_persist(&self) -> Option<PersistObs> {
        self.persist_metrics().map(|m| PersistObs {
            wal_bytes: m.wal_bytes,
            wal_records: m.wal_records,
            segment_generation: m.segment_generation,
            last_checkpoint_epoch: m.last_checkpoint_epoch,
            checkpoints: m.checkpoints,
            recovery_replayed_records: m.recovery_replayed_records,
        })
    }

    /// The store's counters folded into the obs taxonomy — the
    /// `"store"` section of a [`Profile`].
    pub fn observe(&self) -> StoreObs {
        let m = self.metrics();
        StoreObs {
            epoch: m.epoch,
            triples: m.len,
            base_len: m.base_len,
            delta_len: m.delta_len,
            compactions: m.compactions,
            dict_terms: m.dict_terms as u64,
            dict_hits: m.dict_hits,
            dict_misses: m.dict_misses,
            cache_hits: m.cache.hits,
            cache_misses: m.cache.misses,
            cache_evictions: m.cache.evictions,
            cache_invalidations: m.cache.invalidations,
            cache_hit_rate: m.cache.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_rdf::graph::graph_from;
    use owql_rdf::term::triple;

    fn small_opts() -> StoreOptions {
        StoreOptions {
            min_compact: 4,
            compact_fraction: 0.5,
            cache_capacity: 16,
        }
    }

    #[test]
    fn insert_delete_and_epochs() {
        let store = Store::new();
        assert_eq!(store.epoch(), 0);
        assert!(store.insert(triple("a", "p", "b")));
        assert_eq!(store.epoch(), 1);
        assert!(!store.insert(triple("a", "p", "b"))); // duplicate: no bump
        assert_eq!(store.epoch(), 1);
        assert!(store.delete(&triple("a", "p", "b")));
        assert_eq!(store.epoch(), 2);
        assert!(!store.delete(&triple("a", "p", "b")));
        assert_eq!(store.epoch(), 2);
        assert!(store.is_empty());
    }

    #[test]
    fn batch_commit_is_one_epoch() {
        let store = Store::new();
        let mut tx = store.begin();
        tx.insert(triple("a", "p", "b"))
            .insert(triple("c", "p", "d"))
            .delete(triple("zz", "zz", "zz")); // no-op
        let summary = store.commit(tx);
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.applied, 2);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn insert_then_delete_in_one_batch_nets_out() {
        let store = Store::new();
        let mut tx = store.begin();
        tx.insert(triple("a", "p", "b"))
            .delete(triple("a", "p", "b"));
        let summary = store.commit(tx);
        assert_eq!(summary.applied, 2); // both ops changed state…
        assert!(store.is_empty()); // …and net to nothing
        let log = store.history();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|e| e.epoch == 1));
    }

    #[test]
    fn delete_of_base_triple_then_reinsert() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        assert!(store.delete(&triple("a", "p", "b")));
        assert!(store.is_empty());
        assert!(store.insert(triple("a", "p", "b")));
        assert_eq!(store.len(), 1);
        assert_eq!(store.metrics().delta_len, 0); // delete+reinsert cancel
    }

    #[test]
    fn snapshot_isolation_across_writes() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        let before = store.snapshot();
        store.insert(triple("c", "p", "d"));
        store.delete(&triple("a", "p", "b"));
        assert_eq!(before.len(), 1);
        assert!(before.to_graph().contains(&triple("a", "p", "b")));
        let after = store.snapshot();
        assert_eq!(after.len(), 1);
        assert!(after.to_graph().contains(&triple("c", "p", "d")));
        assert!(before.epoch() < after.epoch());
    }

    #[test]
    fn compaction_folds_delta_and_preserves_graph() {
        let store = Store::with_options(small_opts());
        for i in 0..20 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let metrics = store.metrics();
        assert!(metrics.compactions > 0, "threshold 4 must have tripped");
        assert_eq!(metrics.len, 20);
        assert_eq!(store.to_graph().len(), 20);
        // Post-compaction deltas keep working.
        store.delete(&triple("s0", "p", "o"));
        assert_eq!(store.len(), 19);
    }

    #[test]
    fn force_compact_preserves_visible_graph_and_epoch() {
        let store = Store::new();
        store.insert(triple("a", "p", "b"));
        store.insert(triple("c", "p", "d"));
        store.delete(&triple("a", "p", "b"));
        let graph = store.to_graph();
        let epoch = store.epoch();
        store.force_compact();
        assert_eq!(store.to_graph(), graph);
        assert_eq!(store.epoch(), epoch);
        assert_eq!(store.metrics().delta_len, 0);
        assert!(store.history().is_empty());
    }

    #[test]
    fn snapshot_survives_compaction() {
        let store = Store::with_options(small_opts());
        for i in 0..4 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let snap = store.snapshot(); // holds pre-compaction Arcs
        for i in 4..20 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        assert!(store.metrics().compactions > 0);
        assert_eq!(snap.len(), 4);
        assert_eq!(store.len(), 20);
    }

    #[test]
    fn query_cache_hits_within_epoch_and_invalidates_across() {
        let store = Store::new();
        store.insert(triple("a", "p", "b"));
        let p = Pattern::t("?x", "p", "?y");
        let first = store.query(&p);
        let second = store.query(&p);
        assert_eq!(first, second);
        let stats = store.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);

        store.insert(triple("c", "p", "d"));
        let third = store.query(&p);
        assert_eq!(third.len(), 2);
        let stats = store.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn cached_equals_uncached() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("a", "q", "c"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let uncached = store.query_uncached(&p);
        let cold = store.query(&p);
        let warm = store.query(&p);
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        assert_eq!(store.cache_stats().hits, 1);
    }

    #[test]
    fn parallel_request_matches_sequential_and_uses_cache() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
            ("a", "q", "d"),
        ]));
        let pool = Pool::new(4);
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel());
        let first = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert_eq!(first.mappings, store.query_uncached(&p));
        assert!(!first.cache_hit);
        // Second call hits the epoch-keyed cache (shared with `query`).
        let again = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert_eq!(again.mappings, first.mappings);
        assert!(again.cache_hit);
        assert_eq!(again.epoch, first.epoch);
        assert_eq!(store.cache_stats().hits, 1);
        // And the sequential `query` sees the same entry.
        assert_eq!(store.query(&p), first.mappings);
        assert_eq!(store.cache_stats().hits, 2);
    }

    /// A traced cache hit still yields a profile (store section only —
    /// no operators ran), so cache traffic is visible to observability.
    #[test]
    fn traced_cache_hit_reports_store_section() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b")]));
        let p = Pattern::t("?x", "p", "?y");
        store.query(&p); // fill the cache
        let req = QueryRequest::with_opts(p.clone(), ExecOpts::seq().traced());
        let out = store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        assert!(out.cache_hit);
        let profile = out.profile.expect("traced request has a profile");
        assert!(profile.spans.is_empty());
        let obs = profile.store.expect("store section");
        assert_eq!(obs.cache_hits, 1);
        assert_eq!(obs.cache_misses, 1);
    }

    /// A zero deadline surfaces as `EvalError::Timeout` from the store
    /// entry point without touching the cache.
    #[test]
    fn store_request_deadline_times_out() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let req = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq().with_deadline(std::time::Duration::ZERO),
        );
        let result = store.query_request(&req, &Pool::sequential());
        assert!(matches!(result, Err(EvalError::Timeout { .. })));
        // The failed run did not poison or fill the cache.
        assert_eq!(store.query(&p).len(), 2);
    }

    /// Epoch pinning: a parallel evaluation races a writer; whatever
    /// interleaving happens, the answer equals the sequential answer at
    /// *some* epoch the store actually passed through — and a snapshot
    /// taken before the run is never skewed by the writes.
    #[test]
    fn parallel_evaluation_pins_epoch_against_writers() {
        use std::thread;

        let store = Arc::new(Store::new());
        for i in 0..64 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let p = Pattern::t("?x", "p", "o").and(Pattern::t("?y", "p", "o"));
        let pool = Pool::new(4);

        let snap = store.snapshot();
        let seq_req = QueryRequest::new(p.clone());
        let par_req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel());
        let frozen = snap
            .query_request(&seq_req, &Pool::sequential())
            .expect(NO_BUDGET)
            .mappings;
        let writer = {
            let store = store.clone();
            thread::spawn(move || {
                for i in 64..128 {
                    let s = format!("s{i}");
                    store.insert(triple(s.as_str(), "p", "o"));
                }
            })
        };
        // Evaluate the pinned snapshot in parallel while writes land.
        for _ in 0..4 {
            let out = snap.query_request(&par_req, &pool).expect(NO_BUDGET);
            assert_eq!(out.mappings, frozen);
            assert_eq!(out.epoch, snap.epoch());
        }
        writer.join().expect("writer panicked");
        // The pre-write snapshot still answers from its epoch…
        assert_eq!(
            snap.query_request(&par_req, &pool)
                .expect(NO_BUDGET)
                .mappings,
            frozen
        );
        // …and a fresh parallel query sees all 128 subjects.
        assert_eq!(
            store
                .query_request(&par_req, &pool)
                .expect(NO_BUDGET)
                .mappings
                .len(),
            128 * 128
        );
    }

    /// A traced uncached request answers like `query_uncached` and
    /// folds the live store/cache counters into the report.
    #[test]
    fn traced_request_folds_store_counters_and_matches_uncached() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "p", "b"),
            ("b", "p", "c"),
            ("c", "p", "d"),
        ]));
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        store.query(&p); // a miss, so the profile sees cache traffic
        store.query(&p); // and a hit

        let req = QueryRequest::with_opts(p.clone(), ExecOpts::seq().uncached().traced());
        let out = store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        let result = out.mappings;
        let profile = out.profile.expect("traced run has a profile");
        assert_eq!(result, store.query_uncached(&p));
        assert_eq!(profile.answers, Some(result.len() as u64));
        assert!(!profile.spans.is_empty());
        let obs = profile.store.expect("store section");
        assert_eq!(obs.epoch, store.epoch());
        assert_eq!(obs.triples, 3);
        assert_eq!(obs.cache_hits, 1);
        assert_eq!(obs.cache_misses, 1);
        assert!((obs.cache_hit_rate - 0.5).abs() < 1e-9);
        let json = profile.to_json();
        assert!(json.contains("\"cache_hit_rate\": 0.500"));

        // Parallel profiling agrees and reports pool activity.
        let pool = Pool::new(4);
        let par_req = QueryRequest::with_opts(p.clone(), ExecOpts::parallel().uncached().traced());
        let par = store.query_request(&par_req, &pool).expect(NO_BUDGET);
        assert_eq!(par.mappings, result);
        assert!(par.profile.expect("traced").store.is_some());
    }

    /// The admission ceiling is enforced before the cache: a cached
    /// result for the same pattern must not bypass a later, stricter
    /// ceiling.
    #[test]
    fn admission_is_checked_before_the_cache() {
        use owql_eval::EvalError;
        use owql_lint::ComplexityClass;

        let store = Store::from_graph(&graph_from(&[("a", "p", "b"), ("b", "p", "c")]));
        // PSPACE-class pattern: NS over a non-AUFS operand.
        let p = Pattern::t("?x", "p", "?y")
            .opt(Pattern::t("?y", "p", "?z"))
            .ns();
        let pool = Pool::sequential();

        // Warm the cache without a ceiling.
        let warmed = store
            .query_request(&QueryRequest::new(p.clone()), &pool)
            .expect(NO_BUDGET);
        assert!(!warmed.cache_hit);
        let hit = store
            .query_request(&QueryRequest::new(p.clone()), &pool)
            .expect(NO_BUDGET);
        assert!(hit.cache_hit);

        // The same (cached) pattern is still shed under a ceiling.
        let capped = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq().with_max_class(ComplexityClass::Dp),
        );
        let err = store.query_request(&capped, &pool).unwrap_err();
        assert!(matches!(err, EvalError::AdmissionDenied { .. }), "{err:?}");

        // At or below the ceiling, cached answers still flow.
        let ok =
            QueryRequest::with_opts(p, ExecOpts::seq().with_max_class(ComplexityClass::Pspace));
        assert!(store.query_request(&ok, &pool).expect(NO_BUDGET).cache_hit);
    }

    /// Sharded scatter-gather answers match the single-node path over
    /// churn, the shard partition is pinned per epoch (same `Arc`
    /// while the epoch stands, rebuilt after a commit), and the hub's
    /// shard counters advance.
    #[test]
    fn sharded_queries_match_and_pin_epochs() {
        let store = Store::from_graph(&graph_from(&[
            ("a", "knows", "b"),
            ("b", "knows", "c"),
            ("c", "knows", "d"),
            ("a", "age", "42"),
        ]));
        store.enable_sharding(2, 1);
        let rt = store.shard_runtime().expect("sharding enabled");
        assert_eq!(rt.shards(), 2);
        let pool = Pool::new(2);
        let p = Pattern::t("?x", "knows", "?y").and(Pattern::t("?y", "knows", "?z"));
        for round in 0..3 {
            let snap = store.snapshot();
            let runs1 = rt.runs_for(&snap).expect("id view");
            let runs2 = rt.runs_for(&snap).expect("id view");
            assert!(
                Arc::ptr_eq(&runs1, &runs2),
                "same epoch must reuse the cached partition"
            );
            let sharded = QueryRequest::with_opts(p.clone(), ExecOpts::parallel().uncached());
            let seq = QueryRequest::with_opts(p.clone(), ExecOpts::seq().uncached());
            let got = store.query_request(&sharded, &pool).expect(NO_BUDGET);
            let want = store.query_request(&seq, &pool).expect(NO_BUDGET);
            assert_eq!(got.mappings, want.mappings, "round {round}");
            // Churn: the next epoch must rebuild the partition.
            store.insert(Triple::new(&format!("n{round}"), "knows", "a"));
            let next = store.snapshot();
            let runs3 = rt.runs_for(&next).expect("id view");
            assert!(!Arc::ptr_eq(&runs1, &runs3), "new epoch rebuilds");
        }
        let hub = store.metrics_hub();
        assert!(hub.shards.queries_total.load(Ordering::Relaxed) >= 3);
        assert!(hub.shards.scatters_total.load(Ordering::Relaxed) >= 3);
    }

    /// Every served query lands in the hub: the total counter, the
    /// latency histogram, and — for columnar-capable requests — the
    /// run/fallback counters.
    #[test]
    fn metrics_hub_counts_queries_and_columnar_runs() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b"), ("b", "p", "c")]));
        let hub = store.metrics_hub();
        let p = Pattern::t("?x", "p", "?y");
        store.query(&p); // miss → evaluated (columnar, default-on)
        store.query(&p); // cache hit → still counted, no engine ran
        assert_eq!(hub.queries_total.load(Ordering::Relaxed), 2);
        assert_eq!(hub.query_latency.snapshot().count, 2);
        let runs = hub.columnar_runs.load(Ordering::Relaxed);
        let fallbacks = hub.columnar_fallbacks.load(Ordering::Relaxed);
        assert_eq!(runs + fallbacks, 1, "one engine run, one cache hit");

        // A request with columnar forced off records neither counter.
        let req = QueryRequest::with_opts(
            Pattern::t("?x", "p", "c"),
            ExecOpts::seq().uncached().with_columnar(false),
        );
        store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        assert_eq!(hub.columnar_runs.load(Ordering::Relaxed), runs);
        assert_eq!(hub.columnar_fallbacks.load(Ordering::Relaxed), fallbacks);
        assert_eq!(hub.queries_total.load(Ordering::Relaxed), 3);
    }

    /// A traced query folds its spans into the per-operator histograms.
    #[test]
    fn traced_queries_feed_operator_histograms() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b"), ("b", "p", "c")]));
        let hub = store.metrics_hub();
        let p = Pattern::t("?x", "p", "?y").and(Pattern::t("?y", "p", "?z"));
        let req = QueryRequest::with_opts(p, ExecOpts::seq().uncached().traced());
        store
            .query_request(&req, &Pool::sequential())
            .expect(NO_BUDGET);
        let folded: u64 = (0..owql_obs::OpKind::ALL.len())
            .map(|i| hub.operator_latency[i].snapshot().count)
            .sum();
        assert!(folded > 0, "traced spans must reach the hub");
    }

    /// `ExecOpts::slow_query` below the observed latency captures the
    /// query — pattern text, epoch, plan snapshot, operator totals —
    /// into the ring buffer; a cache hit is captured as such.
    #[test]
    fn slow_query_threshold_captures_into_ring_buffer() {
        let store = Store::from_graph(&graph_from(&[("a", "p", "b"), ("b", "p", "c")]));
        let hub = store.metrics_hub();
        let p = Pattern::t("?x", "p", "?y");

        // Threshold zero: everything is "slow".
        let req = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq()
                .traced()
                .with_slow_query(std::time::Duration::ZERO),
        );
        let pool = Pool::sequential();
        let miss = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert!(!miss.cache_hit);
        let hit = store.query_request(&req, &pool).expect(NO_BUDGET);
        assert!(hit.cache_hit);

        assert_eq!(hub.slow_queries_total.load(Ordering::Relaxed), 2);
        let slow = hub.slow_queries();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].query, p.to_string());
        assert!(!slow[0].cache_hit);
        assert!(slow[1].cache_hit);
        assert_eq!(slow[0].answers, 2);
        assert_eq!(slow[0].epoch, store.epoch());
        assert!(slow[0].plan.contains("scan"), "plan: {}", slow[0].plan);
        assert!(
            !slow[0].operators.is_empty(),
            "traced capture carries operator totals"
        );

        // A generous threshold captures nothing further.
        let fast = QueryRequest::with_opts(
            p.clone(),
            ExecOpts::seq().with_slow_query(std::time::Duration::from_secs(3600)),
        );
        store.query_request(&fast, &pool).expect(NO_BUDGET);
        assert_eq!(hub.slow_queries_total.load(Ordering::Relaxed), 2);
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("owql-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Deterministic persistence config for tests: inline indexer, no
    /// auto-checkpoint, no fsync (tmpfs friendliness).
    fn test_persist() -> PersistConfig {
        PersistConfig::default()
            .no_fsync()
            .checkpoint_every(0)
            .inline_indexer()
    }

    #[test]
    fn durable_store_reopens_from_wal_alone() {
        let dir = tmp_dir("wal-only");
        {
            let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("open");
            assert!(store.is_persistent());
            assert_eq!(store.data_dir(), Some(dir.as_path()));
            store.insert(triple("a", "p", "b"));
            store.insert(triple("b", "p", "c"));
            store.delete(&triple("a", "p", "b"));
        } // drop without checkpoint: state lives only in the WAL
        let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("reopen");
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.len(), 1);
        assert!(store.to_graph().contains(&triple("b", "p", "c")));
        let report = store.recovery_report().expect("report");
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.segment_generation, 0);
        let m = store.persist_metrics().expect("persist metrics");
        assert_eq!(m.recovery_replayed_records, 3);
        assert_eq!(m.wal_records, 3);
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_uses_segment() {
        let dir = tmp_dir("checkpoint");
        {
            let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("open");
            for i in 0..10 {
                let s = format!("s{i}");
                store.insert(triple(s.as_str(), "p", "o"));
            }
            let summary = store
                .checkpoint()
                .expect("checkpoint io")
                .expect("checkpoint ran");
            assert_eq!(summary.epoch, 10);
            assert_eq!(summary.triples, 10);
            assert_eq!(summary.generation, 1);
            // keep_segments=2 but only one generation exists, so the
            // oldest retained epoch is 10: the whole WAL goes.
            assert_eq!(summary.wal_records_dropped, 10);
            let m = store.persist_metrics().expect("metrics");
            assert_eq!(m.wal_records, 0);
            assert_eq!(m.segment_generation, 1);
            assert_eq!(m.last_checkpoint_epoch, 10);
            assert_eq!(m.checkpoints, 1);
            // Unchanged epoch: second checkpoint is a no-op.
            assert!(store.checkpoint().expect("io").is_none());
            // A few post-checkpoint commits land in the WAL tail.
            store.insert(triple("tail", "p", "o"));
        }
        let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("reopen");
        assert_eq!(store.epoch(), 11);
        assert_eq!(store.len(), 11);
        let report = store.recovery_report().expect("report");
        assert_eq!(report.segment_generation, 1);
        assert_eq!(report.segment_epoch, 10);
        assert_eq!(report.segment_triples, 10);
        assert_eq!(report.replayed_records, 1);
    }

    /// Old WAL records that a retained segment already covers are kept
    /// until the *oldest* retained generation passes them — so a
    /// corrupt newest segment still recovers losslessly.
    #[test]
    fn corrupt_newest_segment_recovers_from_previous_generation() {
        use std::io::{Read as _, Seek, SeekFrom, Write as _};

        let dir = tmp_dir("gen-fallback");
        {
            let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("open");
            for i in 0..5 {
                let s = format!("a{i}");
                store.insert(triple(s.as_str(), "p", "o"));
            }
            store.checkpoint().expect("io").expect("gen 1");
            for i in 0..5 {
                let s = format!("b{i}");
                store.insert(triple(s.as_str(), "p", "o"));
            }
            store.checkpoint().expect("io").expect("gen 2");
        }
        // Flip a byte in the newest segment's body.
        let gen2 = owql_persist::segment_path(&dir, 2);
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&gen2)
            .expect("open segment");
        file.seek(SeekFrom::Start(100)).expect("seek");
        let mut byte = [0u8; 1];
        file.read_exact(&mut byte).expect("read");
        byte[0] ^= 0xFF;
        file.seek(SeekFrom::Start(100)).expect("seek");
        file.write_all(&byte).expect("write");
        drop(file);

        let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("reopen");
        let report = store.recovery_report().expect("report");
        assert_eq!(report.segment_generation, 1, "fell back a generation");
        assert_eq!(report.rejected_segments.len(), 1);
        // Gen 1 (epoch 5) + WAL records 6..=10 rebuild everything.
        assert_eq!(store.epoch(), 10);
        assert_eq!(store.len(), 10);
        assert_eq!(report.replayed_records, 5);
    }

    #[test]
    fn auto_checkpoint_fires_at_wal_threshold_inline() {
        let dir = tmp_dir("auto-inline");
        let config = PersistConfig::default()
            .no_fsync()
            .checkpoint_every(5)
            .inline_indexer();
        let store = Store::open(&dir, StoreOptions::default(), config).expect("open");
        for i in 0..12 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        let m = store.persist_metrics().expect("metrics");
        assert!(m.checkpoints >= 2, "threshold 5 over 12 commits: {m:?}");
        assert!(m.wal_records < 5, "WAL stays bounded: {m:?}");
        assert_eq!(store.len(), 12);
    }

    /// Durable stores time every WAL append and checkpoint into the
    /// hub's histograms.
    #[test]
    fn durable_store_times_wal_fsync_and_checkpoints() {
        let dir = tmp_dir("hub-timing");
        let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("open");
        let hub = store.metrics_hub();
        for i in 0..5 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        assert_eq!(hub.wal_fsync.snapshot().count, 5);
        store.checkpoint().expect("io").expect("checkpoint ran");
        assert_eq!(hub.checkpoint.snapshot().count, 1);
        // A no-op checkpoint (nothing committed since) records nothing.
        assert!(store.checkpoint().expect("io").is_none());
        assert_eq!(hub.checkpoint.snapshot().count, 1);
    }

    #[test]
    fn background_indexer_checkpoints_and_joins_on_drop() {
        let dir = tmp_dir("auto-bg");
        let config = PersistConfig::default().no_fsync().checkpoint_every(4);
        {
            let store = Store::open(&dir, StoreOptions::default(), config).expect("open");
            for i in 0..40 {
                let s = format!("s{i}");
                store.insert(triple(s.as_str(), "p", "o"));
            }
            // The indexer runs asynchronously; wait (bounded) for at
            // least one checkpoint to land.
            for _ in 0..200 {
                if store.persist_metrics().expect("metrics").checkpoints > 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            assert!(
                store.persist_metrics().expect("metrics").checkpoints > 0,
                "background indexer never checkpointed"
            );
        } // drop joins the indexer thread
        let store = Store::open(&dir, StoreOptions::default(), test_persist()).expect("reopen");
        assert_eq!(store.len(), 40);
        assert_eq!(store.epoch(), 40);
    }

    /// The full differential check: a durable store, closed and
    /// reopened, answers every probe pattern identically to an
    /// in-memory reference that saw the same mutation stream.
    #[test]
    fn reopened_store_is_differentially_identical_to_reference() {
        let dir = tmp_dir("differential");
        let reference = Store::new();
        {
            let durable = Store::open(&dir, StoreOptions::default(), test_persist()).expect("open");
            for i in 0..30 {
                let s = format!("s{}", i % 10);
                let o = format!("o{}", i % 7);
                let t = triple(s.as_str(), "p", o.as_str());
                if i % 5 == 4 {
                    durable.delete(&t);
                    reference.delete(&t);
                } else {
                    durable.insert(t);
                    reference.insert(t);
                }
                if i == 15 {
                    durable.checkpoint().expect("io");
                }
            }
        }
        let reopened = Store::open(&dir, StoreOptions::default(), test_persist()).expect("reopen");
        assert_eq!(reopened.to_graph(), reference.to_graph());
        for p in [
            Pattern::t("?x", "p", "?y"),
            Pattern::t("s1", "p", "?y"),
            Pattern::t("?x", "p", "o3").and(Pattern::t("?x", "p", "?z")),
            Pattern::t("?x", "p", "?y")
                .opt(Pattern::t("?y", "p", "?z"))
                .ns(),
        ] {
            assert_eq!(reopened.query(&p), reference.query(&p), "pattern {p}");
        }
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::thread;

        let store = Arc::new(Store::with_options(StoreOptions {
            min_compact: 8,
            compact_fraction: 0.25,
            cache_capacity: 32,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let p = Pattern::t("?x", "p", "?y");

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                let stop = stop.clone();
                let p = p.clone();
                thread::spawn(move || {
                    let mut observed = 0usize;
                    let req = QueryRequest::new(p.clone());
                    let pool = Pool::sequential();
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = store.snapshot();
                        let direct = snapshot
                            .query_request(&req, &pool)
                            .expect(NO_BUDGET)
                            .mappings
                            .len();
                        // The snapshot is frozen: re-evaluating gives the
                        // same answer regardless of concurrent writes.
                        assert_eq!(
                            snapshot
                                .query_request(&req, &pool)
                                .expect(NO_BUDGET)
                                .mappings
                                .len(),
                            direct
                        );
                        observed = observed.max(direct);
                    }
                    observed
                })
            })
            .collect();

        for i in 0..200 {
            let s = format!("s{i}");
            store.insert(triple(s.as_str(), "p", "o"));
        }
        stop.store(true, Ordering::Relaxed);
        let max_seen = readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .max()
            .unwrap();
        assert!(max_seen <= 200);
        assert_eq!(store.len(), 200);
        assert!(store.metrics().compactions > 0);
    }
}
