//! The epoch-keyed LRU query cache.
//!
//! Entries are keyed by a *canonicalized* pattern rendering (see
//! [`cache_key`]) and stamped with the store epoch they were computed
//! at. A lookup hits only when both the key and the epoch match; an
//! epoch mismatch drops the stale entry (counted as an invalidation
//! plus a miss), so writers never have to touch the cache — bumping the
//! epoch invalidates every prior entry implicitly.
//!
//! Eviction is least-recently-used over a bounded number of entries.
//! The implementation keeps a logical clock per entry and evicts the
//! minimum on overflow — `O(capacity)` per eviction, which is
//! deliberate: capacities are small (hundreds), and the simplicity
//! keeps the hot hit path to one hash lookup.

use owql_algebra::mapping_set::MappingSet;
use owql_algebra::normal_form::union_normal_form;
use owql_algebra::pattern::Pattern;
use std::collections::HashMap;
use std::sync::Mutex;

/// Hit/miss/eviction counters, exposed for the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries dropped to make room (LRU overflow).
    pub evictions: u64,
    /// Entries dropped because their epoch was stale.
    pub invalidations: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    epoch: u64,
    result: MappingSet,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<String, Entry>,
    clock: u64,
    stats: CacheStats,
}

/// A thread-safe, epoch-keyed LRU cache of query results.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` results. A capacity
    /// of 0 disables caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Looks up `key` at `epoch`. Stale entries (same key, older epoch)
    /// are dropped and counted as invalidations.
    pub fn lookup(&self, key: &str, epoch: u64) -> Option<MappingSet> {
        let mut state = self.state.lock().expect("query cache poisoned");
        state.clock += 1;
        let clock = state.clock;
        let outcome = match state.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = clock;
                Some(Some(entry.result.clone()))
            }
            Some(_) => Some(None), // present but stale
            None => None,
        };
        match outcome {
            Some(Some(result)) => {
                state.stats.hits += 1;
                Some(result)
            }
            Some(None) => {
                state.map.remove(key);
                state.stats.invalidations += 1;
                state.stats.misses += 1;
                None
            }
            None => {
                state.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a result computed at `epoch`, evicting the
    /// least-recently-used entry on overflow.
    pub fn store(&self, key: String, epoch: u64, result: MappingSet) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("query cache poisoned");
        state.clock += 1;
        let clock = state.clock;
        if !state.map.contains_key(&key) && state.map.len() >= self.capacity {
            if let Some(lru) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&lru);
                state.stats.evictions += 1;
            }
        }
        state.map.insert(
            key,
            Entry {
                epoch,
                result,
                last_used: clock,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("query cache poisoned").stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().expect("query cache poisoned").map.len()
    }

    /// `true` iff no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.state.lock().expect("query cache poisoned").map.clear();
    }
}

/// Patterns at or below this size are canonicalized through the UNION
/// normal form; larger ones fall back to their display rendering (the
/// normal form can grow exponentially — Proposition D.1's construction
/// multiplies out `AND`s over `UNION`s).
const MAX_CANONICAL_SIZE: usize = 24;

/// Canonicalizes `pattern` into a cache key such that equal keys imply
/// equivalent queries.
///
/// NS-free patterns of modest size are put into UNION normal form
/// (Proposition D.1, [`owql_algebra::normal_form`]) and their disjuncts
/// sorted and deduplicated — so `P₁ UNION P₂` and `P₂ UNION P₁` share
/// one cache line, as do any two patterns with the same normal form.
/// Everything else falls back to the (parser-round-trippable) display
/// form.
pub fn cache_key(pattern: &Pattern) -> String {
    if !pattern.contains_ns() && pattern.size() <= MAX_CANONICAL_SIZE {
        if let Ok(disjuncts) = union_normal_form(pattern) {
            let mut keys: Vec<String> = disjuncts.iter().map(|d| d.to_string()).collect();
            keys.sort();
            keys.dedup();
            return format!("unf:{}", keys.join(" UNION "));
        }
    }
    format!("raw:{pattern}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use owql_algebra::mapping_set::mapping_set;

    fn result(n: u32) -> MappingSet {
        let binding = format!("v{n}");
        mapping_set(&[&[("x", binding.as_str())]])
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = QueryCache::new(8);
        cache.store("k".into(), 3, result(1));
        assert_eq!(cache.lookup("k", 3), Some(result(1)));
        assert_eq!(cache.lookup("k", 4), None); // stale: invalidated
        assert_eq!(cache.lookup("k", 3), None); // gone now
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.store("a".into(), 0, result(1));
        cache.store("b".into(), 0, result(2));
        assert!(cache.lookup("a", 0).is_some()); // refresh a
        cache.store("c".into(), 0, result(3)); // evicts b
        assert!(cache.lookup("a", 0).is_some());
        assert!(cache.lookup("b", 0).is_none());
        assert!(cache.lookup("c", 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.store("k".into(), 0, result(1));
        assert!(cache.lookup("k", 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn restoring_same_key_does_not_evict() {
        let cache = QueryCache::new(1);
        cache.store("k".into(), 0, result(1));
        cache.store("k".into(), 1, result(2));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup("k", 1), Some(result(2)));
    }

    #[test]
    fn cache_key_canonicalizes_union_order() {
        let a = Pattern::t("?x", "p", "?y");
        let b = Pattern::t("?x", "q", "?y");
        let ab = a.clone().union(b.clone());
        let ba = b.clone().union(a.clone());
        assert_eq!(cache_key(&ab), cache_key(&ba));
        assert_ne!(cache_key(&a), cache_key(&b));
    }

    #[test]
    fn cache_key_ns_falls_back_to_display() {
        let p = Pattern::t("?x", "p", "?y").ns();
        assert!(cache_key(&p).starts_with("raw:"));
    }

    #[test]
    fn cache_key_large_pattern_falls_back() {
        let mut p = Pattern::t("?x0", "p", "?y0");
        for i in 1..16 {
            let xi = format!("?x{i}");
            let yi = format!("?y{i}");
            p = p.and(Pattern::t(xi.as_str(), "p", yi.as_str()));
        }
        assert!(p.size() > MAX_CANONICAL_SIZE);
        assert!(cache_key(&p).starts_with("raw:"));
    }
}
