//! # owql — an open-world query language for RDF
//!
//! A from-scratch Rust implementation of the query-language design of
//! Marcelo Arenas & Martín Ugarte, *"Designing a Query Language for
//! RDF: Marrying Open and Closed Worlds"* (PODS 2016): SPARQL with the
//! **not-subsumed (NS) operator**, the weakly-monotone fragments
//! **SP–SPARQL** and **USP–SPARQL**, the monotone CONSTRUCT fragment
//! **CONSTRUCT\[AUF\]**, and the full theory toolkit around them
//! (well-designedness, normal forms, FO translation, semantic
//! checkers, expressiveness translations, and the Section 7 complexity
//! reductions).
//!
//! ## Quick start
//!
//! ```
//! use owql::prelude::*;
//!
//! // An RDF graph (Figure 2 of the paper).
//! let mut g = Graph::new();
//! g.insert(Triple::new("Juan", "was_born_in", "Chile"));
//! g.insert(Triple::new("Juan", "email", "juan@puc.cl"));
//!
//! // The open-world way to ask for optional info: NS instead of OPT.
//! let p = parse_pattern(
//!     "NS(((?X, was_born_in, Chile) UNION \
//!         ((?X, was_born_in, Chile) AND (?X, email, ?E))))",
//! ).unwrap();
//!
//! let out = Engine::new(&g)
//!     .run(&p, &ExecOpts::seq(), &Pool::sequential())
//!     .unwrap();
//! let answers = out.mappings;
//! assert_eq!(answers.len(), 1);
//! assert!(answers.contains(&Mapping::from_str_pairs(&[
//!     ("X", "Juan"), ("E", "juan@puc.cl"),
//! ])));
//!
//! // The pattern is weakly monotone — safe under the open-world
//! // semantics of RDF (bounded-exhaustively checked):
//! assert!(owql::theory::checks::weakly_monotone(
//!     &p, &owql::theory::checks::CheckOptions::default()).holds());
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`rdf`] | `owql-rdf` | IRIs, triples, graphs, indexes, N-Triples I/O, workload generators |
//! | [`algebra`] | `owql-algebra` | mappings, mapping-set algebra, patterns (incl. NS/MINUS), fragments, well-designedness, normal forms, CONSTRUCT |
//! | [`parser`] | `owql-parser` | surface syntax, byte-span tracking, line:column locations |
//! | [`lint`] | `owql-lint` | span-aware static analyzer: fragment/complexity classification, well-designedness and filter/projection/union diagnostics, admission vocabulary |
//! | [`eval`] | `owql-eval` | reference + indexed engines, CONSTRUCT evaluation |
//! | [`logic`] | `owql-logic` | propositional logic, DPLL, cardinality, coloring (substrate of §7) |
//! | [`theory`] | `owql-theory` | FO translation, rewrites, checkers, witnesses, reductions, synthesis |
//! | [`store`] | `owql-store` | versioned concurrent triple store: epochs, snapshots, delta compaction, epoch-keyed query cache |
//! | [`exec`] | `owql-exec` | scoped work-stealing thread pool behind parallel evaluation |
//! | [`obs`] | `owql-obs` | span tracing, per-operator metrics, unified JSON profiles, EXPLAIN ANALYZE plumbing |
//! | [`server`] | `owql-server` | dependency-free HTTP/1.1 query server: bounded admission, per-request deadlines, snapshot isolation |

pub use owql_algebra as algebra;
pub use owql_eval as eval;
pub use owql_exec as exec;
pub use owql_lint as lint;
pub use owql_logic as logic;
pub use owql_obs as obs;
pub use owql_parser as parser;
pub use owql_rdf as rdf;
pub use owql_server as server;
pub use owql_store as store;
pub use owql_theory as theory;

/// The most common imports, bundled.
pub mod prelude {
    pub use owql_algebra::analysis::Operators;
    pub use owql_algebra::condition::Condition;
    pub use owql_algebra::pattern::{tp, Pattern, TriplePattern};
    pub use owql_algebra::{ConstructQuery, Mapping, MappingSet, Variable};
    pub use owql_eval::{
        construct, evaluate, AnnotatedPlan, ColumnarPath, Engine, EvalError, ExecMode, ExecOpts,
        RunOutcome,
    };
    pub use owql_exec::Pool;
    pub use owql_lint::{analyze_pattern, analyze_source, Analysis, ComplexityClass, Fragment};
    pub use owql_obs::{Profile, Recorder};
    pub use owql_parser::{parse_construct, parse_pattern, parse_pattern_spanned};
    pub use owql_rdf::{
        Graph, GraphIndex, IdRuns, IdView, Iri, SnapshotIndex, TermDict, TermId, Triple,
        TripleLookup, NO_TERM,
    };
    pub use owql_server::{Server, ServerConfig};
    pub use owql_store::{QueryOutcome, QueryRequest, Snapshot, Store, StoreOptions};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_basics() {
        let g: Graph = [Triple::new("a", "p", "b")].into_iter().collect();
        let p = parse_pattern("(?x, p, ?y)").unwrap();
        assert_eq!(evaluate(&p, &g).len(), 1);
        let out = Engine::new(&g)
            .run(&p, &ExecOpts::seq(), &Pool::sequential())
            .unwrap();
        assert_eq!(out.mappings.len(), 1);
    }
}
