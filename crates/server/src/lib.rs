//! # owql-server — a networked query front-end
//!
//! A dependency-free HTTP/1.1 server over an [`owql_store::Store`],
//! built on `std::net::TcpListener` and the workspace's own crates:
//! the parser for request bodies, the unified
//! `QueryRequest → QueryOutcome` API for evaluation, and owql-obs's
//! hand-rolled JSON for responses.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /query` | pattern text | mappings as JSON (+ profile when `trace=1`) |
//! | `POST /explain` | pattern text | EXPLAIN ANALYZE plan |
//! | `GET /healthz` | — | liveness + current epoch |
//! | `GET /metrics` | — | request counters + store/cache stats |
//!
//! `POST` endpoints take evaluation options in the query string:
//! `mode=seq|parallel`, `trace=0|1`, `cache=0|1`, `optimize=0|1`,
//! `deadline_ms=N`.
//!
//! ## Design
//!
//! - **Bounded admission.** A fixed worker pool drains a bounded
//!   connection queue; when the queue is full the accept loop sheds
//!   the connection with `429` + `Retry-After` without ever touching a
//!   worker.
//! - **Per-request deadlines.** `deadline_ms` (or the configured
//!   default) becomes [`owql_eval::ExecOpts::deadline`]; the engine's
//!   cooperative budget unwinds evaluation and the server answers
//!   `504`. Workers survive timeouts — nothing is poisoned.
//! - **Snapshot isolation.** Every request pins one store snapshot;
//!   the response carries the epoch it is consistent with, so clients
//!   can reason about read-your-writes across requests.
//! - **Graceful shutdown.** [`Server::shutdown`] stops accepting,
//!   drains queued and in-flight requests, and joins all threads.
//!
//! ```no_run
//! use owql_server::{Server, ServerConfig};
//! use owql_store::Store;
//! use std::sync::Arc;
//!
//! let store = Arc::new(Store::new());
//! let server = Server::start(store, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

pub mod http;
pub mod metrics;
pub mod server;

pub use http::{Request, MAX_BODY_BYTES, MAX_HEADER_BYTES};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig};
