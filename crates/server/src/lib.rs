//! # owql-server — a networked query front-end
//!
//! A dependency-free HTTP/1.1 server over an [`owql_store::Store`],
//! built on a raw epoll event loop ([`sys`]) and the workspace's own
//! crates: the parser for request bodies, the unified
//! `QueryRequest → QueryOutcome` API for evaluation, and owql-obs's
//! hand-rolled JSON for responses.
//!
//! ## Endpoints (versioned surface)
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /v1/query` | `{"pattern": "...", "opts": {...}}` | mappings as JSON (+ profile when `trace`) |
//! | `POST /v1/explain` | `{"pattern": "...", "opts": {...}}` | EXPLAIN ANALYZE plan |
//! | `POST /v1/lint` | `{"pattern": "..."}` | static analysis with diagnostics |
//! | `GET /v1/healthz` | — | liveness; `?ready=1` = readiness probe (`503` until serving) |
//! | `GET /metrics` | — | Prometheus text (or `?format=json`) |
//!
//! `"opts"` keys: `mode` (`"seq"`/`"parallel"`), `trace`, `cache`,
//! `optimize`, `columnar` (booleans), `deadline_ms`, `slow_ms`
//! (integers), `max_class` (complexity-class name, tighten-only).
//! Errors answer a unified envelope
//! `{"error": {"code", "message", "span"?, "retry_after"?}}`.
//!
//! The original query-string endpoints (`POST /query?...` with a bare
//! pattern body, `/explain`, `/lint`, `GET /healthz`) remain as thin
//! adapters that answer with a `Deprecation` header and a `Link` to
//! their `/v1` successor.
//!
//! ## Design
//!
//! - **Epoll front-end.** One event-loop thread multiplexes every
//!   connection through non-blocking sockets and
//!   [`sys::Epoll`] — HTTP/1.1 keep-alive, pipelining (responses in
//!   request order), and chunked transfer-encoding for large result
//!   sets, with no async runtime and no `libc` crate.
//! - **Bounded dispatch.** Parsed requests enter a bounded job queue
//!   drained by a fixed worker pool; a full queue sheds with `429` +
//!   `Retry-After` written inline without costing a worker — and
//!   without sacrificing the connection.
//! - **Sharded scatter-gather.** With [`ServerConfig::shards`] set,
//!   the store partitions its id-encoded runs by subject and
//!   parallel-mode queries fan out across per-shard evaluation pools
//!   pinned to a single snapshot epoch.
//! - **Per-request deadlines.** `deadline_ms` (or the configured
//!   default) becomes [`owql_eval::ExecOpts::deadline`]; the engine's
//!   cooperative budget unwinds evaluation and the server answers
//!   `504`. Workers survive timeouts — nothing is poisoned.
//! - **Snapshot isolation.** Every request pins one store snapshot;
//!   the response carries the epoch it is consistent with, so clients
//!   can reason about read-your-writes across requests.
//! - **Graceful shutdown.** [`Server::shutdown`] stops accepting,
//!   drains in-flight and pipelined requests, and joins all threads.
//!
//! ```no_run
//! use owql_server::{Server, ServerConfig};
//! use owql_store::Store;
//! use std::sync::Arc;
//!
//! let store = Arc::new(Store::new());
//! let config = ServerConfig::builder().shards(2).build();
//! let server = Server::start(store, config).unwrap();
//! println!("listening on {}", server.addr());
//! server.shutdown();
//! ```

pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod sys;

pub use http::{decode_chunked, Request, MAX_BODY_BYTES, MAX_HEADER_BYTES};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig, ServerConfigBuilder};
