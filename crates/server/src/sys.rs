//! Raw epoll bindings for the event loop.
//!
//! The workspace is dependency-free (no `libc` crate), so the three
//! syscalls the readiness loop needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_pwait` — are invoked directly via `asm!`. Everything else
//! (non-blocking sockets, accept, read/write, fd lifetime) goes
//! through `std`, which handles `EWOULDBLOCK` and closes fds on drop;
//! only the readiness multiplexer itself has no `std` surface.
//!
//! Numbers are per-architecture: x86_64 and aarch64 are supported
//! (`epoll_pwait` exists on both; legacy `epoll_wait` does not exist
//! on aarch64).

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "owql-server's event loop needs Linux epoll on x86_64 or aarch64 \
     (raw syscalls; the workspace links no libc crate)"
);

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: socket writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
}

/// The kernel's `struct epoll_event`. Packed on x86_64 (the kernel ABI
/// declares it `__attribute__((packed))` there), naturally aligned
/// elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Converts a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An epoll instance. The fd is owned: dropping the `Epoll` closes it
/// through `std`'s `OwnedFd`.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        const EPOLL_CLOEXEC: usize = 0o2000000;
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        // SAFETY: the kernel just returned this fd to us; nothing else
        // owns it.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let ev = event.unwrap_or_default();
        let ptr = match op {
            EPOLL_CTL_DEL => 0usize,
            _ => &ev as *const EpollEvent as usize,
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` with interest `events`, tagging readiness
    /// reports with `data`.
    pub fn add(&self, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events, data }))
    }

    /// Rewrites the interest set for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events, data }))
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// `epoll_pwait` with a null signal mask: blocks up to
    /// `timeout_ms` (-1 = forever) and fills `events`. `EINTR` is
    /// reported as zero events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // sigmask: NULL (sigsetsize then unchecked)
                8,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.raw_os_error() == Some(4 /* EINTR */) => Ok(0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readable_after_write() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (mut tx, rx) = UnixStream::pair().expect("socketpair");
        rx.set_nonblocking(true).expect("nonblocking");
        epoll
            .add(rx.as_raw_fd(), 42, EPOLLIN)
            .expect("epoll_ctl add");

        let mut events = [EpollEvent::default(); 8];
        // Nothing written yet: a zero timeout returns no events.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);

        tx.write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        let ready = events[0].events;
        assert_eq!(data, 42);
        assert_ne!(ready & EPOLLIN, 0);

        // Re-arm with a different tag via modify, then deregister.
        epoll
            .modify(rx.as_raw_fd(), 7, EPOLLIN | EPOLLOUT)
            .expect("epoll_ctl mod");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert!(n >= 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        epoll.delete(rx.as_raw_fd()).expect("epoll_ctl del");
        // After deletion the fd no longer reports.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
    }
}
