//! A minimal HTTP/1.1 codec over blocking streams.
//!
//! The workspace is dependency-free, so this module hand-rolls the
//! slice of HTTP the query server needs: parse one request
//! (request-line, headers, `Content-Length`-delimited body) from a
//! stream, write one response, close the connection
//! (`Connection: close` — one request per connection keeps the
//! admission queue the single unit of accounting). It is a *server*
//! codec: chunked encoding, keep-alive, and multi-line headers are
//! rejected or ignored rather than implemented.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on header section and body sizes — a wire-level guard so a
/// hostile client cannot balloon memory before admission control sees
/// the request.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`, `POST`.
    pub method: String,
    /// Path without the query string, e.g. `/query`.
    pub path: String,
    /// The raw query string (no leading `?`), empty if absent.
    pub query: String,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Iterates `key=value` pairs of the query string (no percent
    /// decoding — the option grammar is plain ASCII).
    pub fn query_params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }
}

/// A wire-level failure while reading a request, carrying the status
/// code the connection should die with.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable description (sent as the response body).
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` on a clean EOF
/// before any byte (client connected and went away).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut header_bytes = 0usize;

    // Request line.
    let n = reader
        .read_line(&mut head)
        .map_err(|e| HttpError::bad_request(format!("failed to read request line: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    header_bytes += n;
    let mut parts = head.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no target"))?
        .to_owned();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1") {
        return Err(HttpError::bad_request(format!(
            "unsupported protocol version '{version}'"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };

    // Headers: only Content-Length matters to this codec.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| HttpError::bad_request(format!("failed to read header: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad_request("connection closed mid-headers"));
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError {
                status: 431,
                message: "header section too large".into(),
            });
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::bad_request("invalid Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError {
                    status: 501,
                    message: "transfer encodings are not supported".into(),
                });
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} cap"),
        });
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::bad_request(format!("failed to read body: {e}")))?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
    }))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` response with optional extra headers
/// (`name: value` pairs, already formatted values).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    stream.write_all(out.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw).expect("write");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let (mut server_side, _) = listener.accept().expect("accept");
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /query?mode=parallel&trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n(?a,b,?c)")
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        let params: Vec<_> = req.query_params().collect();
        assert_eq!(params, vec![("mode", "parallel"), ("trace", "1")]);
        assert_eq!(req.body_utf8().expect("utf8"), "(?a,b,?c)");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(roundtrip(b"").expect("parse").is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = roundtrip(raw.as_bytes()).expect_err("too large");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let err = roundtrip(b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("unsupported");
        assert_eq!(err.status, 501);
    }
}
