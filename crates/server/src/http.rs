//! An incremental HTTP/1.1 codec over byte buffers.
//!
//! The workspace is dependency-free, so this module hand-rolls the
//! slice of HTTP the query server needs. Unlike the blocking
//! `BufReader` codec it replaced, parsing is **incremental**: the
//! event loop appends whatever bytes arrived into a per-connection
//! buffer and calls [`parse_request`], which either consumes one
//! complete request from the front of the buffer, asks for more bytes
//! (`Ok(None)`), or fails with the status code the connection should
//! answer before dying. Several pipelined requests in one buffer parse
//! out one [`parse_request`] call at a time.
//!
//! The response side writes HTTP/1.1 keep-alive framing: either
//! `Content-Length` or, for large bodies on 1.1 clients,
//! `Transfer-Encoding: chunked` ([`encode_response_into`]). A matching
//! [`decode_chunked`] is exported for clients (the load generator and
//! the integration tests).

/// Hard cap on the header section — a wire-level guard so a hostile
/// client cannot balloon memory before admission control sees the
/// request.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Response bodies larger than this stream as chunked
/// transfer-encoding (HTTP/1.1 requests only).
pub const CHUNK_THRESHOLD: usize = 16 * 1024;
/// Size of each chunk frame when streaming a large body. Large frames
/// keep the per-frame overhead (size line, CRLFs, client reassembly)
/// negligible against the payload.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`, `POST`.
    pub method: String,
    /// Path without the query string, e.g. `/v1/query`.
    pub path: String,
    /// The raw query string (no leading `?`), empty if absent.
    pub query: String,
    /// The request body.
    pub body: Vec<u8>,
    /// Whether the connection survives this exchange (`HTTP/1.1`
    /// default, overridden by `Connection: close` / `keep-alive`).
    pub keep_alive: bool,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0` (chunked
    /// responses are only legal on 1.1).
    pub http11: bool,
}

impl Default for Request {
    fn default() -> Request {
        Request {
            method: String::new(),
            path: String::new(),
            query: String::new(),
            body: Vec::new(),
            keep_alive: true,
            http11: true,
        }
    }
}

impl Request {
    /// Iterates `key=value` pairs of the query string (no percent
    /// decoding — the option grammar is plain ASCII).
    pub fn query_params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }
}

/// A wire-level failure while reading a request, carrying the status
/// code the connection should die with.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable description (sent as the response body).
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Attempts to parse one complete request from the front of `buf`,
/// draining the consumed bytes on success. `Ok(None)` means the buffer
/// holds only a prefix — read more and call again.
pub fn parse_request(buf: &mut Vec<u8>) -> Result<Option<Request>, HttpError> {
    // Tolerate stray CRLFs between pipelined requests (RFC 9112 §2.2).
    let start = buf
        .iter()
        .position(|&b| b != b'\r' && b != b'\n')
        .unwrap_or(buf.len());

    // Locate the header/body separator.
    let Some(head_end) = find(&buf[start..], b"\r\n\r\n").map(|i| start + i) else {
        if buf.len() - start > MAX_HEADER_BYTES {
            return Err(HttpError {
                status: 431,
                message: "header section too large".into(),
            });
        }
        return Ok(None);
    };
    if head_end - start > MAX_HEADER_BYTES {
        return Err(HttpError {
            status: 431,
            message: "header section too large".into(),
        });
    }

    let head = std::str::from_utf8(&buf[start..head_end])
        .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no target"))?
        .to_owned();
    let version = parts.next().unwrap_or("HTTP/1.1");
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::bad_request(format!(
                "unsupported protocol version '{other}'"
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };

    // Headers: Content-Length frames the body, Connection controls
    // keep-alive, Transfer-Encoding on a *request* stays unsupported.
    let mut content_length = 0usize;
    let mut keep_alive = http11;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::bad_request("invalid Content-Length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError {
                status: 501,
                message: "transfer encodings are not supported on requests".into(),
            });
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} cap"),
        });
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    let body = buf[body_start..total].to_vec();
    buf.drain(..total);
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        http11,
    }))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes one response into `out`. Bodies above [`CHUNK_THRESHOLD`]
/// stream as chunked transfer-encoding when the client speaks 1.1
/// (`chunk_ok`); everything else is `Content-Length`-framed. Returns
/// `true` if the response was chunked.
pub fn encode_response_into(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
    chunk_ok: bool,
) -> bool {
    use std::io::Write as _;
    let chunked = chunk_ok && body.len() > CHUNK_THRESHOLD;
    let connection = if keep_alive { "keep-alive" } else { "close" };
    out.reserve(body.len() + 256);
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: {connection}\r\n",
        status_text(status),
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    if chunked {
        let _ = write!(out, "Transfer-Encoding: chunked\r\n\r\n");
        for chunk in body.chunks(CHUNK_SIZE) {
            let _ = write!(out, "{:x}\r\n", chunk.len());
            out.extend_from_slice(chunk);
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
    } else {
        let _ = write!(out, "Content-Length: {}\r\n\r\n", body.len());
        out.extend_from_slice(body);
    }
    chunked
}

/// Decodes a chunked transfer-encoded body. Returns the reassembled
/// payload, or `None` while the terminating `0\r\n\r\n` frame has not
/// arrived yet (read more and call again) — a framing error also
/// returns `None` from the caller's perspective there is nothing more
/// to wait for, so malformed input yields `Some(Err)`.
pub fn decode_chunked(data: &[u8]) -> Option<Result<Vec<u8>, String>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &data[pos..];
        let line_end = find(rest, b"\r\n")?;
        let size_str = match std::str::from_utf8(&rest[..line_end]) {
            Ok(s) => s.split(';').next().unwrap_or("").trim(),
            Err(_) => return Some(Err("chunk size is not UTF-8".into())),
        };
        let Ok(size) = usize::from_str_radix(size_str, 16) else {
            return Some(Err(format!("invalid chunk size '{size_str}'")));
        };
        let chunk_start = pos + line_end + 2;
        if size == 0 {
            // Trailer section: we emit none, expect the bare CRLF.
            if data.len() < chunk_start + 2 {
                return None;
            }
            return Some(Ok(out));
        }
        if data.len() < chunk_start + size + 2 {
            return None;
        }
        out.extend_from_slice(&data[chunk_start..chunk_start + size]);
        if &data[chunk_start + size..chunk_start + size + 2] != b"\r\n" {
            return Some(Err("chunk not terminated by CRLF".into()));
        }
        pos = chunk_start + size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(raw: &[u8]) -> (Vec<Request>, Vec<u8>) {
        let mut buf = raw.to_vec();
        let mut out = Vec::new();
        while let Some(req) = parse_request(&mut buf).expect("parse") {
            out.push(req);
        }
        (out, buf)
    }

    #[test]
    fn parses_post_with_body() {
        let (reqs, rest) = parse_all(
            b"POST /query?mode=parallel&trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n(?a,b,?c)",
        );
        assert_eq!(reqs.len(), 1);
        let req = &reqs[0];
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        let params: Vec<_> = req.query_params().collect();
        assert_eq!(params, vec![("mode", "parallel"), ("trace", "1")]);
        assert_eq!(req.body_utf8().expect("utf8"), "(?a,b,?c)");
        assert!(req.keep_alive, "1.1 defaults to keep-alive");
        assert!(rest.is_empty());
    }

    #[test]
    fn parses_pipelined_requests_one_at_a_time() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                    GET /healthz HTTP/1.1\r\n\r\n\
                    POST /lint HTTP/1.1\r\nConnection: close\r\nContent-Length: 2\r\n\r\nhi";
        let (reqs, rest) = parse_all(raw);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].body, b"abc");
        assert_eq!(reqs[1].method, "GET");
        assert_eq!(reqs[1].path, "/healthz");
        assert!(reqs[1].keep_alive);
        assert_eq!(reqs[2].body, b"hi");
        assert!(!reqs[2].keep_alive, "Connection: close honored");
        assert!(rest.is_empty());
    }

    #[test]
    fn incremental_prefixes_ask_for_more_bytes() {
        let full = b"POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in [3usize, 20, 38, full.len() - 1] {
            let mut buf = full[..cut].to_vec();
            assert!(
                parse_request(&mut buf)
                    .expect("prefix parses clean")
                    .is_none(),
                "cut at {cut} must ask for more"
            );
            assert_eq!(buf.len(), cut, "prefix must not be consumed");
        }
        let mut buf = full.to_vec();
        let req = parse_request(&mut buf).expect("parse").expect("complete");
        assert_eq!(req.body, b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let (reqs, _) = parse_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!reqs[0].keep_alive);
        let (reqs, _) = parse_all(b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(!reqs[0].keep_alive, "1.0 defaults to close");
        assert!(!reqs[0].http11);
        let (reqs, _) = parse_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(reqs[0].keep_alive, "explicit 1.0 keep-alive honored");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let mut buf = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .into_bytes();
        let err = parse_request(&mut buf).expect_err("too large");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 16));
        let err = parse_request(&mut buf).expect_err("too large");
        assert_eq!(err.status, 431);
    }

    #[test]
    fn chunked_request_encoding_is_rejected() {
        let mut buf = b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        let err = parse_request(&mut buf).expect_err("unsupported");
        assert_eq!(err.status, 501);
    }

    #[test]
    fn small_responses_are_content_length_framed() {
        let mut out = Vec::new();
        let chunked = encode_response_into(
            &mut out,
            200,
            "application/json",
            &[("Retry-After", "1".to_owned())],
            b"{}",
            true,
            true,
        );
        assert!(!chunked);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn large_bodies_chunk_and_roundtrip() {
        let body: Vec<u8> = (0..3 * CHUNK_THRESHOLD).map(|i| (i % 251) as u8).collect();
        let mut out = Vec::new();
        let chunked =
            encode_response_into(&mut out, 200, "application/json", &[], &body, true, true);
        assert!(chunked);
        let text_head = String::from_utf8_lossy(&out[..200]);
        assert!(
            text_head.contains("Transfer-Encoding: chunked"),
            "{text_head}"
        );
        assert!(!text_head.contains("Content-Length"), "{text_head}");
        let sep = find(&out, b"\r\n\r\n").expect("header end") + 4;
        let decoded = decode_chunked(&out[sep..])
            .expect("complete")
            .expect("well-formed");
        assert_eq!(decoded, body);

        // A truncated stream asks for more bytes.
        assert!(decode_chunked(&out[sep..out.len() - 3]).is_none());

        // Without 1.1 chunking permission the body stays whole.
        let mut plain = Vec::new();
        let chunked = encode_response_into(
            &mut plain,
            200,
            "application/json",
            &[],
            &body,
            false,
            false,
        );
        assert!(!chunked);
        assert!(String::from_utf8_lossy(&plain[..200]).contains("Content-Length"));
    }
}
