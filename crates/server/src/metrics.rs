//! Server-side counters, exported by `GET /metrics`.

use owql_obs::prometheus;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free request accounting shared by the accept loop and workers.
///
/// All counters are monotonic except `in_flight` and `queue_depth`,
/// which are gauges.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted (whether admitted or shed).
    pub accepted_total: AtomicU64,
    /// Requests answered, by status class.
    pub responses_2xx: AtomicU64,
    /// `400`/`404`/`405`-class answers.
    pub responses_4xx: AtomicU64,
    /// `5xx` answers (including `504` deadline timeouts).
    pub responses_5xx: AtomicU64,
    /// Requests shed with `429` because the admission queue was full.
    pub shed_total: AtomicU64,
    /// Requests that exceeded their deadline (`504`s).
    pub timeouts_total: AtomicU64,
    /// Requests currently being evaluated by workers.
    pub in_flight: AtomicU64,
    /// Requests currently waiting in the dispatch queue.
    pub queue_depth: AtomicU64,
    /// Epoll readiness events processed by the event loop.
    pub ready_events_total: AtomicU64,
    /// Connections currently registered with the event loop.
    pub connections_open: AtomicU64,
    /// Requests served beyond the first on a kept-alive connection.
    pub keepalive_reuses_total: AtomicU64,
    /// Requests that arrived pipelined behind another request on the
    /// same connection.
    pub pipelined_requests_total: AtomicU64,
    /// Responses streamed as chunked transfer-encoding.
    pub chunked_responses_total: AtomicU64,
}

impl ServerMetrics {
    /// Records a response status into the right class counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Serializes the counters as a JSON object fragment (no trailing
    /// comma; caller embeds it).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"accepted_total\": {}, \"responses_2xx\": {}, ",
                "\"responses_4xx\": {}, \"responses_5xx\": {}, ",
                "\"shed_total\": {}, \"timeouts_total\": {}, ",
                "\"in_flight\": {}, \"queue_depth\": {}, ",
                "\"ready_events_total\": {}, \"connections_open\": {}, ",
                "\"keepalive_reuses_total\": {}, \"pipelined_requests_total\": {}, ",
                "\"chunked_responses_total\": {}}}"
            ),
            self.accepted_total.load(Ordering::Relaxed),
            self.responses_2xx.load(Ordering::Relaxed),
            self.responses_4xx.load(Ordering::Relaxed),
            self.responses_5xx.load(Ordering::Relaxed),
            self.shed_total.load(Ordering::Relaxed),
            self.timeouts_total.load(Ordering::Relaxed),
            self.in_flight.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            self.ready_events_total.load(Ordering::Relaxed),
            self.connections_open.load(Ordering::Relaxed),
            self.keepalive_reuses_total.load(Ordering::Relaxed),
            self.pipelined_requests_total.load(Ordering::Relaxed),
            self.chunked_responses_total.load(Ordering::Relaxed),
        )
    }

    /// Renders the counters in Prometheus text format (the server
    /// section of `GET /metrics`).
    pub fn render_prometheus(&self, out: &mut String) {
        prometheus::counter(
            out,
            "owql_server_accepted_total",
            "Connections accepted (admitted or shed).",
            self.accepted_total.load(Ordering::Relaxed),
        );
        prometheus::header(
            out,
            "owql_server_responses_total",
            "counter",
            "Responses by status class.",
        );
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            let _ = writeln!(
                out,
                "owql_server_responses_total{{class=\"{class}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        prometheus::counter(
            out,
            "owql_server_shed_total",
            "Requests shed with 429 (full queue or admission ceiling).",
            self.shed_total.load(Ordering::Relaxed),
        );
        prometheus::counter(
            out,
            "owql_server_timeouts_total",
            "Requests that exceeded their deadline (504).",
            self.timeouts_total.load(Ordering::Relaxed),
        );
        prometheus::gauge(
            out,
            "owql_server_in_flight",
            "Requests currently being evaluated by workers.",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        prometheus::gauge(
            out,
            "owql_server_queue_depth",
            "Requests waiting in the dispatch queue.",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        prometheus::counter(
            out,
            "owql_server_ready_events_total",
            "Epoll readiness events processed by the event loop.",
            self.ready_events_total.load(Ordering::Relaxed),
        );
        prometheus::gauge(
            out,
            "owql_server_connections_open",
            "Connections currently registered with the event loop.",
            self.connections_open.load(Ordering::Relaxed) as f64,
        );
        prometheus::counter(
            out,
            "owql_server_keepalive_reuses_total",
            "Requests served beyond the first on a kept-alive connection.",
            self.keepalive_reuses_total.load(Ordering::Relaxed),
        );
        prometheus::counter(
            out,
            "owql_server_pipelined_requests_total",
            "Requests that arrived pipelined behind another on the same connection.",
            self.pipelined_requests_total.load(Ordering::Relaxed),
        );
        prometheus::counter(
            out,
            "owql_server_chunked_responses_total",
            "Responses streamed as chunked transfer-encoding.",
            self.chunked_responses_total.load(Ordering::Relaxed),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_route_to_counters() {
        let m = ServerMetrics::default();
        m.record_status(200);
        m.record_status(204);
        m.record_status(400);
        m.record_status(429);
        m.record_status(504);
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 1);
        let json = m.to_json();
        assert!(json.contains("\"responses_2xx\": 2"));
        assert!(json.contains("\"responses_5xx\": 1"));
    }
}
