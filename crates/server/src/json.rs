//! A minimal JSON *reader* for the `/v1` request bodies.
//!
//! The workspace writes JSON through `owql_obs::json`; this is the
//! matching dependency-free parser for the small envelope the
//! versioned API accepts (`{"pattern": "...", "opts": {...}}`).
//! Recursive descent over the full JSON grammar — objects, arrays,
//! strings with escapes, numbers, booleans, null — with a depth guard
//! so a hostile body cannot blow the stack.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numbers that are in fact non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        let start = *pos;
        // Bulk-copy the clean run.
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8 in string")?,
        );
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogate pairs are rejected rather than
                        // paired — the query grammar never needs them.
                        out.push(char::from_u32(hex).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            _ => unreachable!(),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        pairs.push((key, parse_value(bytes, pos, depth + 1)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_v1_envelope() {
        let doc = parse(
            r#"{"pattern": "(?x, knows, ?y)",
                "opts": {"mode": "parallel", "trace": true, "deadline_ms": 250,
                         "cache": false, "max_class": "np", "tags": [1, 2.5, null]}}"#,
        )
        .expect("valid");
        assert_eq!(
            doc.get("pattern").and_then(|v| v.as_str()),
            Some("(?x, knows, ?y)")
        );
        let opts = doc.get("opts").expect("opts");
        assert_eq!(opts.get("mode").and_then(|v| v.as_str()), Some("parallel"));
        assert_eq!(opts.get("trace").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(opts.get("cache").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(opts.get("deadline_ms").and_then(|v| v.as_u64()), Some(250));
        assert_eq!(
            opts.get("tags"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Null
            ]))
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = parse(r#""a\"b\\c\ndA""#).expect("valid");
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, ]",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"a\": 1e999}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_u64_coercion() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }
}
