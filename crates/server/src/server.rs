//! The query server: accept loop, bounded admission queue, worker
//! threads, request routing, graceful shutdown.
//!
//! ## Life of a request
//!
//! 1. The **accept loop** (one thread) takes the TCP connection and
//!    offers it to the admission queue. A full queue sheds the
//!    connection immediately with `429` + `Retry-After` — back-pressure
//!    costs one response write, never a worker.
//! 2. A **worker** (fixed set of threads) pops the connection, reads
//!    one HTTP request, and routes it. Query evaluation pins one store
//!    [`Snapshot`](owql_store::Store::snapshot) per request — writers
//!    never block readers, and the response reports the epoch it is
//!    consistent with.
//! 3. Deadlines ride the unified API: `deadline_ms` becomes
//!    [`ExecOpts::deadline`], the engine's cooperative budget unwinds
//!    the evaluation, and the worker maps
//!    [`EvalError::Timeout`] to `504` — the worker itself is never
//!    poisoned or stuck.
//!    Likewise the **admission policy**: a configured
//!    [`ServerConfig::admission_ceiling`] (tightenable per request via
//!    `max_class=`) becomes [`ExecOpts::max_class`]; a query whose
//!    statically determined complexity class exceeds it is shed with
//!    `429` before any evaluation work, the body carrying an `AD001`
//!    diagnostic from `owql-lint`. `POST /lint` exposes the full
//!    analyzer (fragment, complexity, well-designedness, diagnostics
//!    with spans and line:column) without evaluating anything.
//! 4. **Shutdown** flips a flag, wakes the accept loop with a loopback
//!    connection, closes the queue, and joins every thread — queued and
//!    in-flight requests drain before the listener dies.

use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::ServerMetrics;
use owql_eval::{EvalError, ExecMode, ExecOpts};
use owql_exec::Pool;
use owql_obs::json;
use owql_parser::parse_pattern;
use owql_parser::Span;
use owql_store::{QueryRequest, Store};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Admission-queue bound: connections waiting beyond the workers.
    /// A full queue sheds new connections with `429`.
    pub queue_capacity: usize,
    /// Evaluation pool width *per worker* (parallel-mode requests).
    pub pool_threads: usize,
    /// Deadline applied to requests that don't set `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Value of the `Retry-After` header on `429` responses, seconds.
    pub retry_after_secs: u64,
    /// Socket read/write timeout (slowloris guard).
    pub io_timeout: Duration,
    /// Admission ceiling: queries whose statically determined
    /// complexity class ranks above this are shed with `429` before
    /// evaluation. Requests can tighten it with `max_class=` but never
    /// raise it. `None` admits every class.
    pub admission_ceiling: Option<owql_lint::ComplexityClass>,
    /// Queries slower than this land in the store's slow-query ring
    /// buffer (exported under `GET /metrics?format=json`). Requests can
    /// override it with `slow_ms=` (`slow_ms=0` captures every query —
    /// the smoke-test injection mechanism). `None` disables capture.
    pub slow_query_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            pool_threads: 2,
            default_deadline: Some(Duration::from_secs(30)),
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(5),
            admission_ceiling: None,
            slow_query_threshold: Some(Duration::from_millis(250)),
        }
    }
}

/// The bounded admission queue: a `Mutex<VecDeque>` + `Condvar`.
/// `push` never blocks (full ⇒ shed); `pop` blocks until a connection
/// arrives or the queue is closed *and* drained.
#[derive(Debug)]
struct Admission {
    inner: Mutex<AdmissionInner>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct AdmissionInner {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

impl Admission {
    fn new(capacity: usize) -> Admission {
        Admission {
            inner: Mutex::new(AdmissionInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Offers a connection; hands it back if the queue is full or
    /// closed (the caller sheds it).
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(stream);
        }
        inner.queue.push_back(stream);
        let depth = inner.queue.len();
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("admission lock poisoned");
        loop {
            if let Some(stream) = inner.queue.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("admission lock poisoned");
        }
    }

    /// Closes the queue: queued connections still drain, new pushes
    /// bounce, blocked poppers wake.
    fn close(&self) {
        self.inner.lock().expect("admission lock poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// A running query server. Dropping it without calling
/// [`Server::shutdown`] detaches the threads (the test and example
/// entry points always shut down explicitly).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    admission: Arc<Admission>,
    metrics: Arc<ServerMetrics>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the accept loop plus `config.workers` workers.
    pub fn start(store: Arc<Store>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let admission = Arc::new(Admission::new(config.queue_capacity));
        let metrics = Arc::new(ServerMetrics::default());

        let worker_handles: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let store = store.clone();
                let admission = admission.clone();
                let metrics = metrics.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    // Each worker owns its pool: concurrent requests
                    // never contend for evaluation threads.
                    let pool = Pool::new(config.pool_threads.max(1));
                    while let Some(mut stream) = admission.pop() {
                        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                        handle_connection(&mut stream, &store, &pool, &config, &metrics);
                        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        let accept_handle = {
            let shutdown = shutdown.clone();
            let admission = admission.clone();
            let metrics = metrics.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    metrics.accepted_total.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_read_timeout(Some(config.io_timeout));
                    let _ = stream.set_write_timeout(Some(config.io_timeout));
                    match admission.push(stream) {
                        Ok(_) => {
                            metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(mut shed) => {
                            // Queue full: shed without consuming a
                            // worker. A short-lived thread reads the
                            // request before answering — closing with
                            // unread bytes would RST the connection
                            // and lose the 429 (the socket's io
                            // timeout bounds a slow client).
                            metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                            metrics.record_status(429);
                            let retry_after = config.retry_after_secs.to_string();
                            std::thread::spawn(move || {
                                let _ = read_request(&mut shed);
                                let _ = write_response(
                                    &mut shed,
                                    429,
                                    "application/json",
                                    &[("Retry-After", retry_after)],
                                    &error_body("admission queue is full, retry later"),
                                );
                                let _ = shed.shutdown(std::net::Shutdown::Write);
                            });
                        }
                    }
                }
            })
        };

        Ok(Server {
            addr,
            shutdown,
            admission,
            metrics,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // The accept loop is blocked in accept(); a loopback connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.admission.close();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// JSON error body shared by every non-2xx answer.
fn error_body(message: &str) -> String {
    format!("{{\"error\": {}}}\n", json::string(message))
}

/// Parses `ExecOpts` from the request's query string.
fn parse_opts(req: &Request, config: &ServerConfig) -> Result<ExecOpts, HttpError> {
    let mut opts = ExecOpts::seq();
    opts.deadline = config.default_deadline;
    opts.max_class = config.admission_ceiling;
    opts.slow_query = config.slow_query_threshold;
    for (key, value) in req.query_params() {
        match key {
            "mode" => {
                opts.mode = match value {
                    "seq" => ExecMode::Seq,
                    "parallel" => ExecMode::Parallel,
                    other => {
                        return Err(HttpError::bad_request(format!(
                            "unknown mode '{other}' (expected 'seq' or 'parallel')"
                        )))
                    }
                }
            }
            "trace" => opts.trace = parse_flag(key, value)?,
            "cache" => opts.cache = parse_flag(key, value)?,
            "optimize" => opts.optimize = parse_flag(key, value)?,
            "columnar" => opts.columnar = Some(parse_flag(key, value)?),
            "slow_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| HttpError::bad_request(format!("invalid slow_ms '{value}'")))?;
                opts.slow_query = Some(Duration::from_millis(ms));
            }
            "deadline_ms" => {
                let ms: u64 = value.parse().map_err(|_| {
                    HttpError::bad_request(format!("invalid deadline_ms '{value}'"))
                })?;
                opts.deadline = Some(Duration::from_millis(ms));
            }
            "max_class" => {
                let requested: owql_lint::ComplexityClass =
                    value.parse().map_err(HttpError::bad_request)?;
                // Requests may tighten the server ceiling, never relax it.
                opts.max_class = Some(match opts.max_class {
                    Some(configured) if configured.rank() < requested.rank() => configured,
                    _ => requested,
                });
            }
            other => {
                return Err(HttpError::bad_request(format!(
                    "unknown query parameter '{other}'"
                )))
            }
        }
    }
    Ok(opts)
}

fn parse_flag(key: &str, value: &str) -> Result<bool, HttpError> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(HttpError::bad_request(format!(
            "invalid boolean '{other}' for '{key}'"
        ))),
    }
}

/// Serializes an answer set deterministically (mappings in sorted
/// order, variables sorted within each mapping).
fn mappings_json(mappings: &owql_algebra::MappingSet) -> String {
    let mut out = String::from("[");
    for (i, m) in mappings.iter_sorted().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('{');
        for (j, (var, value)) in m.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(var.name()));
            out.push_str(": ");
            out.push_str(&json::string(value.as_str()));
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// `true` iff the request asked for the JSON rendering of `/metrics`
/// (`?format=json`); the default is Prometheus text exposition.
fn metrics_wants_json(req: &Request) -> bool {
    req.query_params()
        .any(|(key, value)| key == "format" && value == "json")
}

/// `GET /metrics?format=json`: server counters, store gauges, persist
/// counters, and the hub (latency histograms + slow-query log).
fn metrics_json(store: &Store, metrics: &ServerMetrics) -> String {
    let obs = store.observe();
    let persist = match store.observe_persist() {
        Some(p) => format!(
            concat!(
                "{{\"wal_bytes\": {}, \"wal_records\": {}, ",
                "\"segment_generation\": {}, \"last_checkpoint_epoch\": {}, ",
                "\"checkpoints\": {}, \"recovery_replayed_records\": {}}}"
            ),
            p.wal_bytes,
            p.wal_records,
            p.segment_generation,
            p.last_checkpoint_epoch,
            p.checkpoints,
            p.recovery_replayed_records,
        ),
        None => "null".to_owned(),
    };
    format!(
        concat!(
            "{{\"server\": {},\n",
            " \"store\": {{\"epoch\": {}, \"triples\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_hit_rate\": {}}},\n",
            " \"persist\": {},\n",
            " \"hub\": {}}}\n"
        ),
        metrics.to_json(),
        obs.epoch,
        obs.triples,
        obs.cache_hits,
        obs.cache_misses,
        json::number(obs.cache_hit_rate),
        persist,
        store.metrics_hub().to_json(" "),
    )
}

/// `GET /metrics` (default): Prometheus text exposition — the hub's
/// histograms and counters, the server's request counters, and the
/// store's state gauges.
fn metrics_prometheus(store: &Store, metrics: &ServerMetrics) -> String {
    use owql_obs::prometheus;
    let mut out = String::new();
    store.metrics_hub().render_prometheus(&mut out);
    metrics.render_prometheus(&mut out);
    let obs = store.observe();
    prometheus::gauge(
        &mut out,
        "owql_store_epoch",
        "Current store epoch.",
        obs.epoch as f64,
    );
    prometheus::gauge(
        &mut out,
        "owql_store_triples",
        "Triples visible to a fresh snapshot.",
        obs.triples as f64,
    );
    prometheus::counter(
        &mut out,
        "owql_store_cache_hits_total",
        "Query-cache hits.",
        obs.cache_hits,
    );
    prometheus::counter(
        &mut out,
        "owql_store_cache_misses_total",
        "Query-cache misses.",
        obs.cache_misses,
    );
    if let Some(p) = store.observe_persist() {
        prometheus::gauge(
            &mut out,
            "owql_wal_records",
            "Commit records currently in the write-ahead log.",
            p.wal_records as f64,
        );
        prometheus::counter(
            &mut out,
            "owql_checkpoints_total",
            "Checkpoints taken since this store opened.",
            p.checkpoints,
        );
    }
    out
}

/// Reads, routes, answers, and closes one connection.
fn handle_connection(
    stream: &mut TcpStream,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) {
    let req = match read_request(stream) {
        Ok(Some(req)) => req,
        Ok(None) => return, // client went away before sending anything
        Err(e) => {
            metrics.record_status(e.status);
            let _ = write_response(
                stream,
                e.status,
                "application/json",
                &[],
                &error_body(&e.message),
            );
            return;
        }
    };
    let (status, body) = route(&req, store, pool, config, metrics);
    metrics.record_status(status);
    // Everything speaks JSON except the default (Prometheus text)
    // rendering of /metrics.
    let content_type = if req.method == "GET" && req.path == "/metrics" && !metrics_wants_json(&req)
    {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    let _ = write_response(stream, status, content_type, &[], &body);
}

/// Dispatches one parsed request to its endpoint, returning
/// `(status, body)`.
fn route(
    req: &Request,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            format!("{{\"status\": \"ok\", \"epoch\": {}}}\n", store.epoch()),
        ),
        ("GET", "/metrics") => {
            if metrics_wants_json(req) {
                (200, metrics_json(store, metrics))
            } else {
                (200, metrics_prometheus(store, metrics))
            }
        }
        ("POST", "/query") => answer_query(req, store, pool, config, metrics),
        ("POST", "/explain") => answer_explain(req, store, config),
        ("POST", "/lint") => answer_lint(req),
        (_, "/healthz" | "/metrics" | "/query" | "/explain" | "/lint") => {
            (405, error_body("method not allowed for this endpoint"))
        }
        _ => (404, error_body("no such endpoint")),
    }
}

/// `POST /query`: pattern text in, mappings (and optionally a profile)
/// out.
fn answer_query(
    req: &Request,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> (u16, String) {
    let (pattern, opts) = match parse_query_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return (e.status, error_body(&e.message)),
    };
    let request = QueryRequest::with_opts(pattern, opts);
    match store.query_request(&request, pool) {
        Ok(outcome) => {
            let mut body = format!(
                "{{\"epoch\": {}, \"cache_hit\": {}, \"count\": {}, \"mappings\": {}",
                outcome.epoch,
                outcome.cache_hit,
                outcome.mappings.len(),
                mappings_json(&outcome.mappings),
            );
            if let Some(profile) = &outcome.profile {
                body.push_str(",\n\"profile\": ");
                body.push_str(&profile.to_json());
            }
            body.push_str("}\n");
            (200, body)
        }
        Err(e @ EvalError::Timeout { .. }) => {
            metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
            (504, error_body(&e.to_string()))
        }
        // Admission shed: 429 (no Retry-After — retrying the same
        // query cannot succeed) with a machine-readable AD001
        // diagnostic alongside the error message.
        Err(e @ EvalError::AdmissionDenied { .. }) => {
            metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            let text = request.pattern.to_string();
            let diagnostic = owql_lint::Diagnostic::new(
                owql_lint::RuleId::AdmissionDenied,
                Span::new(0, text.len()),
                e.to_string(),
            );
            (
                429,
                format!(
                    "{{\"error\": {}, \"diagnostic\": {}}}\n",
                    json::string(&e.to_string()),
                    diagnostic.to_json(&text),
                ),
            )
        }
        #[allow(unreachable_patterns)] // EvalError is #[non_exhaustive]
        Err(e) => (500, error_body(&e.to_string())),
    }
}

/// `POST /lint`: pattern text in, full static analysis out — fragment,
/// complexity class, well-designedness verdict, and every diagnostic
/// with its byte span and line:column into the request body. Nothing
/// is evaluated.
fn answer_lint(req: &Request) -> (u16, String) {
    let text = match req.body_utf8() {
        Ok(text) => text.trim(),
        Err(e) => return (e.status, error_body(&e.message)),
    };
    if text.is_empty() {
        return (
            400,
            error_body("empty request body (expected a graph pattern)"),
        );
    }
    match owql_lint::analyze_source(text) {
        Ok(analysis) => {
            let diagnostics: Vec<String> = analysis
                .diagnostics
                .iter()
                .map(|d| d.to_json(text))
                .collect();
            (
                200,
                format!(
                    "{{\"fragment\": {}, \"complexity\": {}, \"well_designed\": {}, \
                     \"count\": {}, \"diagnostics\": [{}]}}\n",
                    json::string(&analysis.fragment.to_string()),
                    json::string(&analysis.complexity.to_string()),
                    json::string(analysis.well_designed.as_str()),
                    analysis.diagnostics.len(),
                    diagnostics.join(", "),
                ),
            )
        }
        Err(e) => (400, error_body(&e.to_string())),
    }
}

/// `POST /explain`: pattern text in, EXPLAIN ANALYZE out.
fn answer_explain(req: &Request, store: &Store, config: &ServerConfig) -> (u16, String) {
    let (pattern, _) = match parse_query_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return (e.status, error_body(&e.message)),
    };
    let snapshot = store.snapshot();
    let plan = snapshot.engine().explain_analyze(&pattern);
    (
        200,
        format!(
            "{{\"epoch\": {}, \"answers\": {}, \"total_ms\": {}, \"plan\": {}}}\n",
            snapshot.epoch(),
            plan.answers,
            json::ns_as_ms(plan.total_ns),
            json::string(&plan.to_string()),
        ),
    )
}

/// Shared body+options parsing for `/query` and `/explain`. A parse
/// failure echoes the `ParseError` `Display` (with its byte offset)
/// verbatim in the `400` body.
fn parse_query_input(
    req: &Request,
    config: &ServerConfig,
) -> Result<(owql_algebra::Pattern, ExecOpts), HttpError> {
    let opts = parse_opts(req, config)?;
    let text = req.body_utf8()?;
    if text.trim().is_empty() {
        return Err(HttpError::bad_request(
            "empty request body (expected a graph pattern)",
        ));
    }
    let pattern = parse_pattern(text.trim()).map_err(|e| HttpError::bad_request(e.to_string()))?;
    Ok((pattern, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_req(target: &str) -> Request {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            body: Vec::new(),
        }
    }

    #[test]
    fn opts_parse_from_query_string() {
        let config = ServerConfig::default();
        let req = get_req("/query?mode=parallel&trace=1&cache=0&deadline_ms=250");
        let opts = parse_opts(&req, &config).expect("valid");
        assert_eq!(opts.mode, ExecMode::Parallel);
        assert!(opts.trace);
        assert!(!opts.cache);
        assert_eq!(opts.deadline, Some(Duration::from_millis(250)));

        // Defaults: sequential, cached, config deadline and slow-query
        // threshold.
        let opts = parse_opts(&get_req("/query"), &config).expect("valid");
        assert_eq!(opts.mode, ExecMode::Seq);
        assert!(opts.cache);
        assert_eq!(opts.deadline, config.default_deadline);
        assert_eq!(opts.slow_query, config.slow_query_threshold);
        assert_eq!(opts.columnar, None);

        // Per-request overrides for the columnar engine and the
        // slow-query threshold.
        let opts = parse_opts(&get_req("/query?columnar=0&slow_ms=5"), &config).expect("valid");
        assert_eq!(opts.columnar, Some(false));
        assert_eq!(opts.slow_query, Some(Duration::from_millis(5)));

        assert!(parse_opts(&get_req("/query?mode=warp"), &config).is_err());
        assert!(parse_opts(&get_req("/query?trace=yes"), &config).is_err());
        assert!(parse_opts(&get_req("/query?bogus=1"), &config).is_err());
        assert!(parse_opts(&get_req("/query?deadline_ms=abc"), &config).is_err());
        assert!(parse_opts(&get_req("/query?slow_ms=fast"), &config).is_err());
        assert!(parse_opts(&get_req("/query?columnar=maybe"), &config).is_err());
    }

    #[test]
    fn max_class_tightens_but_never_relaxes_the_configured_ceiling() {
        use owql_lint::ComplexityClass;
        let open = ServerConfig::default();
        assert_eq!(
            parse_opts(&get_req("/query"), &open)
                .expect("valid")
                .max_class,
            None
        );
        // No server ceiling: the request sets one freely.
        let opts = parse_opts(&get_req("/query?max_class=dp"), &open).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Dp));

        let capped = ServerConfig {
            admission_ceiling: Some(ComplexityClass::Np),
            ..ServerConfig::default()
        };
        // Default: the configured ceiling rides along.
        let opts = parse_opts(&get_req("/query"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Np));
        // Tightening below the ceiling is honored...
        let opts = parse_opts(&get_req("/query?max_class=p"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::P));
        // ...but asking for more than the server allows is clamped.
        let opts = parse_opts(&get_req("/query?max_class=pspace"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Np));
        assert!(parse_opts(&get_req("/query?max_class=turing"), &capped).is_err());
    }

    #[test]
    fn mappings_serialize_sorted_and_escaped() {
        use owql_algebra::Mapping;
        let mut set = owql_algebra::MappingSet::new();
        set.insert(Mapping::from_str_pairs(&[("b", "B"), ("a", "A")]));
        set.insert(Mapping::from_str_pairs(&[("a", "quo\"te")]));
        let json = mappings_json(&set);
        assert_eq!(json, r#"[{"a": "A", "b": "B"}, {"a": "quo\"te"}]"#);
        assert!(mappings_json(&owql_algebra::MappingSet::new()) == "[]");
    }

    #[test]
    fn admission_queue_bounds_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let q = Admission::new(2);
        let mk = || TcpStream::connect(addr).expect("connect");
        assert!(q.push(mk()).is_ok());
        assert!(q.push(mk()).is_ok());
        assert!(q.push(mk()).is_err(), "third push exceeds capacity 2");
        assert!(q.pop().is_some());
        q.close();
        assert!(q.pop().is_some(), "close drains remaining entries");
        assert!(q.pop().is_none());
        assert!(q.push(mk()).is_err(), "closed queue rejects pushes");
    }

    #[test]
    fn metrics_route_reports_persist_section() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        // In-memory store: persist is explicitly null.
        let store = Store::new();
        let (status, body) = route(
            &get_req("/metrics?format=json"),
            &store,
            &pool,
            &config,
            &metrics,
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"persist\": null"), "{body}");
        assert!(body.contains("\"hub\""), "{body}");
        assert!(body.contains("\"slow_queries\""), "{body}");

        // Durable store: the counters appear.
        let dir = std::env::temp_dir().join(format!("owql-server-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Store::open(
            &dir,
            owql_store::StoreOptions::default(),
            owql_store::PersistConfig::default()
                .no_fsync()
                .inline_indexer(),
        )
        .expect("open durable store");
        durable.insert(owql_rdf::Triple::new("a", "p", "b"));
        let (status, body) = route(
            &get_req("/metrics?format=json"),
            &durable,
            &pool,
            &config,
            &metrics,
        );
        assert_eq!(status, 200);
        for key in [
            "\"wal_bytes\"",
            "\"wal_records\": 1",
            "\"segment_generation\"",
            "\"last_checkpoint_epoch\"",
            "\"checkpoints\"",
            "\"recovery_replayed_records\"",
            "\"wal_fsync\"",
            "\"histogram_buckets\"",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }

    /// The golden Prometheus-format test: after `N` queries the default
    /// `/metrics` rendering carries every `# TYPE`/`# HELP` pair, a
    /// monotonically non-decreasing cumulative `le` series ending in
    /// `+Inf`, and `owql_query_latency_seconds_count == N`.
    #[test]
    fn metrics_route_renders_prometheus_text_by_default() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        store.insert(owql_rdf::Triple::new("b", "p", "c"));

        const N: usize = 7;
        let mut query = get_req("/query?cache=0&trace=1");
        query.method = "POST".into();
        query.body = b"((?x, p, ?y) AND (?y, p, ?z))".to_vec();
        for _ in 0..N {
            let (status, _) = route(&query, &store, &pool, &config, &metrics);
            assert_eq!(status, 200);
        }

        let (status, body) = route(&get_req("/metrics"), &store, &pool, &config, &metrics);
        assert_eq!(status, 200);
        assert!(
            !body.trim_start().starts_with('{'),
            "default rendering must be Prometheus text, not JSON: {body}"
        );
        for family in [
            ("owql_queries_total", "counter"),
            ("owql_query_latency_seconds", "histogram"),
            ("owql_operator_latency_seconds", "histogram"),
            ("owql_columnar_runs_total", "counter"),
            ("owql_columnar_fallbacks_total", "counter"),
            ("owql_wal_fsync_seconds", "histogram"),
            ("owql_checkpoint_seconds", "histogram"),
            ("owql_slow_queries_total", "counter"),
            ("owql_server_accepted_total", "counter"),
            ("owql_server_responses_total", "counter"),
            ("owql_store_epoch", "gauge"),
            ("owql_store_triples", "gauge"),
        ] {
            let (name, kind) = family;
            assert!(
                body.contains(&format!("# TYPE {name} {kind}")),
                "missing # TYPE {name} {kind} in:\n{body}"
            );
            assert!(
                body.contains(&format!("# HELP {name} ")),
                "missing # HELP {name} in:\n{body}"
            );
        }
        assert!(
            body.contains(&format!("owql_query_latency_seconds_count {N}")),
            "count must equal the {N} queries served:\n{body}"
        );
        assert!(body.contains("owql_store_triples 2"), "{body}");

        // Cumulative bucket counts are monotone and end at +Inf == count.
        let buckets: Vec<u64> = body
            .lines()
            .filter(|l| l.starts_with("owql_query_latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!buckets.is_empty());
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "le series must be cumulative: {buckets:?}"
        );
        assert_eq!(*buckets.last().unwrap(), N as u64, "+Inf bucket == count");
        let inf_lines: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("owql_query_latency_seconds_bucket") && l.contains("+Inf"))
            .collect();
        assert_eq!(inf_lines.len(), 1, "exactly one +Inf bucket");
    }

    /// `slow_ms=0` forces every query into the slow-query log, which the
    /// JSON metrics rendering then exposes.
    #[test]
    fn slow_ms_zero_injects_into_the_slow_query_log() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));

        let mut query = get_req("/query?cache=0&slow_ms=0");
        query.method = "POST".into();
        query.body = b"(?x, p, ?y)".to_vec();
        let (status, _) = route(&query, &store, &pool, &config, &metrics);
        assert_eq!(status, 200);

        let (status, body) = route(
            &get_req("/metrics?format=json"),
            &store,
            &pool,
            &config,
            &metrics,
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"slow_queries_total\": 1"), "{body}");
        assert!(body.contains("(?x, p, ?y)"), "{body}");
        let (_, prom) = route(&get_req("/metrics"), &store, &pool, &config, &metrics);
        assert!(prom.contains("owql_slow_queries_total 1"), "{prom}");
    }

    #[test]
    fn route_rejects_unknown_paths_and_methods() {
        let store = Store::new();
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let (status, _) = route(&get_req("/nope"), &store, &pool, &config, &metrics);
        assert_eq!(status, 404);
        let mut post = get_req("/healthz");
        post.method = "POST".into();
        let (status, _) = route(&post, &store, &pool, &config, &metrics);
        assert_eq!(status, 405);
    }

    #[test]
    fn query_route_answers_and_echoes_parse_errors() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let mut req = get_req("/query");
        req.method = "POST".into();
        req.body = b"(?x, p, ?y)".to_vec();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 200);
        assert!(body.contains("\"count\": 1"));
        assert!(body.contains("\"x\": \"a\""));

        req.body = b"(?x, p".to_vec();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 400);
        assert!(body.contains("parse error at byte"), "{body}");

        // The deadline path maps to 504.
        req.body = b"(?x, p, ?y)".to_vec();
        req.query = "deadline_ms=0&cache=0".into();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 504);
        assert!(body.contains("deadline"));
    }

    #[test]
    fn admission_ceiling_sheds_with_429_and_ad001_diagnostic() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig {
            admission_ceiling: Some(owql_lint::ComplexityClass::Np),
            ..ServerConfig::default()
        };
        let metrics = ServerMetrics::default();

        let mut req = get_req("/query");
        req.method = "POST".into();
        // PSPACE-class body: NS over a non-AUFS operand.
        req.body = b"NS(((?x, p, ?y) OPT (?y, p, ?z)))".to_vec();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("\"rule\": \"AD001\""), "{body}");
        assert!(body.contains("above the configured NP ceiling"), "{body}");
        assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 1);

        // At or under the ceiling the same store still answers.
        req.body = b"(?x, p, ?y)".to_vec();
        let (status, _) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 200);
    }

    #[test]
    fn lint_route_reports_diagnostics_without_evaluating() {
        let store = Store::new();
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let mut req = get_req("/lint");
        req.method = "POST".into();
        req.body = b"((?X, a, Chile) AND\n ((?Y, a, Chile) OPT (?Y, b, ?X)))".to_vec();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"fragment\": \"SPARQL\""), "{body}");
        assert!(body.contains("\"complexity\": \"PSPACE\""), "{body}");
        assert!(body.contains("\"well_designed\": \"violated\""), "{body}");
        assert!(body.contains("\"rule\": \"WD001\""), "{body}");
        // The WD001 span starts on line 2 of the multi-line body.
        assert!(body.contains("\"line\": 2"), "{body}");

        req.method = "GET".into();
        let (status, _) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 405);

        req.method = "POST".into();
        req.body = b"(?x, p".to_vec();
        let (status, body) = route(&req, &store, &pool, &config, &metrics);
        assert_eq!(status, 400);
        assert!(body.contains("parse error at byte"), "{body}");
    }
}
