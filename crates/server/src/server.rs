//! The query server: an epoll event loop, a bounded dispatch queue,
//! worker threads, request routing, graceful shutdown.
//!
//! ## Life of a request
//!
//! 1. The **event loop** (one thread, [`sys::Epoll`](crate::sys::Epoll))
//!    owns the listener and every connection. Sockets are non-blocking;
//!    reads append into a per-connection buffer and
//!    [`parse_request`] peels complete
//!    requests off the front — several pipelined requests parse out of
//!    one readable event. Responses queue into a per-connection write
//!    buffer flushed as the socket allows (`EPOLLOUT` is armed only
//!    while bytes are pending).
//! 2. Parsed requests are **dispatched** to a bounded job queue, one at
//!    a time per connection so pipelined responses keep request order.
//!    A full queue sheds with `429` + `Retry-After` written inline by
//!    the event loop — back-pressure costs one buffered write, never a
//!    worker, and the connection *stays open* (a shed under pipelining
//!    does not sacrifice the keep-alive socket). `GET` requests
//!    (`/healthz`, `/metrics`) bypass the bound so probes stay
//!    responsive under overload.
//! 3. A **worker** (fixed set of threads, each owning an evaluation
//!    pool) pops a job, routes it, and frames the response bytes
//!    (`Content-Length`, or chunked transfer-encoding for large bodies
//!    on HTTP/1.1). Query evaluation pins one store
//!    [`Snapshot`](owql_store::Store::snapshot) per request — writers
//!    never block readers, and the response reports the epoch it is
//!    consistent with. When sharded scatter-gather is enabled
//!    ([`ServerConfig::shards`]), parallel-mode queries fan out across
//!    shard evaluation pools pinned to that same snapshot epoch.
//! 4. Deadlines ride the unified API: `deadline_ms` becomes
//!    [`ExecOpts::deadline`], the engine's cooperative budget unwinds
//!    the evaluation, and the worker maps [`EvalError::Timeout`] to
//!    `504`. Likewise the **admission policy**: a configured
//!    [`ServerConfig::admission_ceiling`] (tightenable per request)
//!    becomes [`ExecOpts::max_class`]; a query whose statically
//!    determined complexity class exceeds it is shed with `429` before
//!    any evaluation work, the body carrying an `AD001` diagnostic
//!    from `owql-lint`.
//! 5. **Shutdown** flips a flag; the event loop drops the listener,
//!    clears readiness, and drains: connections finish their in-flight
//!    and pipelined requests (responses forced to `Connection: close`),
//!    idle served connections close, and the loop exits once the slab
//!    is empty. Then the job queue closes and every worker joins.
//!
//! ## Wire surface
//!
//! The versioned `/v1` endpoints take a JSON body
//! `{"pattern": "...", "opts": {...}}` and answer errors with a
//! unified envelope `{"error": {"code", "message", "span"?,
//! "retry_after"?}}`. The original query-string endpoints remain as
//! thin adapters that answer with a `Deprecation` header.

use crate::http::{encode_response_into, parse_request, HttpError, Request};
use crate::json as reqjson;
use crate::metrics::ServerMetrics;
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use owql_eval::{EvalError, ExecMode, ExecOpts};
use owql_exec::Pool;
use owql_obs::json;
use owql_parser::parse_pattern;
use owql_parser::Span;
use owql_store::{QueryRequest, Store};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. Construct via [`ServerConfig::builder`] (or
/// struct literal with `..Default::default()`).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads answering requests. `0` selects *inline* mode
    /// (thread-per-core style): requests are evaluated directly on the
    /// event-loop thread, removing the queue hand-off, wake pipe, and
    /// two context switches per request — the fastest shape on a
    /// single-core host. Admission control is unchanged: the dispatch
    /// queue still bounds how many parsed requests one readiness sweep
    /// may admit before excess demand is shed with `429`.
    pub workers: usize,
    /// Dispatch-queue bound: parsed requests waiting for a worker.
    /// A full queue sheds with `429` (`GET`s bypass the bound).
    pub queue_capacity: usize,
    /// Evaluation pool width *per worker* (parallel-mode requests).
    pub pool_threads: usize,
    /// Deadline applied to requests that don't set `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Value of the `Retry-After` header on `429` responses, seconds.
    pub retry_after_secs: u64,
    /// Idle-connection timeout (slowloris guard): connections with no
    /// traffic and no in-flight request for this long are closed.
    pub io_timeout: Duration,
    /// Admission ceiling: queries whose statically determined
    /// complexity class ranks above this are shed with `429` before
    /// evaluation. Requests can tighten it with `max_class` but never
    /// raise it. `None` admits every class.
    pub admission_ceiling: Option<owql_lint::ComplexityClass>,
    /// Queries slower than this land in the store's slow-query ring
    /// buffer (exported under `GET /metrics?format=json`). Requests can
    /// override it with `slow_ms` (`slow_ms=0` captures every query —
    /// the smoke-test injection mechanism). `None` disables capture.
    pub slow_query_threshold: Option<Duration>,
    /// Shards for scatter-gather evaluation: `Server::start` calls
    /// [`Store::enable_sharding`] with this count (each shard gets
    /// `pool_threads` evaluation threads) and prewarms the partitioned
    /// runs before accepting traffic. `0` leaves sharding off.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            pool_threads: 2,
            default_deadline: Some(Duration::from_secs(30)),
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(5),
            admission_ceiling: None,
            slow_query_threshold: Some(Duration::from_millis(250)),
            shards: 0,
        }
    }
}

impl ServerConfig {
    /// Chainable constructor starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Chainable constructor for [`ServerConfig`]; see
/// [`ServerConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind address (port 0 = OS-assigned).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Worker threads answering requests (`0` = inline mode: evaluate
    /// on the event-loop thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Dispatch-queue bound (full ⇒ `429`).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Evaluation pool width per worker.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.config.pool_threads = threads;
        self
    }

    /// Default per-request deadline.
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// `Retry-After` seconds on `429`.
    pub fn retry_after_secs(mut self, secs: u64) -> Self {
        self.config.retry_after_secs = secs;
        self
    }

    /// Idle-connection timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.config.io_timeout = timeout;
        self
    }

    /// Complexity-class admission ceiling.
    pub fn admission_ceiling(mut self, ceiling: Option<owql_lint::ComplexityClass>) -> Self {
        self.config.admission_ceiling = ceiling;
        self
    }

    /// Slow-query capture threshold.
    pub fn slow_query_threshold(mut self, threshold: Option<Duration>) -> Self {
        self.config.slow_query_threshold = threshold;
        self
    }

    /// Scatter-gather shard count (0 = off).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

// ---------------------------------------------------------------------
// Replies and the /v1 error envelope
// ---------------------------------------------------------------------

/// One routed response before wire framing: the worker (or, for inline
/// sheds, the event loop) turns this into bytes with
/// [`encode_response_into`].
#[derive(Clone, Debug)]
struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    fn text(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body,
        }
    }

    fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Reply {
        self.headers.push((name, value.into()));
        self
    }
}

/// A `/v1` API failure: status + the unified error envelope
/// `{"error": {"code", "message", "span"?, "retry_after"?}}`.
#[derive(Clone, Debug)]
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
    /// `(offset, line, column)` into the submitted pattern.
    span: Option<(usize, usize, usize)>,
    retry_after: Option<u64>,
    /// Extra raw-JSON sibling of `"error"` (the AD001 diagnostic).
    diagnostic: Option<String>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            span: None,
            retry_after: None,
            diagnostic: None,
        }
    }

    fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    fn with_span(mut self, offset: usize, line: usize, column: usize) -> ApiError {
        self.span = Some((offset, line, column));
        self
    }

    fn with_retry_after(mut self, secs: u64) -> ApiError {
        self.retry_after = Some(secs);
        self
    }

    fn with_diagnostic(mut self, diagnostic: String) -> ApiError {
        self.diagnostic = Some(diagnostic);
        self
    }

    /// Renders the envelope body.
    fn body(&self) -> String {
        let mut out = String::with_capacity(96 + self.message.len());
        out.push_str("{\"error\": {\"code\": ");
        out.push_str(&json::string(self.code));
        out.push_str(", \"message\": ");
        out.push_str(&json::string(&self.message));
        if let Some((offset, line, column)) = self.span {
            let _ = write!(
                out,
                ", \"span\": {{\"offset\": {offset}, \"line\": {line}, \"column\": {column}}}"
            );
        }
        if let Some(secs) = self.retry_after {
            let _ = write!(out, ", \"retry_after\": {secs}");
        }
        out.push('}');
        if let Some(diagnostic) = &self.diagnostic {
            out.push_str(", \"diagnostic\": ");
            out.push_str(diagnostic);
        }
        out.push_str("}\n");
        out
    }

    /// The envelope as a routed reply (`Retry-After` header rides
    /// along when `retry_after` is set).
    fn reply(&self) -> Reply {
        let mut reply = Reply::json(self.status, self.body());
        if let Some(secs) = self.retry_after {
            reply = reply.with_header("Retry-After", secs.to_string());
        }
        reply
    }
}

/// JSON error body shared by the legacy (pre-`/v1`) endpoints.
fn error_body(message: &str) -> String {
    format!("{{\"error\": {}}}\n", json::string(message))
}

/// Envelope body for wire-level failures (emitted by the event loop
/// before routing sees the request).
fn wire_error_body(status: u16, message: &str) -> String {
    let code = match status {
        400 => "bad_request",
        413 => "payload_too_large",
        431 => "headers_too_large",
        501 => "not_implemented",
        _ => "internal",
    };
    ApiError::new(status, code, message).body()
}

// ---------------------------------------------------------------------
// Option parsing (legacy query string and /v1 JSON opts)
// ---------------------------------------------------------------------

/// Clamps a requested complexity ceiling against the configured one:
/// requests may tighten the ceiling, never relax it.
fn tighten_ceiling(
    configured: Option<owql_lint::ComplexityClass>,
    requested: owql_lint::ComplexityClass,
) -> owql_lint::ComplexityClass {
    match configured {
        Some(c) if c.rank() < requested.rank() => c,
        _ => requested,
    }
}

/// Parses `ExecOpts` from the request's query string (legacy
/// endpoints).
fn parse_opts(req: &Request, config: &ServerConfig) -> Result<ExecOpts, HttpError> {
    let mut builder = ExecOpts::builder()
        .deadline(config.default_deadline)
        .max_class(config.admission_ceiling)
        .slow_query(config.slow_query_threshold);
    for (key, value) in req.query_params() {
        builder = match key {
            "mode" => builder.mode(parse_mode(value).map_err(HttpError::bad_request)?),
            "trace" => builder.trace(parse_flag(key, value)?),
            "cache" => builder.cache(parse_flag(key, value)?),
            "optimize" => builder.optimize(parse_flag(key, value)?),
            "columnar" => builder.columnar(Some(parse_flag(key, value)?)),
            "slow_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| HttpError::bad_request(format!("invalid slow_ms '{value}'")))?;
                builder.slow_query(Some(Duration::from_millis(ms)))
            }
            "deadline_ms" => {
                let ms: u64 = value.parse().map_err(|_| {
                    HttpError::bad_request(format!("invalid deadline_ms '{value}'"))
                })?;
                builder.deadline_ms(Some(ms))
            }
            "max_class" => {
                let requested: owql_lint::ComplexityClass =
                    value.parse().map_err(HttpError::bad_request)?;
                builder.max_class(Some(tighten_ceiling(config.admission_ceiling, requested)))
            }
            other => {
                return Err(HttpError::bad_request(format!(
                    "unknown query parameter '{other}'"
                )))
            }
        };
    }
    Ok(builder.build())
}

fn parse_mode(value: &str) -> Result<ExecMode, String> {
    match value {
        "seq" => Ok(ExecMode::Seq),
        "parallel" => Ok(ExecMode::Parallel),
        other => Err(format!(
            "unknown mode '{other}' (expected 'seq' or 'parallel')"
        )),
    }
}

fn parse_flag(key: &str, value: &str) -> Result<bool, HttpError> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(HttpError::bad_request(format!(
            "invalid boolean '{other}' for '{key}'"
        ))),
    }
}

/// Parses the `/v1` request body `{"pattern": "...", "opts": {...}}`
/// into the pattern text and its options document.
fn v1_body(req: &Request) -> Result<reqjson::JsonValue, ApiError> {
    let text = req
        .body_utf8()
        .map_err(|e| ApiError::bad_request(e.message))?;
    if text.trim().is_empty() {
        return Err(ApiError::bad_request(
            "empty request body (expected {\"pattern\": ..., \"opts\": {...}})",
        ));
    }
    reqjson::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

/// Extracts the mandatory `"pattern"` string from a parsed body.
fn v1_pattern_text(doc: &reqjson::JsonValue) -> Result<&str, ApiError> {
    doc.get("pattern")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ApiError::bad_request("body must carry a string \"pattern\""))
}

/// Parses `ExecOpts` from the `/v1` body's `"opts"` object.
fn v1_opts(opts: Option<&reqjson::JsonValue>, config: &ServerConfig) -> Result<ExecOpts, ApiError> {
    let mut builder = ExecOpts::builder()
        .deadline(config.default_deadline)
        .max_class(config.admission_ceiling)
        .slow_query(config.slow_query_threshold);
    let Some(opts) = opts else {
        return Ok(builder.build());
    };
    let reqjson::JsonValue::Obj(pairs) = opts else {
        return Err(ApiError::bad_request("\"opts\" must be an object"));
    };
    for (key, value) in pairs {
        builder = match key.as_str() {
            "mode" => {
                let mode = value
                    .as_str()
                    .ok_or(())
                    .and_then(|v| parse_mode(v).map_err(drop))
                    .map_err(|_| {
                        ApiError::bad_request("\"mode\" must be \"seq\" or \"parallel\"")
                    })?;
                builder.mode(mode)
            }
            "trace" => builder.trace(v1_bool(value, "trace")?),
            "cache" => builder.cache(v1_bool(value, "cache")?),
            "optimize" => builder.optimize(v1_bool(value, "optimize")?),
            "columnar" => builder.columnar(Some(v1_bool(value, "columnar")?)),
            "deadline_ms" => builder.deadline_ms(Some(v1_u64(value, "deadline_ms")?)),
            "slow_ms" => builder.slow_query(Some(Duration::from_millis(v1_u64(value, "slow_ms")?))),
            "max_class" => {
                let requested: owql_lint::ComplexityClass = value
                    .as_str()
                    .ok_or_else(|| ApiError::bad_request("\"max_class\" must be a string"))?
                    .parse()
                    .map_err(ApiError::bad_request)?;
                builder.max_class(Some(tighten_ceiling(config.admission_ceiling, requested)))
            }
            other => {
                return Err(ApiError::bad_request(format!("unknown option '{other}'")));
            }
        };
    }
    Ok(builder.build())
}

fn v1_bool(value: &reqjson::JsonValue, key: &str) -> Result<bool, ApiError> {
    value
        .as_bool()
        .ok_or_else(|| ApiError::bad_request(format!("\"{key}\" must be a boolean")))
}

fn v1_u64(value: &reqjson::JsonValue, key: &str) -> Result<u64, ApiError> {
    value
        .as_u64()
        .ok_or_else(|| ApiError::bad_request(format!("\"{key}\" must be a non-negative integer")))
}

/// Shared `/v1` body parsing for `/v1/query` and `/v1/explain`: the
/// pattern (with a `parse_error` + span envelope on failure) plus the
/// options.
fn v1_parse_input(
    req: &Request,
    config: &ServerConfig,
) -> Result<(owql_algebra::Pattern, ExecOpts), ApiError> {
    let doc = v1_body(req)?;
    let opts = v1_opts(doc.get("opts"), config)?;
    let text = v1_pattern_text(&doc)?;
    let pattern = parse_pattern(text.trim()).map_err(|e| {
        ApiError::new(400, "parse_error", e.to_string()).with_span(e.offset, e.line, e.column)
    })?;
    Ok((pattern, opts))
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Appends `s` as a JSON string literal. The fast path copies clean
/// ASCII in one `push_str`; only strings carrying a quote, backslash,
/// or control byte take the per-char escape walk.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    if s.bytes().any(|b| b == b'"' || b == b'\\' || b < 0x20) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    } else {
        out.push_str(s);
    }
    out.push('"');
}

/// Appends `s` JSON-escaped, without the surrounding quotes (the
/// caller's skeleton supplies them).
#[inline]
fn push_json_escaped(out: &mut String, s: &str) {
    // Overwhelmingly common case first: nothing to escape, straight
    // copy. The scan and the copy read the same few bytes, still warm.
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Span of one rendered row in the arena, with a sort accelerator:
/// rows rendered under the same domain generation (`dom`) share their
/// skeleton prefix, so `key` — the first eight value bytes past that
/// prefix, big-endian — settles most comparisons without touching the
/// arena. JSON output never contains a raw `0x00` (control characters
/// are escaped), so zero-padding short rows keeps the key order
/// consistent with full bytewise order.
struct RowSpan {
    start: u32,
    end: u32,
    dom: u32,
    key: u64,
}

thread_local! {
    /// Per-worker render scratch (row arena + spans), reused across
    /// requests so large answer sets stop paying allocation and
    /// first-touch page faults on every response.
    static RENDER_SCRATCH: RefCell<(String, Vec<RowSpan>)> =
        const { RefCell::new((String::new(), Vec::new())) };
    /// Retired response bodies, recycled by [`take_body`].
    static BODY_POOL: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Pops a recycled body buffer (or allocates one) with at least `cap`
/// spare capacity.
fn take_body(cap: usize) -> String {
    let mut body = BODY_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    body.reserve(cap);
    body
}

/// Returns a served body's allocation to the thread's pool.
fn retire_body(mut body: String) {
    if body.capacity() >= 4096 {
        body.clear();
        BODY_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < 4 {
                pool.push(body);
            }
        });
    }
}

/// Serializes an answer set deterministically (mappings in sorted
/// order; variables are already sorted within each mapping), appending
/// to `out`.
///
/// Rendering is arena-based: every row is rendered once into a single
/// backing `String`, the row spans are sorted bytewise (rendered JSON
/// rows compare in the same order as the mappings they encode, because
/// binding pairs are serialized in sorted variable order), and the
/// output is assembled from the sorted spans. This avoids the
/// clone-sort-reformat pass that previously dominated response
/// latency on large result sets.
fn mappings_json_into(out: &mut String, mappings: &owql_algebra::MappingSet) {
    RENDER_SCRATCH.with(|scratch| {
        let (arena, spans) = &mut *scratch.borrow_mut();
        arena.clear();
        spans.clear();
        // No up-front size pass: iterating the (columnar) mapping set
        // materializes rows, so a counting pass would double that cost.
        // The thread-local arena keeps its high-water capacity, so
        // growth reallocations only happen while it warms up.
        spans.reserve(mappings.len());
        // Rows from one answer set overwhelmingly share a variable
        // domain (OPT aside), so the constant framing between values —
        // `{"a": "`, `", "b": "`, `"}` — is rendered once per domain
        // and reused while consecutive rows match it. The match check
        // compares interned `Variable` handles — integer equality, no
        // name resolution.
        let mut domain: Vec<owql_algebra::Variable> = Vec::new();
        let mut segments: Vec<String> = Vec::new();
        let mut dom = 0u32;
        let mut key_off = 0usize;
        for m in mappings.iter() {
            let start = arena.len() as u32;
            if !(m.len() == domain.len() && m.iter().map(|(v, _)| v).eq(domain.iter().copied())) {
                domain.clear();
                domain.extend(m.iter().map(|(v, _)| v));
                segments.clear();
                for (j, var) in domain.iter().enumerate() {
                    let name = var.name();
                    let mut seg = String::with_capacity(name.len() + 8);
                    seg.push_str(if j == 0 { "{" } else { "\", " });
                    push_json_str(&mut seg, name);
                    seg.push_str(": \"");
                    segments.push(seg);
                }
                segments.push(if domain.is_empty() { "{}" } else { "\"}" }.to_owned());
                dom += 1;
                key_off = if domain.is_empty() {
                    0
                } else {
                    segments[0].len()
                };
            }
            for (j, (_, value)) in m.iter().enumerate() {
                arena.push_str(&segments[j]);
                push_json_escaped(arena, value.as_str());
            }
            arena.push_str(segments.last().expect("tail segment"));
            let end = arena.len() as u32;
            let key_start = (start as usize + key_off).min(end as usize);
            let tail = &arena.as_bytes()[key_start..end as usize];
            let mut key_bytes = [0u8; 8];
            let n = tail.len().min(8);
            key_bytes[..n].copy_from_slice(&tail[..n]);
            spans.push(RowSpan {
                start,
                end,
                dom,
                key: u64::from_be_bytes(key_bytes),
            });
        }
        let bytes = arena.as_bytes();
        // Stable (run-adaptive) sort: evaluation emits rows in
        // near-sorted order (~3% adjacent inversions on the bench
        // shapes), which a merge of natural runs exploits far better
        // than pattern-defeating quicksort.
        spans.sort_by(|a, b| {
            let full = || {
                bytes[a.start as usize..a.end as usize]
                    .cmp(&bytes[b.start as usize..b.end as usize])
            };
            if a.dom == b.dom {
                a.key.cmp(&b.key).then_with(full)
            } else {
                full()
            }
        });
        out.reserve(arena.len() + 2 * spans.len() + 2);
        out.push('[');
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&arena[span.start as usize..span.end as usize]);
        }
        out.push(']');
    });
}

#[cfg(test)]
fn mappings_json(mappings: &owql_algebra::MappingSet) -> String {
    let mut out = String::new();
    mappings_json_into(&mut out, mappings);
    out
}

/// Memoized wrapper around [`query_success_body`] for cache-hit
/// outcomes: the store's query cache already guarantees an identical
/// `QueryOutcome` for an identical request within one epoch, so
/// re-rendering it per request is pure waste. Keyed by the raw request
/// (path + query string + body), bounded, and cleared whenever the
/// epoch moves. Traced outcomes are excluded — their profiles differ
/// per execution even on a cache hit.
fn query_success_body_memo(req: &Request, outcome: &owql_store::QueryOutcome) -> String {
    if !outcome.cache_hit || outcome.profile.is_some() {
        return query_success_body(outcome);
    }
    type MemoKey = (String, String, Vec<u8>);
    thread_local! {
        static MEMO: RefCell<(u64, Vec<(MemoKey, String)>)> =
            const { RefCell::new((0, Vec::new())) };
    }
    MEMO.with(|memo| {
        let (epoch, entries) = &mut *memo.borrow_mut();
        if *epoch != outcome.epoch {
            entries.clear();
            *epoch = outcome.epoch;
        }
        if let Some((_, rendered)) = entries
            .iter()
            .find(|(k, _)| k.0 == req.path && k.1 == req.query && k.2 == req.body)
        {
            let mut body = take_body(rendered.len());
            body.push_str(rendered);
            return body;
        }
        let body = query_success_body(outcome);
        if entries.len() < 8 {
            entries.push((
                (req.path.clone(), req.query.clone(), req.body.clone()),
                body.clone(),
            ));
        }
        body
    })
}

/// The shared `200` body of `/query` and `/v1/query`.
fn query_success_body(outcome: &owql_store::QueryOutcome) -> String {
    let mut body = take_body(128);
    let _ = write!(
        body,
        "{{\"epoch\": {}, \"cache_hit\": {}, \"count\": {}, \"mappings\": ",
        outcome.epoch,
        outcome.cache_hit,
        outcome.mappings.len(),
    );
    mappings_json_into(&mut body, &outcome.mappings);
    if let Some(profile) = &outcome.profile {
        body.push_str(",\n\"profile\": ");
        body.push_str(&profile.to_json());
    }
    body.push_str("}\n");
    body
}

/// `true` iff the request asked for the JSON rendering of `/metrics`
/// (`?format=json`); the default is Prometheus text exposition.
fn metrics_wants_json(req: &Request) -> bool {
    req.query_params()
        .any(|(key, value)| key == "format" && value == "json")
}

/// `GET /metrics?format=json`: server counters, store gauges, persist
/// counters, and the hub (latency histograms + slow-query log).
fn metrics_json(store: &Store, metrics: &ServerMetrics) -> String {
    let obs = store.observe();
    let persist = match store.observe_persist() {
        Some(p) => format!(
            concat!(
                "{{\"wal_bytes\": {}, \"wal_records\": {}, ",
                "\"segment_generation\": {}, \"last_checkpoint_epoch\": {}, ",
                "\"checkpoints\": {}, \"recovery_replayed_records\": {}}}"
            ),
            p.wal_bytes,
            p.wal_records,
            p.segment_generation,
            p.last_checkpoint_epoch,
            p.checkpoints,
            p.recovery_replayed_records,
        ),
        None => "null".to_owned(),
    };
    format!(
        concat!(
            "{{\"server\": {},\n",
            " \"store\": {{\"epoch\": {}, \"triples\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_hit_rate\": {}}},\n",
            " \"persist\": {},\n",
            " \"hub\": {}}}\n"
        ),
        metrics.to_json(),
        obs.epoch,
        obs.triples,
        obs.cache_hits,
        obs.cache_misses,
        json::number(obs.cache_hit_rate),
        persist,
        store.metrics_hub().to_json(" "),
    )
}

/// `GET /metrics` (default): Prometheus text exposition — the hub's
/// histograms and counters, the server's request counters, and the
/// store's state gauges.
fn metrics_prometheus(store: &Store, metrics: &ServerMetrics) -> String {
    use owql_obs::prometheus;
    let mut out = String::new();
    store.metrics_hub().render_prometheus(&mut out);
    metrics.render_prometheus(&mut out);
    let obs = store.observe();
    prometheus::gauge(
        &mut out,
        "owql_store_epoch",
        "Current store epoch.",
        obs.epoch as f64,
    );
    prometheus::gauge(
        &mut out,
        "owql_store_triples",
        "Triples visible to a fresh snapshot.",
        obs.triples as f64,
    );
    prometheus::counter(
        &mut out,
        "owql_store_cache_hits_total",
        "Query-cache hits.",
        obs.cache_hits,
    );
    prometheus::counter(
        &mut out,
        "owql_store_cache_misses_total",
        "Query-cache misses.",
        obs.cache_misses,
    );
    if let Some(p) = store.observe_persist() {
        prometheus::gauge(
            &mut out,
            "owql_wal_records",
            "Commit records currently in the write-ahead log.",
            p.wal_records as f64,
        );
        prometheus::counter(
            &mut out,
            "owql_checkpoints_total",
            "Checkpoints taken since this store opened.",
            p.checkpoints,
        );
    }
    out
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// `Link` header value advertising the `/v1` successor of a legacy
/// endpoint.
fn successor_link(path: &str) -> String {
    format!("</v1{path}>; rel=\"successor-version\"")
}

/// Marks a legacy reply as deprecated, pointing at its `/v1`
/// successor.
fn deprecated(reply: Reply, path: &str) -> Reply {
    reply
        .with_header("Deprecation", "true".to_owned())
        .with_header("Link", successor_link(path))
}

/// Dispatches one parsed request to its endpoint.
///
/// `ready` gates `/v1/healthz?ready=1` — it is `true` once segments
/// are recovered and the shard runtime (when configured) is prewarmed,
/// and drops back to `false` while draining for shutdown.
fn route(
    req: &Request,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    ready: bool,
) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        // --- versioned surface -----------------------------------------
        ("GET", "/v1/healthz") => v1_healthz(req, store, ready),
        ("POST", "/v1/query") => v1_query(req, store, pool, config, metrics),
        ("POST", "/v1/explain") => v1_explain(req, store, config),
        ("POST", "/v1/lint") => v1_lint(req),
        (_, "/v1/healthz" | "/v1/query" | "/v1/explain" | "/v1/lint") => ApiError::new(
            405,
            "method_not_allowed",
            "method not allowed for this endpoint",
        )
        .reply(),
        // --- shared infrastructure -------------------------------------
        ("GET", "/metrics") => {
            if metrics_wants_json(req) {
                Reply::json(200, metrics_json(store, metrics))
            } else {
                Reply::text(200, metrics_prometheus(store, metrics))
            }
        }
        // --- legacy adapters (Deprecation + Link to /v1) ---------------
        ("GET", "/healthz") => deprecated(
            Reply::json(
                200,
                format!("{{\"status\": \"ok\", \"epoch\": {}}}\n", store.epoch()),
            ),
            "/healthz",
        ),
        ("POST", "/query") => deprecated(answer_query(req, store, pool, config, metrics), "/query"),
        ("POST", "/explain") => deprecated(answer_explain(req, store, config), "/explain"),
        ("POST", "/lint") => deprecated(answer_lint(req), "/lint"),
        (_, "/healthz" | "/metrics" | "/query" | "/explain" | "/lint") => {
            Reply::json(405, error_body("method not allowed for this endpoint"))
        }
        _ => ApiError::new(404, "not_found", "no such endpoint").reply(),
    }
}

/// `GET /v1/healthz`: liveness always answers; `?ready=1` makes it a
/// readiness probe that fails `503` until the server can actually
/// serve queries (segments recovered, shards built) and while
/// draining.
fn v1_healthz(req: &Request, store: &Store, ready: bool) -> Reply {
    let wants_ready = req
        .query_params()
        .any(|(key, value)| key == "ready" && (value == "1" || value == "true"));
    if wants_ready && !ready {
        return ApiError::new(503, "not_ready", "server is not ready to serve queries").reply();
    }
    Reply::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"ready\": {ready}, \"epoch\": {}}}\n",
            store.epoch()
        ),
    )
}

/// `POST /v1/query`: JSON envelope in, mappings (and optionally a
/// profile) out; errors in the unified envelope.
fn v1_query(
    req: &Request,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> Reply {
    let (pattern, opts) = match v1_parse_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return e.reply(),
    };
    let request = QueryRequest::with_opts(pattern, opts);
    match store.query_request(&request, pool) {
        Ok(outcome) => Reply::json(200, query_success_body_memo(req, &outcome)),
        Err(e @ EvalError::Timeout { .. }) => {
            metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
            ApiError::new(504, "timeout", e.to_string()).reply()
        }
        // Admission shed: no Retry-After — retrying the same query
        // cannot succeed. The machine-readable AD001 diagnostic rides
        // as a sibling of the envelope.
        Err(e @ EvalError::AdmissionDenied { .. }) => {
            metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            let text = request.pattern.to_string();
            let diagnostic = owql_lint::Diagnostic::new(
                owql_lint::RuleId::AdmissionDenied,
                Span::new(0, text.len()),
                e.to_string(),
            );
            ApiError::new(429, "admission_denied", e.to_string())
                .with_span(0, 1, 1)
                .with_diagnostic(diagnostic.to_json(&text))
                .reply()
        }
        #[allow(unreachable_patterns)] // EvalError is #[non_exhaustive]
        Err(e) => ApiError::new(500, "internal", e.to_string()).reply(),
    }
}

/// `POST /v1/explain`: JSON envelope in, EXPLAIN ANALYZE out. Honors
/// `opts.optimize`: the plan shown (and run) is then the optimized
/// one, with the certified prune counts reported alongside it.
fn v1_explain(req: &Request, store: &Store, config: &ServerConfig) -> Reply {
    let (pattern, opts) = match v1_parse_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return e.reply(),
    };
    Reply::json(200, explain_body(store, &pattern, opts.optimize))
}

/// `POST /v1/lint`: JSON envelope in, full static analysis out.
fn v1_lint(req: &Request) -> Reply {
    let doc = match v1_body(req) {
        Ok(doc) => doc,
        Err(e) => return e.reply(),
    };
    let text = match v1_pattern_text(&doc) {
        Ok(text) => text.trim(),
        Err(e) => return e.reply(),
    };
    if text.is_empty() {
        return ApiError::bad_request("\"pattern\" must not be empty").reply();
    }
    match owql_lint::analyze_source(text) {
        Ok(analysis) => Reply::json(200, lint_body(text, &analysis)),
        Err(e) => ApiError::new(400, "parse_error", e.to_string())
            .with_span(e.offset, e.line, e.column)
            .reply(),
    }
}

/// `POST /query` (legacy): pattern text in, mappings out.
fn answer_query(
    req: &Request,
    store: &Store,
    pool: &Pool,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> Reply {
    let (pattern, opts) = match parse_query_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::json(e.status, error_body(&e.message)),
    };
    let request = QueryRequest::with_opts(pattern, opts);
    match store.query_request(&request, pool) {
        Ok(outcome) => Reply::json(200, query_success_body_memo(req, &outcome)),
        Err(e @ EvalError::Timeout { .. }) => {
            metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
            Reply::json(504, error_body(&e.to_string()))
        }
        // Admission shed: 429 (no Retry-After — retrying the same
        // query cannot succeed) with a machine-readable AD001
        // diagnostic alongside the error message.
        Err(e @ EvalError::AdmissionDenied { .. }) => {
            metrics.shed_total.fetch_add(1, Ordering::Relaxed);
            let text = request.pattern.to_string();
            let diagnostic = owql_lint::Diagnostic::new(
                owql_lint::RuleId::AdmissionDenied,
                Span::new(0, text.len()),
                e.to_string(),
            );
            Reply::json(
                429,
                format!(
                    "{{\"error\": {}, \"diagnostic\": {}}}\n",
                    json::string(&e.to_string()),
                    diagnostic.to_json(&text),
                ),
            )
        }
        #[allow(unreachable_patterns)] // EvalError is #[non_exhaustive]
        Err(e) => Reply::json(500, error_body(&e.to_string())),
    }
}

/// The shared `200` body of `/lint` and `/v1/lint`. `bindings` is the
/// root of the semantic dataflow lattice: which variables every answer
/// certainly binds, and which any answer could possibly bind.
fn lint_body(text: &str, analysis: &owql_lint::Analysis) -> String {
    let diagnostics: Vec<String> = analysis
        .diagnostics
        .iter()
        .map(|d| d.to_json(text))
        .collect();
    let vars_json = |vars: &std::collections::BTreeSet<owql_algebra::Variable>| {
        let rendered: Vec<String> = vars.iter().map(|v| json::string(&v.to_string())).collect();
        format!("[{}]", rendered.join(", "))
    };
    format!(
        "{{\"fragment\": {}, \"complexity\": {}, \"well_designed\": {}, \
         \"bindings\": {{\"certain\": {}, \"possible\": {}}}, \
         \"count\": {}, \"diagnostics\": [{}]}}\n",
        json::string(&analysis.fragment.to_string()),
        json::string(&analysis.complexity.to_string()),
        json::string(analysis.well_designed.as_str()),
        vars_json(&analysis.bindings.certain),
        vars_json(&analysis.bindings.possible),
        analysis.diagnostics.len(),
        diagnostics.join(", "),
    )
}

/// `POST /lint` (legacy): pattern text in, full static analysis out —
/// fragment, complexity class, well-designedness verdict, and every
/// diagnostic with its byte span and line:column into the request
/// body. Nothing is evaluated.
fn answer_lint(req: &Request) -> Reply {
    let text = match req.body_utf8() {
        Ok(text) => text.trim(),
        Err(e) => return Reply::json(e.status, error_body(&e.message)),
    };
    if text.is_empty() {
        return Reply::json(
            400,
            error_body("empty request body (expected a graph pattern)"),
        );
    }
    match owql_lint::analyze_source(text) {
        Ok(analysis) => Reply::json(200, lint_body(text, &analysis)),
        Err(e) => Reply::json(400, error_body(&e.to_string())),
    }
}

/// The shared `200` body of `/explain` and `/v1/explain`. With
/// `optimize` set the certified-pruning optimizer rewrites the plan
/// first — the EXPLAIN then shows what the engine would actually run,
/// and a `"prunes"` section reports which lint-proven rewrites fired.
fn explain_body(store: &Store, pattern: &owql_algebra::Pattern, optimize: bool) -> String {
    let snapshot = store.snapshot();
    let prunes = optimize.then(|| owql_eval::optimize_with_stats(pattern));
    let pattern = prunes.as_ref().map(|(p, _)| p).unwrap_or(pattern);
    let plan = snapshot.engine().explain_analyze(pattern);
    let mut out = format!(
        "{{\"epoch\": {}, \"answers\": {}, \"total_ms\": {}, \"plan\": {}",
        snapshot.epoch(),
        plan.answers,
        json::ns_as_ms(plan.total_ns),
        json::string(&plan.to_string()),
    );
    if let Some((optimized, obs)) = &prunes {
        let _ = write!(
            out,
            ", \"optimized\": {}, \"prunes\": {{\"unsat_filters\": {}, \
             \"subsumed_branches\": {}, \"opt_collapses\": {}, \"total\": {}}}",
            json::string(&optimized.to_string()),
            obs.unsat_filters,
            obs.subsumed_branches,
            obs.opt_collapses,
            obs.total(),
        );
    }
    out.push_str("}\n");
    out
}

/// `POST /explain` (legacy): pattern text in, EXPLAIN ANALYZE out.
/// Honors the `optimize` query-string option like `/query` does.
fn answer_explain(req: &Request, store: &Store, config: &ServerConfig) -> Reply {
    let (pattern, opts) = match parse_query_input(req, config) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::json(e.status, error_body(&e.message)),
    };
    Reply::json(200, explain_body(store, &pattern, opts.optimize))
}

/// Shared body+options parsing for the legacy `/query` and `/explain`.
/// A parse failure echoes the `ParseError` `Display` (with its byte
/// offset) verbatim in the `400` body.
fn parse_query_input(
    req: &Request,
    config: &ServerConfig,
) -> Result<(owql_algebra::Pattern, ExecOpts), HttpError> {
    let opts = parse_opts(req, config)?;
    let text = req.body_utf8()?;
    if text.trim().is_empty() {
        return Err(HttpError::bad_request(
            "empty request body (expected a graph pattern)",
        ));
    }
    let pattern = parse_pattern(text.trim()).map_err(|e| HttpError::bad_request(e.to_string()))?;
    Ok((pattern, opts))
}

// ---------------------------------------------------------------------
// Dispatch queue, workers, and the completion bridge
// ---------------------------------------------------------------------

/// One parsed request bound for a worker, tagged with the connection
/// slot and generation that must receive the response.
#[derive(Debug)]
struct Job {
    slot: usize,
    gen: u64,
    req: Request,
}

/// One framed response coming back from a worker. `close` mirrors the
/// framing decision (`Connection: close`) so the event loop tears the
/// connection down after the flush.
#[derive(Debug)]
struct Completion {
    slot: usize,
    gen: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// The bounded dispatch queue: a `Mutex<VecDeque>` + `Condvar`.
/// `push` never blocks (full ⇒ the caller sheds); `pop` blocks until a
/// job arrives or the queue is closed *and* drained.
#[derive(Debug)]
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct JobQueueInner {
    queue: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Offers a job; hands it back if the queue is full (unless
    /// `force`) or closed. `force` lets `GET` probes (`/healthz`,
    /// `/metrics`) bypass the bound so observability survives
    /// overload.
    fn push(&self, job: Job, force: bool) -> Result<(), Job> {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        if inner.closed || (!force && inner.queue.len() >= self.capacity) {
            return Err(job);
        }
        inner.queue.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("job queue lock poisoned");
        }
    }

    /// Non-blocking pop for inline mode (`workers == 0`), where the
    /// event loop drains the queue itself between readiness sweeps.
    fn try_pop(&self) -> Option<Job> {
        self.inner
            .lock()
            .expect("job queue lock poisoned")
            .queue
            .pop_front()
    }

    /// Closes the queue: queued jobs still drain, new pushes bounce,
    /// blocked poppers wake.
    fn close(&self) {
        self.inner.lock().expect("job queue lock poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// Worker → event-loop completion channel: completions accumulate
/// under a mutex and a byte on the wake pipe makes the epoll wait
/// return to drain them.
#[derive(Debug)]
struct Bridge {
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
    /// Retired response buffers cycling back from the event loop so
    /// workers can encode large responses without fresh allocations.
    spares: Mutex<Vec<Vec<u8>>>,
}

impl Bridge {
    /// Pops a recycled encode buffer, empty but with capacity.
    fn take_spare(&self) -> Vec<u8> {
        self.spares
            .lock()
            .expect("bridge spares lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a drained response buffer for reuse by a worker.
    fn retire_spare(&self, mut buf: Vec<u8>) {
        if buf.capacity() < 4096 {
            return;
        }
        buf.clear();
        let mut spares = self.spares.lock().expect("bridge spares lock poisoned");
        if spares.len() < 8 {
            spares.push(buf);
        }
    }

    fn push(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("bridge lock poisoned")
            .push(completion);
        // A full pipe means a wakeup is already pending — dropping the
        // byte is fine.
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("bridge lock poisoned"))
    }
}

/// One worker: pops jobs, routes them, frames the response bytes, and
/// pushes the completion back to the event loop.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    jobs: Arc<JobQueue>,
    bridge: Arc<Bridge>,
    store: Arc<Store>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    draining: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
) {
    // Each worker owns its pool: concurrent requests never contend for
    // evaluation threads.
    let pool = Pool::new(config.pool_threads.max(1));
    while let Some(job) = jobs.pop() {
        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let reply = route(
            &job.req,
            &store,
            &pool,
            &config,
            &metrics,
            ready.load(Ordering::Acquire),
        );
        metrics.record_status(reply.status);
        // Shutdown drains by forcing every in-flight response to
        // Connection: close.
        let keep = job.req.keep_alive && !draining.load(Ordering::Relaxed);
        let mut bytes = bridge.take_spare();
        let chunked = encode_response_into(
            &mut bytes,
            reply.status,
            reply.content_type,
            &reply.headers,
            reply.body.as_bytes(),
            keep,
            job.req.http11,
        );
        if chunked {
            metrics
                .chunked_responses_total
                .fetch_add(1, Ordering::Relaxed);
        }
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        bridge.push(Completion {
            slot: job.slot,
            gen: job.gen,
            bytes,
            close: !keep,
        });
        retire_body(reply.body);
    }
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Epoll tag for the listener.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll tag for the worker wake pipe.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Epoll tick, ms: bounds how stale the timeout sweep and the
/// shutdown-flag check can get while the loop is otherwise idle.
const TICK_MS: i32 = 100;

/// Per-connection state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Generation tag: completions for a recycled slot are dropped
    /// when their generation doesn't match.
    gen: u64,
    /// Bytes read but not yet parsed into a request.
    read_buf: Vec<u8>,
    /// Parsed requests waiting their turn (pipelining). Dispatch is
    /// one-at-a-time per connection so responses keep request order.
    pending: VecDeque<Request>,
    /// A job for this connection is in flight with a worker.
    busy: bool,
    /// Bytes queued for the socket; `write_pos` marks the flushed
    /// prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Close once the write buffer drains (Connection: close, wire
    /// error, or forced by drain mode).
    closing: bool,
    /// Peer shut down its write half (EOF / EPOLLRDHUP).
    read_eof: bool,
    /// EPOLLOUT currently armed.
    want_write: bool,
    /// Requests dispatched on this connection so far.
    served: u64,
    last_activity: Instant,
    /// A wire-level parse failure, deferred until the pipelined
    /// requests ahead of it have been answered.
    wire_error: Option<HttpError>,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            busy: false,
            write_buf: Vec::new(),
            write_pos: 0,
            closing: false,
            read_eof: false,
            want_write: false,
            served: 0,
            last_activity: Instant::now(),
            wire_error: None,
        }
    }

    fn write_drained(&self) -> bool {
        self.write_pos >= self.write_buf.len()
    }
}

/// The event loop: owns the epoll instance, the listener, the wake
/// pipe, and the connection slab.
struct EventLoop {
    epoll: Epoll,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    open: usize,
    jobs: Arc<JobQueue>,
    bridge: Arc<Bridge>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    config: ServerConfig,
    store: Arc<Store>,
    /// `Some` in inline mode (`workers == 0`): the evaluation pool the
    /// event loop routes with when it drains the job queue itself.
    inline_pool: Option<Pool>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = [EpollEvent::default(); 256];
        loop {
            let n = self.epoll.wait(&mut events, TICK_MS).unwrap_or(0);
            if n > 0 {
                self.metrics
                    .ready_events_total
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            for event in &events[..n] {
                let token = event.data;
                let bits = event.events;
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    slot => self.conn_ready(slot as usize, bits),
                }
            }
            if self.inline_pool.is_some() {
                self.drain_jobs_inline();
            }
            self.apply_completions();
            if self.shutdown.load(Ordering::Relaxed) && self.listener.is_some() {
                self.begin_drain();
            }
            if self.draining.load(Ordering::Relaxed) {
                self.sweep_drain();
                if self.open == 0 {
                    return;
                }
            }
            self.sweep_timeouts();
        }
    }

    /// Edge-triggered accept: drain the backlog until `WouldBlock`.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.metrics.accepted_total.fetch_add(1, Ordering::Relaxed);
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_gen += 1;
        let gen = self.next_gen;
        if self
            .epoll
            .add(stream.as_raw_fd(), slot as u64, EPOLLIN | EPOLLRDHUP)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn::new(stream, gen));
        self.open += 1;
        self.metrics
            .connections_open
            .fetch_add(1, Ordering::Relaxed);
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, slot: usize, bits: u32) {
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            return; // already closed this iteration
        }
        if bits & EPOLLERR != 0 {
            self.close(slot);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            self.readable(slot);
        }
        if self.conns[slot].is_some() && bits & EPOLLOUT != 0 {
            self.flush(slot);
            self.maybe_close(slot);
        }
    }

    /// Reads whatever arrived, parses pipelined requests off the
    /// buffer, and dispatches.
    fn readable(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let conn = self.conns[slot].as_mut().expect("conn checked by caller");
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if n < chunk.len() {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.parse_pending(slot);
        self.try_dispatch(slot);
        self.flush(slot);
        self.maybe_close(slot);
    }

    fn parse_pending(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("conn checked by caller");
        let mut pipelined = 0u64;
        while conn.wire_error.is_none() && !conn.closing {
            match parse_request(&mut conn.read_buf) {
                Ok(Some(req)) => {
                    if conn.busy || !conn.pending.is_empty() {
                        pipelined += 1;
                    }
                    conn.pending.push_back(req);
                }
                Ok(None) => break,
                Err(e) => {
                    // Defer: requests already pipelined ahead of the
                    // bad bytes still get answers before the error
                    // closes the connection.
                    conn.wire_error = Some(e);
                    break;
                }
            }
        }
        if pipelined > 0 {
            self.metrics
                .pipelined_requests_total
                .fetch_add(pipelined, Ordering::Relaxed);
        }
    }

    /// Dispatches the head-of-line request if the connection is free.
    /// Sheds (full queue) are answered inline and dispatch continues
    /// with the next pipelined request — the connection survives.
    fn try_dispatch(&mut self, slot: usize) {
        loop {
            let draining = self.draining.load(Ordering::Relaxed);
            let conn = self.conns[slot].as_mut().expect("conn checked by caller");
            if conn.busy || conn.closing {
                return;
            }
            let Some(req) = conn.pending.pop_front() else {
                // Everything answered: a deferred wire error now takes
                // its turn and the connection closes behind it.
                if let Some(e) = conn.wire_error.take() {
                    let body = wire_error_body(e.status, &e.message);
                    encode_response_into(
                        &mut conn.write_buf,
                        e.status,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        false,
                        false,
                    );
                    conn.closing = true;
                    self.metrics.record_status(e.status);
                }
                return;
            };
            if conn.served > 0 {
                self.metrics
                    .keepalive_reuses_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            conn.served += 1;
            let keep = req.keep_alive && !draining;
            // GET probes bypass the bound: health and metrics stay
            // answerable while query traffic is being shed.
            let force = req.method == "GET";
            let gen = conn.gen;
            match self.jobs.push(Job { slot, gen, req }, force) {
                Ok(()) => {
                    self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                    let conn = self.conns[slot].as_mut().expect("conn exists");
                    conn.busy = true;
                    return;
                }
                Err(job) => {
                    // Inline shed: one buffered 429, keep-alive
                    // preserved, loop on to the next pipelined request.
                    self.metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_status(429);
                    let reply = shed_reply(&job.req, &self.config);
                    let conn = self.conns[slot].as_mut().expect("conn exists");
                    encode_response_into(
                        &mut conn.write_buf,
                        reply.status,
                        reply.content_type,
                        &reply.headers,
                        reply.body.as_bytes(),
                        keep,
                        job.req.http11,
                    );
                    if !keep {
                        conn.closing = true;
                    }
                }
            }
        }
    }

    /// Inline mode: serve every queued job on this thread, encoding
    /// straight into the connection's write buffer. Dispatching the
    /// next pipelined request re-enters the queue, so one sweep fully
    /// drains a pipelined connection. Admission (and shedding) already
    /// happened in [`EventLoop::try_dispatch`]; this is the worker half
    /// of the request without the thread hand-off.
    fn drain_jobs_inline(&mut self) {
        while let Some(job) = self.jobs.try_pop() {
            self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
            let pool = self.inline_pool.as_ref().expect("inline pool present");
            let reply = route(
                &job.req,
                &self.store,
                pool,
                &self.config,
                &self.metrics,
                self.ready.load(Ordering::Acquire),
            );
            self.metrics.record_status(reply.status);
            let keep = job.req.keep_alive && !self.draining.load(Ordering::Relaxed);
            self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
            let Some(conn) = self.conns.get_mut(job.slot).and_then(|c| c.as_mut()) else {
                retire_body(reply.body);
                continue;
            };
            if conn.gen != job.gen {
                retire_body(reply.body);
                continue;
            }
            conn.busy = false;
            let chunked = encode_response_into(
                &mut conn.write_buf,
                reply.status,
                reply.content_type,
                &reply.headers,
                reply.body.as_bytes(),
                keep,
                job.req.http11,
            );
            if chunked {
                self.metrics
                    .chunked_responses_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            retire_body(reply.body);
            conn.last_activity = Instant::now();
            if !keep {
                conn.closing = true;
                conn.pending.clear();
                conn.wire_error = None;
            }
            self.try_dispatch(job.slot);
            self.flush(job.slot);
            self.maybe_close(job.slot);
        }
    }

    fn apply_completions(&mut self) {
        for completion in self.bridge.drain() {
            let Some(conn) = self.conns.get_mut(completion.slot).and_then(|c| c.as_mut()) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue; // slot was recycled under the worker
            }
            conn.busy = false;
            if conn.write_buf.is_empty() {
                // Common case: nothing pending — adopt the worker's
                // buffer instead of copying it, and cycle the drained
                // predecessor back to the workers.
                let old = std::mem::replace(&mut conn.write_buf, completion.bytes);
                conn.write_pos = 0;
                self.bridge.retire_spare(old);
            } else {
                conn.write_buf.extend_from_slice(&completion.bytes);
                self.bridge.retire_spare(completion.bytes);
            }
            conn.last_activity = Instant::now();
            if completion.close {
                conn.closing = true;
                conn.pending.clear();
                conn.wire_error = None;
            }
            self.try_dispatch(completion.slot);
            self.flush(completion.slot);
            self.maybe_close(completion.slot);
        }
    }

    /// Flushes the write buffer as far as the socket allows, arming
    /// `EPOLLOUT` only while bytes remain.
    fn flush(&mut self, slot: usize) {
        loop {
            let conn = self.conns[slot].as_mut().expect("conn checked by caller");
            if conn.write_drained() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                break;
            }
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.arm_write(slot, true);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.arm_write(slot, false);
    }

    fn arm_write(&mut self, slot: usize, want: bool) {
        let conn = self.conns[slot].as_mut().expect("conn checked by caller");
        if conn.want_write == want {
            return;
        }
        let mut interest = EPOLLIN | EPOLLRDHUP;
        if want {
            interest |= EPOLLOUT;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), slot as u64, interest)
            .is_ok()
        {
            let conn = self.conns[slot].as_mut().expect("conn exists");
            conn.want_write = want;
        }
    }

    /// Closes the connection if nothing more can happen on it.
    fn maybe_close(&mut self, slot: usize) {
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return;
        };
        if conn.busy || !conn.write_drained() {
            return;
        }
        if conn.closing || (conn.read_eof && conn.pending.is_empty() && conn.wire_error.is_none()) {
            self.close(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.open -= 1;
            self.metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            self.free.push(slot);
        }
    }

    /// Enters drain mode: stop accepting, clear readiness; existing
    /// connections finish what they started.
    fn begin_drain(&mut self) {
        self.draining.store(true, Ordering::Relaxed);
        self.ready.store(false, Ordering::Release);
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
    }

    /// During drain, closes connections that have been served (or hung
    /// up) and have nothing left in flight. Connections that connected
    /// but have not yet sent a request stay until they do (their
    /// response is forced to `Connection: close`) or until the idle
    /// sweep reaps them.
    fn sweep_drain(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            if !conn.busy
                && conn.pending.is_empty()
                && conn.wire_error.is_none()
                && conn.write_drained()
                && (conn.served > 0 || conn.read_eof)
            {
                self.close(slot);
            }
        }
    }

    /// Slowloris guard: reaps connections idle past the configured
    /// timeout with no request in flight.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            if !conn.busy && now.duration_since(conn.last_activity) > self.config.io_timeout {
                self.close(slot);
            }
        }
    }
}

/// The inline `429` for a full dispatch queue: envelope format on
/// `/v1` paths, the legacy error body elsewhere; `Retry-After` either
/// way.
fn shed_reply(req: &Request, config: &ServerConfig) -> Reply {
    if req.path.starts_with("/v1/") {
        ApiError::new(429, "shed", "dispatch queue is full, retry later")
            .with_retry_after(config.retry_after_secs)
            .reply()
    } else {
        Reply::json(429, error_body("admission queue is full, retry later"))
            .with_header("Retry-After", config.retry_after_secs.to_string())
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A running query server. Dropping it without calling
/// [`Server::shutdown`] detaches the threads (the test and example
/// entry points always shut down explicitly).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    jobs: Arc<JobQueue>,
    metrics: Arc<ServerMetrics>,
    io_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, builds the shard runtime when configured, and starts the
    /// event loop plus `config.workers` workers. Readiness
    /// (`/v1/healthz?ready=1`) turns true here, after sharding is
    /// prewarmed and before the first connection is served.
    pub fn start(store: Arc<Store>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN | EPOLLET)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        epoll.add(wake_rx.as_raw_fd(), WAKE_TOKEN, EPOLLIN)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::default());
        let jobs = Arc::new(JobQueue::new(config.queue_capacity.max(1)));
        let bridge = Arc::new(Bridge {
            completions: Mutex::new(Vec::new()),
            wake_tx,
            spares: Mutex::new(Vec::new()),
        });

        // Build and prewarm the shard runtime before declaring
        // readiness: the first scatter-gather query must not pay the
        // partitioning cost.
        if config.shards > 0 {
            store.enable_sharding(config.shards, config.pool_threads.max(1));
            if let Some(runtime) = store.shard_runtime() {
                let _ = runtime.runs_for(&store.snapshot());
            }
        }
        ready.store(true, Ordering::Release);

        // `workers == 0` is inline mode: no worker threads, the event
        // loop routes requests itself with its own pool.
        let worker_handles: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|_| {
                let jobs = jobs.clone();
                let bridge = bridge.clone();
                let store = store.clone();
                let config = config.clone();
                let metrics = metrics.clone();
                let draining = draining.clone();
                let ready = ready.clone();
                std::thread::spawn(move || {
                    worker_loop(jobs, bridge, store, config, metrics, draining, ready)
                })
            })
            .collect();

        let io_handle = {
            let inline_pool = if config.workers == 0 {
                Some(Pool::new(config.pool_threads.max(1)))
            } else {
                None
            };
            let event_loop = EventLoop {
                epoll,
                listener: Some(listener),
                wake_rx,
                conns: Vec::new(),
                free: Vec::new(),
                next_gen: 0,
                open: 0,
                jobs: jobs.clone(),
                bridge,
                metrics: metrics.clone(),
                shutdown: shutdown.clone(),
                draining,
                ready,
                config: config.clone(),
                store,
                inline_pool,
            };
            std::thread::spawn(move || event_loop.run())
        };

        Ok(Server {
            addr,
            shutdown,
            jobs,
            metrics,
            io_handle: Some(io_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Graceful shutdown: stop accepting, drain in-flight and
    /// pipelined requests, join every thread. The event loop notices
    /// the flag within one tick, drops the listener, and exits once
    /// every connection has been served and closed; then the job queue
    /// closes and the workers join.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.io_handle.take() {
            let _ = handle.join();
        }
        self.jobs.close();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_req(target: &str) -> Request {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            ..Request::default()
        }
    }

    fn post_req(target: &str, body: &[u8]) -> Request {
        let mut req = get_req(target);
        req.method = "POST".into();
        req.body = body.to_vec();
        req
    }

    #[test]
    fn opts_parse_from_query_string() {
        let config = ServerConfig::default();
        let req = get_req("/query?mode=parallel&trace=1&cache=0&deadline_ms=250");
        let opts = parse_opts(&req, &config).expect("valid");
        assert_eq!(opts.mode, ExecMode::Parallel);
        assert!(opts.trace);
        assert!(!opts.cache);
        assert_eq!(opts.deadline, Some(Duration::from_millis(250)));

        // Defaults: sequential, cached, config deadline and slow-query
        // threshold.
        let opts = parse_opts(&get_req("/query"), &config).expect("valid");
        assert_eq!(opts.mode, ExecMode::Seq);
        assert!(opts.cache);
        assert_eq!(opts.deadline, config.default_deadline);
        assert_eq!(opts.slow_query, config.slow_query_threshold);
        assert_eq!(opts.columnar, None);

        // Per-request overrides for the columnar engine and the
        // slow-query threshold.
        let opts = parse_opts(&get_req("/query?columnar=0&slow_ms=5"), &config).expect("valid");
        assert_eq!(opts.columnar, Some(false));
        assert_eq!(opts.slow_query, Some(Duration::from_millis(5)));

        assert!(parse_opts(&get_req("/query?mode=warp"), &config).is_err());
        assert!(parse_opts(&get_req("/query?trace=yes"), &config).is_err());
        assert!(parse_opts(&get_req("/query?bogus=1"), &config).is_err());
        assert!(parse_opts(&get_req("/query?deadline_ms=abc"), &config).is_err());
        assert!(parse_opts(&get_req("/query?slow_ms=fast"), &config).is_err());
        assert!(parse_opts(&get_req("/query?columnar=maybe"), &config).is_err());
    }

    #[test]
    fn max_class_tightens_but_never_relaxes_the_configured_ceiling() {
        use owql_lint::ComplexityClass;
        let open = ServerConfig::default();
        assert_eq!(
            parse_opts(&get_req("/query"), &open)
                .expect("valid")
                .max_class,
            None
        );
        // No server ceiling: the request sets one freely.
        let opts = parse_opts(&get_req("/query?max_class=dp"), &open).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Dp));

        let capped = ServerConfig {
            admission_ceiling: Some(ComplexityClass::Np),
            ..ServerConfig::default()
        };
        // Default: the configured ceiling rides along.
        let opts = parse_opts(&get_req("/query"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Np));
        // Tightening below the ceiling is honored...
        let opts = parse_opts(&get_req("/query?max_class=p"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::P));
        // ...but asking for more than the server allows is clamped.
        let opts = parse_opts(&get_req("/query?max_class=pspace"), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Np));
        assert!(parse_opts(&get_req("/query?max_class=turing"), &capped).is_err());

        // The /v1 JSON opts apply the same clamp.
        let doc = reqjson::parse(r#"{"max_class": "pspace"}"#).expect("valid json");
        let opts = v1_opts(Some(&doc), &capped).expect("valid");
        assert_eq!(opts.max_class, Some(ComplexityClass::Np));
    }

    #[test]
    fn v1_opts_parse_and_reject_unknowns() {
        let config = ServerConfig::default();
        let doc = reqjson::parse(
            r#"{"mode": "parallel", "trace": true, "cache": false,
                "columnar": true, "deadline_ms": 250, "slow_ms": 5}"#,
        )
        .expect("valid json");
        let opts = v1_opts(Some(&doc), &config).expect("valid");
        assert_eq!(opts.mode, ExecMode::Parallel);
        assert!(opts.trace);
        assert!(!opts.cache);
        assert_eq!(opts.columnar, Some(true));
        assert_eq!(opts.deadline, Some(Duration::from_millis(250)));
        assert_eq!(opts.slow_query, Some(Duration::from_millis(5)));

        // Absent opts: config defaults.
        let opts = v1_opts(None, &config).expect("valid");
        assert_eq!(opts.deadline, config.default_deadline);

        for bad in [
            r#"{"mode": "warp"}"#,
            r#"{"trace": "yes"}"#,
            r#"{"deadline_ms": -1}"#,
            r#"{"deadline_ms": 2.5}"#,
            r#"{"bogus": 1}"#,
            r#"{"max_class": 3}"#,
        ] {
            let doc = reqjson::parse(bad).expect("valid json");
            assert!(v1_opts(Some(&doc), &config).is_err(), "{bad} should fail");
        }
        assert!(v1_opts(Some(&reqjson::JsonValue::Num(1.0)), &config).is_err());
    }

    #[test]
    fn mappings_serialize_sorted_and_escaped() {
        use owql_algebra::Mapping;
        let mut set = owql_algebra::MappingSet::new();
        set.insert(Mapping::from_str_pairs(&[("b", "B"), ("a", "A")]));
        set.insert(Mapping::from_str_pairs(&[("a", "quo\"te")]));
        let json = mappings_json(&set);
        assert_eq!(json, r#"[{"a": "A", "b": "B"}, {"a": "quo\"te"}]"#);
        assert!(mappings_json(&owql_algebra::MappingSet::new()) == "[]");
    }

    #[test]
    fn job_queue_bounds_forces_and_drains() {
        let q = JobQueue::new(2);
        let mk = || Job {
            slot: 0,
            gen: 0,
            req: Request::default(),
        };
        assert!(q.push(mk(), false).is_ok());
        assert!(q.push(mk(), false).is_ok());
        assert!(
            q.push(mk(), false).is_err(),
            "third push exceeds capacity 2"
        );
        assert!(q.push(mk(), true).is_ok(), "force bypasses the bound");
        assert!(q.pop().is_some());
        q.close();
        assert!(q.pop().is_some(), "close drains remaining entries");
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        assert!(q.push(mk(), true).is_err(), "closed queue rejects pushes");
    }

    #[test]
    fn config_builder_sets_every_knob() {
        let config = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_capacity(16)
            .pool_threads(3)
            .default_deadline(Some(Duration::from_secs(5)))
            .retry_after_secs(7)
            .io_timeout(Duration::from_secs(9))
            .admission_ceiling(Some(owql_lint::ComplexityClass::Np))
            .slow_query_threshold(None)
            .shards(4)
            .build();
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_capacity, 16);
        assert_eq!(config.pool_threads, 3);
        assert_eq!(config.default_deadline, Some(Duration::from_secs(5)));
        assert_eq!(config.retry_after_secs, 7);
        assert_eq!(config.io_timeout, Duration::from_secs(9));
        assert_eq!(
            config.admission_ceiling,
            Some(owql_lint::ComplexityClass::Np)
        );
        assert_eq!(config.slow_query_threshold, None);
        assert_eq!(config.shards, 4);
    }

    #[test]
    fn metrics_route_reports_persist_section() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        // In-memory store: persist is explicitly null.
        let store = Store::new();
        let reply = route(
            &get_req("/metrics?format=json"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"persist\": null"), "{}", reply.body);
        assert!(reply.body.contains("\"hub\""), "{}", reply.body);
        assert!(reply.body.contains("\"slow_queries\""), "{}", reply.body);

        // Durable store: the counters appear.
        let dir = std::env::temp_dir().join(format!("owql-server-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Store::open(
            &dir,
            owql_store::StoreOptions::default(),
            owql_store::PersistConfig::default()
                .no_fsync()
                .inline_indexer(),
        )
        .expect("open durable store");
        durable.insert(owql_rdf::Triple::new("a", "p", "b"));
        let reply = route(
            &get_req("/metrics?format=json"),
            &durable,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        for key in [
            "\"wal_bytes\"",
            "\"wal_records\": 1",
            "\"segment_generation\"",
            "\"last_checkpoint_epoch\"",
            "\"checkpoints\"",
            "\"recovery_replayed_records\"",
            "\"wal_fsync\"",
            "\"histogram_buckets\"",
        ] {
            assert!(reply.body.contains(key), "missing {key} in {}", reply.body);
        }
    }

    /// The golden Prometheus-format test: after `N` queries the default
    /// `/metrics` rendering carries every `# TYPE`/`# HELP` pair, a
    /// monotonically non-decreasing cumulative `le` series ending in
    /// `+Inf`, and `owql_query_latency_seconds_count == N`.
    #[test]
    fn metrics_route_renders_prometheus_text_by_default() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        store.insert(owql_rdf::Triple::new("b", "p", "c"));

        const N: usize = 7;
        let query = post_req("/query?cache=0&trace=1", b"((?x, p, ?y) AND (?y, p, ?z))");
        for _ in 0..N {
            let reply = route(&query, &store, &pool, &config, &metrics, true);
            assert_eq!(reply.status, 200);
        }

        let reply = route(&get_req("/metrics"), &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 200);
        let body = reply.body;
        assert!(
            !body.trim_start().starts_with('{'),
            "default rendering must be Prometheus text, not JSON: {body}"
        );
        assert_eq!(reply.content_type, "text/plain; version=0.0.4");
        for family in [
            ("owql_queries_total", "counter"),
            ("owql_query_latency_seconds", "histogram"),
            ("owql_operator_latency_seconds", "histogram"),
            ("owql_columnar_runs_total", "counter"),
            ("owql_columnar_fallbacks_total", "counter"),
            ("owql_wal_fsync_seconds", "histogram"),
            ("owql_checkpoint_seconds", "histogram"),
            ("owql_slow_queries_total", "counter"),
            ("owql_server_accepted_total", "counter"),
            ("owql_server_responses_total", "counter"),
            ("owql_server_ready_events_total", "counter"),
            ("owql_server_connections_open", "gauge"),
            ("owql_server_keepalive_reuses_total", "counter"),
            ("owql_server_pipelined_requests_total", "counter"),
            ("owql_server_chunked_responses_total", "counter"),
            ("owql_store_epoch", "gauge"),
            ("owql_store_triples", "gauge"),
        ] {
            let (name, kind) = family;
            assert!(
                body.contains(&format!("# TYPE {name} {kind}")),
                "missing # TYPE {name} {kind} in:\n{body}"
            );
            assert!(
                body.contains(&format!("# HELP {name} ")),
                "missing # HELP {name} in:\n{body}"
            );
        }
        assert!(
            body.contains(&format!("owql_query_latency_seconds_count {N}")),
            "count must equal the {N} queries served:\n{body}"
        );
        assert!(body.contains("owql_store_triples 2"), "{body}");

        // Cumulative bucket counts are monotone and end at +Inf == count.
        let buckets: Vec<u64> = body
            .lines()
            .filter(|l| l.starts_with("owql_query_latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!buckets.is_empty());
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "le series must be cumulative: {buckets:?}"
        );
        assert_eq!(*buckets.last().unwrap(), N as u64, "+Inf bucket == count");
        let inf_lines: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("owql_query_latency_seconds_bucket") && l.contains("+Inf"))
            .collect();
        assert_eq!(inf_lines.len(), 1, "exactly one +Inf bucket");
    }

    /// `slow_ms=0` forces every query into the slow-query log, which the
    /// JSON metrics rendering then exposes.
    #[test]
    fn slow_ms_zero_injects_into_the_slow_query_log() {
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));

        let query = post_req("/query?cache=0&slow_ms=0", b"(?x, p, ?y)");
        let reply = route(&query, &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 200);

        let reply = route(
            &get_req("/metrics?format=json"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(
            reply.body.contains("\"slow_queries_total\": 1"),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("(?x, p, ?y)"), "{}", reply.body);
        let prom = route(&get_req("/metrics"), &store, &pool, &config, &metrics, true);
        assert!(
            prom.body.contains("owql_slow_queries_total 1"),
            "{}",
            prom.body
        );
    }

    #[test]
    fn route_rejects_unknown_paths_and_methods() {
        let store = Store::new();
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();
        let reply = route(&get_req("/nope"), &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 404);
        assert!(
            reply.body.contains("\"code\": \"not_found\""),
            "{}",
            reply.body
        );
        let mut post = get_req("/healthz");
        post.method = "POST".into();
        let reply = route(&post, &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 405);
        let mut post = get_req("/v1/healthz");
        post.method = "POST".into();
        let reply = route(&post, &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 405);
        assert!(
            reply.body.contains("\"code\": \"method_not_allowed\""),
            "{}",
            reply.body
        );
    }

    #[test]
    fn legacy_endpoints_answer_with_deprecation_headers() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let reply = route(&get_req("/healthz"), &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 200);
        assert!(reply
            .headers
            .iter()
            .any(|(name, value)| *name == "Deprecation" && value == "true"));
        assert!(reply
            .headers
            .iter()
            .any(|(name, value)| *name == "Link" && value.contains("/v1/healthz")));

        let reply = route(
            &post_req("/query", b"(?x, p, ?y)"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.headers.iter().any(|(name, _)| *name == "Deprecation"));

        // The versioned endpoints carry no deprecation marker.
        let reply = route(
            &get_req("/v1/healthz"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.headers.is_empty(), "{:?}", reply.headers);
    }

    #[test]
    fn v1_healthz_readiness_gates_on_the_flag() {
        let store = Store::new();
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        // Liveness always answers, reporting readiness.
        let reply = route(
            &get_req("/v1/healthz"),
            &store,
            &pool,
            &config,
            &metrics,
            false,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"ready\": false"), "{}", reply.body);

        // The readiness probe fails until ready.
        let reply = route(
            &get_req("/v1/healthz?ready=1"),
            &store,
            &pool,
            &config,
            &metrics,
            false,
        );
        assert_eq!(reply.status, 503);
        assert!(
            reply.body.contains("\"code\": \"not_ready\""),
            "{}",
            reply.body
        );
        let reply = route(
            &get_req("/v1/healthz?ready=1"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"ready\": true"), "{}", reply.body);
    }

    #[test]
    fn v1_query_answers_and_envelopes_errors() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let reply = route(
            &post_req("/v1/query", br#"{"pattern": "(?x, p, ?y)"}"#),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"count\": 1"), "{}", reply.body);
        assert!(reply.body.contains("\"x\": \"a\""), "{}", reply.body);

        // Options ride in the body; trace=true yields a profile.
        let reply = route(
            &post_req(
                "/v1/query",
                br#"{"pattern": "(?x, p, ?y)", "opts": {"trace": true, "cache": false}}"#,
            ),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"profile\""), "{}", reply.body);

        // A pattern parse failure carries a parse_error code and the
        // offending span.
        let reply = route(
            &post_req("/v1/query", br#"{"pattern": "(?x, p"}"#),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 400);
        assert!(
            reply.body.contains("\"code\": \"parse_error\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"span\""), "{}", reply.body);
        assert!(reply.body.contains("\"offset\""), "{}", reply.body);

        // Malformed JSON and missing pattern are bad_request.
        for bad in [&b"not json"[..], br#"{"opts": {}}"#] {
            let reply = route(
                &post_req("/v1/query", bad),
                &store,
                &pool,
                &config,
                &metrics,
                true,
            );
            assert_eq!(reply.status, 400, "{}", reply.body);
            assert!(
                reply.body.contains("\"code\": \"bad_request\""),
                "{}",
                reply.body
            );
        }

        // The deadline path maps to a timeout envelope.
        let reply = route(
            &post_req(
                "/v1/query",
                br#"{"pattern": "(?x, p, ?y)", "opts": {"deadline_ms": 0, "cache": false}}"#,
            ),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 504);
        assert!(
            reply.body.contains("\"code\": \"timeout\""),
            "{}",
            reply.body
        );

        // The admission ceiling maps to admission_denied + AD001.
        let capped = ServerConfig {
            admission_ceiling: Some(owql_lint::ComplexityClass::Np),
            ..ServerConfig::default()
        };
        let reply = route(
            &post_req(
                "/v1/query",
                br#"{"pattern": "NS(((?x, p, ?y) OPT (?y, p, ?z)))"}"#,
            ),
            &store,
            &pool,
            &capped,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert!(
            reply.body.contains("\"code\": \"admission_denied\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"rule\": \"AD001\""), "{}", reply.body);
    }

    #[test]
    fn v1_explain_and_lint_answer() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let reply = route(
            &post_req("/v1/explain", br#"{"pattern": "(?x, p, ?y)"}"#),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"plan\""), "{}", reply.body);
        // Un-optimized explains carry no prune section.
        assert!(!reply.body.contains("\"prunes\""), "{}", reply.body);

        // With `optimize` the unsatisfiable conjunction is pruned: the
        // plan shown is the empty marker, and the counters say why.
        let reply = route(
            &post_req(
                "/v1/explain",
                br#"{"pattern": "((?x, p, ?y) FILTER ((?y = c1) && (?y = c2)))",
                     "opts": {"optimize": true}}"#,
            ),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(
            reply.body.contains("\"unsat_filters\": 1"),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"answers\": 0"), "{}", reply.body);
        assert!(
            reply.body.contains("FILTER false"),
            "optimized plan should show the empty marker: {}",
            reply.body
        );

        let reply = route(
            &post_req(
                "/v1/lint",
                br#"{"pattern": "((?X, a, Chile) AND ((?Y, a, Chile) OPT (?Y, b, ?X)))"}"#,
            ),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(
            reply.body.contains("\"well_designed\": \"violated\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"rule\": \"WD001\""), "{}", reply.body);
        // The dataflow lattice rides along: ?X and ?Y are certain,
        // the OPT-side extension is possible-only.
        assert!(
            reply.body.contains(
                "\"bindings\": {\"certain\": [\"?X\", \"?Y\"], \"possible\": [\"?X\", \"?Y\"]}"
            ),
            "{}",
            reply.body
        );

        // Lint parse failures carry the span envelope too.
        let reply = route(
            &post_req("/v1/lint", br#"{"pattern": "(?x, p"}"#),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 400);
        assert!(
            reply.body.contains("\"code\": \"parse_error\""),
            "{}",
            reply.body
        );
    }

    #[test]
    fn query_route_answers_and_echoes_parse_errors() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let reply = route(
            &post_req("/query", b"(?x, p, ?y)"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"count\": 1"));
        assert!(reply.body.contains("\"x\": \"a\""));

        let reply = route(
            &post_req("/query", b"(?x, p"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 400);
        assert!(reply.body.contains("parse error at byte"), "{}", reply.body);

        // The deadline path maps to 504.
        let reply = route(
            &post_req("/query?deadline_ms=0&cache=0", b"(?x, p, ?y)"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 504);
        assert!(reply.body.contains("deadline"));
    }

    #[test]
    fn admission_ceiling_sheds_with_429_and_ad001_diagnostic() {
        let store = Store::new();
        store.insert(owql_rdf::Triple::new("a", "p", "b"));
        let pool = Pool::sequential();
        let config = ServerConfig {
            admission_ceiling: Some(owql_lint::ComplexityClass::Np),
            ..ServerConfig::default()
        };
        let metrics = ServerMetrics::default();

        // PSPACE-class body: NS over a non-AUFS operand.
        let reply = route(
            &post_req("/query", b"NS(((?x, p, ?y) OPT (?y, p, ?z)))"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert!(reply.body.contains("\"rule\": \"AD001\""), "{}", reply.body);
        assert!(
            reply.body.contains("above the configured NP ceiling"),
            "{}",
            reply.body
        );
        assert_eq!(metrics.shed_total.load(Ordering::Relaxed), 1);

        // At or under the ceiling the same store still answers.
        let reply = route(
            &post_req("/query", b"(?x, p, ?y)"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 200);
    }

    #[test]
    fn lint_route_reports_diagnostics_without_evaluating() {
        let store = Store::new();
        let pool = Pool::sequential();
        let config = ServerConfig::default();
        let metrics = ServerMetrics::default();

        let req = post_req(
            "/lint",
            b"((?X, a, Chile) AND\n ((?Y, a, Chile) OPT (?Y, b, ?X)))",
        );
        let reply = route(&req, &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(
            reply.body.contains("\"fragment\": \"SPARQL\""),
            "{}",
            reply.body
        );
        assert!(
            reply.body.contains("\"complexity\": \"PSPACE\""),
            "{}",
            reply.body
        );
        assert!(
            reply.body.contains("\"well_designed\": \"violated\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"rule\": \"WD001\""), "{}", reply.body);
        // The WD001 span starts on line 2 of the multi-line body.
        assert!(reply.body.contains("\"line\": 2"), "{}", reply.body);

        let mut get = req.clone();
        get.method = "GET".into();
        let reply = route(&get, &store, &pool, &config, &metrics, true);
        assert_eq!(reply.status, 405);

        let reply = route(
            &post_req("/lint", b"(?x, p"),
            &store,
            &pool,
            &config,
            &metrics,
            true,
        );
        assert_eq!(reply.status, 400);
        assert!(reply.body.contains("parse error at byte"), "{}", reply.body);
    }

    #[test]
    fn shed_reply_formats_follow_the_surface() {
        let config = ServerConfig::default();
        let legacy = shed_reply(&post_req("/query", b"x"), &config);
        assert_eq!(legacy.status, 429);
        assert!(legacy.body.starts_with("{\"error\": \""), "{}", legacy.body);
        assert!(legacy
            .headers
            .iter()
            .any(|(name, value)| *name == "Retry-After" && value == "1"));

        let v1 = shed_reply(&post_req("/v1/query", b"x"), &config);
        assert_eq!(v1.status, 429);
        assert!(v1.body.contains("\"code\": \"shed\""), "{}", v1.body);
        assert!(v1.body.contains("\"retry_after\": 1"), "{}", v1.body);
        assert!(v1
            .headers
            .iter()
            .any(|(name, value)| *name == "Retry-After" && value == "1"));
    }
}
