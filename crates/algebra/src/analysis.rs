//! Static analysis of graph patterns: variables, IRIs, operator
//! fragments, fresh-variable generation, and possible answer domains.
//!
//! The paper names fragments of SPARQL by the first letter of the
//! allowed operators — `SPARQL[AUF]`, `SPARQL[AUFS]`, `SPARQL[AOF]`,
//! etc. (Section 2.1). [`Operators`] is the corresponding bit-set and
//! [`operators`]/[`in_fragment`] classify an AST.
//!
//! [`possible_domains`] over-approximates the set of domains
//! `{dom(µ) : µ ∈ ⟦P⟧G, G any graph}` — the key ingredient of the
//! fixed-domain normal form of Lemma D.2, where the naive construction
//! would enumerate all `2^|var(P)|` subsets.

use crate::condition::Condition;
use crate::pattern::{Pattern, TriplePattern};
use crate::variable::Variable;
use owql_rdf::Iri;
use std::collections::BTreeSet;
use std::fmt;

/// A set of SPARQL operators, used to name fragments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Operators {
    bits: u8,
}

impl Operators {
    /// `AND` (A).
    pub const AND: Operators = Operators { bits: 1 };
    /// `UNION` (U).
    pub const UNION: Operators = Operators { bits: 2 };
    /// `OPT` (O).
    pub const OPT: Operators = Operators { bits: 4 };
    /// `FILTER` (F).
    pub const FILTER: Operators = Operators { bits: 8 };
    /// `SELECT` (S).
    pub const SELECT: Operators = Operators { bits: 16 };
    /// `NS` (N) — the paper's new operator.
    pub const NS: Operators = Operators { bits: 32 };
    /// `MINUS` (M) — derived operator of Appendix D.
    pub const MINUS: Operators = Operators { bits: 64 };

    /// The empty operator set (triple patterns only).
    pub const NONE: Operators = Operators { bits: 0 };

    /// `SPARQL[AF]`.
    pub const AF: Operators = Operators { bits: 1 | 8 };
    /// `SPARQL[AUF]` — the fragment characterizing monotone CONSTRUCT
    /// queries (Corollary 6.8).
    pub const AUF: Operators = Operators { bits: 1 | 2 | 8 };
    /// `SPARQL[AFS]`.
    pub const AFS: Operators = Operators { bits: 1 | 8 | 16 };
    /// `SPARQL[AUFS]` — the interpolation target fragment (Theorem 4.1).
    pub const AUFS: Operators = Operators {
        bits: 1 | 2 | 8 | 16,
    };
    /// `SPARQL[AOF]` — the home of well-designedness (Definition 3.4).
    pub const AOF: Operators = Operators { bits: 1 | 4 | 8 };
    /// `SPARQL[AUOF]`.
    pub const AUOF: Operators = Operators {
        bits: 1 | 2 | 4 | 8,
    };
    /// Full SPARQL (no NS, no MINUS).
    pub const SPARQL: Operators = Operators {
        bits: 1 | 2 | 4 | 8 | 16,
    };
    /// Full NS–SPARQL.
    pub const NS_SPARQL: Operators = Operators {
        bits: 1 | 2 | 4 | 8 | 16 | 32,
    };

    /// Union of two operator sets.
    pub fn with(self, other: Operators) -> Operators {
        Operators {
            bits: self.bits | other.bits,
        }
    }

    /// `true` iff `self` is contained in `allowed`.
    pub fn within(self, allowed: Operators) -> bool {
        self.bits & !allowed.bits == 0
    }

    /// `true` iff `op` is present.
    pub fn contains(self, op: Operators) -> bool {
        self.bits & op.bits == op.bits
    }
}

impl fmt::Debug for Operators {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Operators::AND, 'A'),
            (Operators::UNION, 'U'),
            (Operators::OPT, 'O'),
            (Operators::FILTER, 'F'),
            (Operators::SELECT, 'S'),
            (Operators::NS, 'N'),
            (Operators::MINUS, 'M'),
        ];
        write!(f, "[")?;
        for (op, c) in names {
            if self.contains(op) {
                write!(f, "{c}")?;
            }
        }
        write!(f, "]")
    }
}

/// The operators used by a pattern.
pub fn operators(p: &Pattern) -> Operators {
    match p {
        Pattern::Triple(_) => Operators::NONE,
        Pattern::And(a, b) => Operators::AND.with(operators(a)).with(operators(b)),
        Pattern::Union(a, b) => Operators::UNION.with(operators(a)).with(operators(b)),
        Pattern::Opt(a, b) => Operators::OPT.with(operators(a)).with(operators(b)),
        Pattern::Minus(a, b) => Operators::MINUS.with(operators(a)).with(operators(b)),
        Pattern::Filter(q, _) => Operators::FILTER.with(operators(q)),
        Pattern::Select(_, q) => Operators::SELECT.with(operators(q)),
        Pattern::Ns(q) => Operators::NS.with(operators(q)),
    }
}

/// `true` iff `p` only uses operators from `allowed` — e.g.
/// `in_fragment(p, Operators::AUFS)` tests membership in
/// `SPARQL[AUFS]`.
pub fn in_fragment(p: &Pattern, allowed: Operators) -> bool {
    operators(p).within(allowed)
}

/// `var(P)`: every variable mentioned in the pattern, including filter
/// conditions and `SELECT` sets (the paper's `var(·)`).
pub fn pattern_vars(p: &Pattern) -> BTreeSet<Variable> {
    let mut out = BTreeSet::new();
    collect_vars(p, &mut out);
    out
}

fn collect_vars(p: &Pattern, out: &mut BTreeSet<Variable>) {
    match p {
        Pattern::Triple(t) => out.extend(t.vars()),
        Pattern::And(a, b) | Pattern::Union(a, b) | Pattern::Opt(a, b) | Pattern::Minus(a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        Pattern::Filter(q, r) => {
            collect_vars(q, out);
            out.extend(r.vars());
        }
        Pattern::Select(vs, q) => {
            out.extend(vs.iter().copied());
            collect_vars(q, out);
        }
        Pattern::Ns(q) => collect_vars(q, out),
    }
}

/// The *certainly bound* variables of a pattern: variables bound in
/// every answer, over every graph.
///
/// A sound under-approximation used by the filter-pushdown optimizer
/// (pushing `FILTER R` below an `AND` is only meaning-preserving when
/// the receiving operand certainly binds `var(R)`):
///
/// * triple `t` → `var(t)`
/// * `AND` → union of both sides
/// * `UNION` → intersection
/// * `OPT` / `MINUS` → left side
/// * `FILTER` / `NS` → operand
/// * `SELECT V` → operand ∩ `V`
pub fn certainly_bound_vars(p: &Pattern) -> BTreeSet<Variable> {
    match p {
        Pattern::Triple(t) => t.vars(),
        Pattern::And(a, b) => {
            let mut out = certainly_bound_vars(a);
            out.extend(certainly_bound_vars(b));
            out
        }
        Pattern::Union(a, b) => certainly_bound_vars(a)
            .intersection(&certainly_bound_vars(b))
            .copied()
            .collect(),
        Pattern::Opt(a, _) | Pattern::Minus(a, _) => certainly_bound_vars(a),
        Pattern::Filter(q, _) | Pattern::Ns(q) => certainly_bound_vars(q),
        Pattern::Select(v, q) => certainly_bound_vars(q).intersection(v).copied().collect(),
    }
}

/// `I(P)`: every IRI mentioned in the pattern (triple patterns and
/// filter constants).
pub fn pattern_iris(p: &Pattern) -> BTreeSet<Iri> {
    let mut out = BTreeSet::new();
    collect_iris(p, &mut out);
    out
}

fn collect_iris(p: &Pattern, out: &mut BTreeSet<Iri>) {
    match p {
        Pattern::Triple(t) => out.extend(t.iris()),
        Pattern::And(a, b) | Pattern::Union(a, b) | Pattern::Opt(a, b) | Pattern::Minus(a, b) => {
            collect_iris(a, out);
            collect_iris(b, out);
        }
        Pattern::Filter(q, r) => {
            collect_iris(q, out);
            out.extend(r.iris());
        }
        Pattern::Select(_, q) | Pattern::Ns(q) => collect_iris(q, out),
    }
}

/// All triple patterns occurring in `p` (in syntactic order).
pub fn triple_patterns(p: &Pattern) -> Vec<TriplePattern> {
    let mut out = Vec::new();
    fn walk(p: &Pattern, out: &mut Vec<TriplePattern>) {
        match p {
            Pattern::Triple(t) => out.push(*t),
            Pattern::And(a, b)
            | Pattern::Union(a, b)
            | Pattern::Opt(a, b)
            | Pattern::Minus(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Pattern::Filter(q, _) | Pattern::Select(_, q) | Pattern::Ns(q) => walk(q, out),
        }
    }
    walk(p, &mut out);
    out
}

/// `true` iff the pattern contains a triple pattern whose three
/// positions are all variables — the condition excluded by Lemma G.2.
pub fn has_variable_only_triple(p: &Pattern) -> bool {
    triple_patterns(p).iter().any(|t| t.is_variable_only())
}

/// A generator of variables guaranteed fresh with respect to a set of
/// patterns, used by every renaming construction in Appendices D–F.
#[derive(Debug)]
pub struct FreshVars {
    taken: BTreeSet<Variable>,
    prefix: String,
    counter: usize,
}

impl FreshVars {
    /// Creates a generator avoiding every variable of `patterns`.
    pub fn avoiding<'a>(patterns: impl IntoIterator<Item = &'a Pattern>) -> FreshVars {
        let mut taken = BTreeSet::new();
        for p in patterns {
            taken.extend(pattern_vars(p));
        }
        FreshVars {
            taken,
            prefix: "f".to_owned(),
            counter: 0,
        }
    }

    /// Sets the name prefix of generated variables (cosmetic).
    pub fn with_prefix(mut self, prefix: &str) -> FreshVars {
        self.prefix = prefix.to_owned();
        self
    }

    /// Marks more variables as taken.
    pub fn also_avoid(&mut self, vars: impl IntoIterator<Item = Variable>) {
        self.taken.extend(vars);
    }

    /// Produces the next fresh variable.
    pub fn fresh(&mut self) -> Variable {
        loop {
            let v = Variable::new(&format!("__{}{}", self.prefix, self.counter));
            self.counter += 1;
            if self.taken.insert(v) {
                return v;
            }
        }
    }
}

/// Over-approximation of the possible answer domains of `p`:
/// a set `D` of variable sets such that for every graph `G` and every
/// `µ ∈ ⟦P⟧G`, `dom(µ) ∈ D`.
///
/// * triple `t` → `{var(t)}`
/// * `AND` → pairwise unions
/// * `UNION` → set union
/// * `OPT` → pairwise unions plus the left domains
/// * `MINUS` → left domains
/// * `FILTER` → left domains (bound-condition pruning applied: a domain
///   that falsifies a *top-level conjunct* `bound(?X)` / `¬bound(?X)` of
///   the condition is dropped)
/// * `SELECT V` → domains intersected with `V`
/// * `NS` → inner domains
///
/// The result size is bounded by `2^|var(P)|` but is typically tiny;
/// an internal cap keeps pathological patterns from exploding — beyond
/// the cap the full power set would be returned by the caller instead
/// (see [`possible_domains`] return value documentation in
/// `normal_form`).
pub fn possible_domains(p: &Pattern) -> BTreeSet<BTreeSet<Variable>> {
    const CAP: usize = 4096;
    match p {
        Pattern::Triple(t) => [t.vars()].into_iter().collect(),
        Pattern::And(a, b) => {
            let da = possible_domains(a);
            let db = possible_domains(b);
            let mut out = BTreeSet::new();
            for x in &da {
                for y in &db {
                    out.insert(x.union(y).copied().collect());
                    if out.len() > CAP {
                        return power_set_of_vars(p);
                    }
                }
            }
            out
        }
        Pattern::Union(a, b) => {
            let mut out = possible_domains(a);
            out.extend(possible_domains(b));
            out
        }
        Pattern::Opt(a, b) => {
            let da = possible_domains(a);
            let db = possible_domains(b);
            let mut out = da.clone();
            for x in &da {
                for y in &db {
                    out.insert(x.union(y).copied().collect());
                    if out.len() > CAP {
                        return power_set_of_vars(p);
                    }
                }
            }
            out
        }
        Pattern::Minus(a, _) => possible_domains(a),
        Pattern::Filter(q, r) => {
            let dq = possible_domains(q);
            let (must, must_not) = bound_literals(r);
            dq.into_iter()
                .filter(|d| {
                    must.iter().all(|v| d.contains(v)) && must_not.iter().all(|v| !d.contains(v))
                })
                .collect()
        }
        Pattern::Select(vs, q) => possible_domains(q)
            .into_iter()
            .map(|d| d.intersection(vs).copied().collect())
            .collect(),
        Pattern::Ns(q) => possible_domains(q),
    }
}

/// Fallback for [`possible_domains`]: the full power set of `var(P)`.
fn power_set_of_vars(p: &Pattern) -> BTreeSet<BTreeSet<Variable>> {
    let vars: Vec<Variable> = pattern_vars(p).into_iter().collect();
    assert!(
        vars.len() <= 20,
        "domain analysis exploded on a pattern with {} variables",
        vars.len()
    );
    let mut out = BTreeSet::new();
    for mask in 0u32..(1 << vars.len()) {
        out.insert(
            vars.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect(),
        );
    }
    out
}

/// Extracts the `bound(?X)` (first set) and `¬bound(?X)` (second set)
/// atoms appearing as top-level conjuncts of a condition.
fn bound_literals(r: &Condition) -> (BTreeSet<Variable>, BTreeSet<Variable>) {
    let mut must = BTreeSet::new();
    let mut must_not = BTreeSet::new();
    fn walk(r: &Condition, must: &mut BTreeSet<Variable>, must_not: &mut BTreeSet<Variable>) {
        match r {
            Condition::And(a, b) => {
                walk(a, must, must_not);
                walk(b, must, must_not);
            }
            Condition::Bound(v) => {
                must.insert(*v);
            }
            Condition::Not(inner) => {
                if let Condition::Bound(v) = inner.as_ref() {
                    must_not.insert(*v);
                }
            }
            // Equality atoms entail boundness too.
            Condition::EqConst(v, _) => {
                must.insert(*v);
            }
            Condition::EqVar(v, w) => {
                must.insert(*v);
                must.insert(*w);
            }
            _ => {}
        }
    }
    walk(r, &mut must, &mut must_not);
    (must, must_not)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn vset(names: &[&str]) -> BTreeSet<Variable> {
        names.iter().map(|n| Variable::new(n)).collect()
    }

    #[test]
    fn operator_collection() {
        let p = Pattern::t("?x", "a", "b")
            .and(Pattern::t("?y", "c", "d"))
            .union(Pattern::t("?z", "e", "f"))
            .filter(Condition::bound("x"));
        let ops = operators(&p);
        assert!(ops.contains(Operators::AND));
        assert!(ops.contains(Operators::UNION));
        assert!(ops.contains(Operators::FILTER));
        assert!(!ops.contains(Operators::OPT));
        assert!(in_fragment(&p, Operators::AUF));
        assert!(in_fragment(&p, Operators::AUFS));
        assert!(!in_fragment(&p, Operators::AF));
        assert_eq!(format!("{ops:?}"), "[AUF]");
    }

    #[test]
    fn fragment_constants_nest() {
        assert!(Operators::AUF.within(Operators::AUFS));
        assert!(Operators::AUFS.within(Operators::SPARQL));
        assert!(Operators::SPARQL.within(Operators::NS_SPARQL));
        assert!(!Operators::AOF.within(Operators::AUF));
    }

    #[test]
    fn vars_include_filter_and_select() {
        let p = Pattern::t("?x", "a", "?y")
            .filter(Condition::bound("z"))
            .select(["?w"]);
        assert_eq!(pattern_vars(&p), vset(&["x", "y", "z", "w"]));
    }

    #[test]
    fn iris_include_filter_constants() {
        let p = Pattern::t("?x", "pred", "obj").filter(Condition::eq_const("x", "konst"));
        let iris: Vec<&str> = pattern_iris(&p).iter().map(|i| i.as_str()).collect();
        assert_eq!(iris, vec!["konst", "obj", "pred"]);
    }

    #[test]
    fn triple_pattern_listing() {
        let p = Pattern::t("?x", "a", "b").and(Pattern::t("?y", "c", "d").ns());
        assert_eq!(triple_patterns(&p).len(), 2);
        assert!(!has_variable_only_triple(&p));
        assert!(has_variable_only_triple(&Pattern::t("?a", "?b", "?c")));
    }

    #[test]
    fn fresh_vars_avoid_existing() {
        let p = Pattern::t("?__f0", "a", "?x");
        let mut f = FreshVars::avoiding([&p]);
        let v = f.fresh();
        assert_ne!(v, Variable::new("__f0"));
        let w = f.fresh();
        assert_ne!(v, w);
    }

    #[test]
    fn certainly_bound_computation() {
        // OPT: only the mandatory side is certain.
        let p = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        assert_eq!(certainly_bound_vars(&p), vset(&["x"]));
        // UNION: intersection.
        let u = Pattern::t("?x", "a", "?y").union(Pattern::t("?x", "c", "?z"));
        assert_eq!(certainly_bound_vars(&u), vset(&["x"]));
        // SELECT: intersected with the projection.
        let s = Pattern::t("?x", "a", "?y").select(["?y"]);
        assert_eq!(certainly_bound_vars(&s), vset(&["y"]));
        // AND: union of both sides.
        let a = Pattern::t("?x", "a", "b").and(Pattern::t("?y", "c", "d"));
        assert_eq!(certainly_bound_vars(&a), vset(&["x", "y"]));
    }

    #[test]
    fn domains_triple_and_and() {
        let p = Pattern::t("?x", "a", "?y").and(Pattern::t("?y", "b", "?z"));
        let d = possible_domains(&p);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vset(&["x", "y", "z"])));
    }

    #[test]
    fn domains_union_and_opt() {
        let p = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        let d = possible_domains(&p);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&vset(&["x"])));
        assert!(d.contains(&vset(&["x", "y"])));

        let u = Pattern::t("?x", "a", "b").union(Pattern::t("?y", "c", "d"));
        let du = possible_domains(&u);
        assert_eq!(du.len(), 2);
    }

    #[test]
    fn domains_select_intersects() {
        let p = Pattern::t("?x", "a", "?y").select(["?x"]);
        let d = possible_domains(&p);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vset(&["x"])));
    }

    #[test]
    fn domains_filter_prunes_by_bound() {
        let p = Pattern::t("?x", "a", "b")
            .opt(Pattern::t("?x", "c", "?y"))
            .filter(Condition::bound("y"));
        let d = possible_domains(&p);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vset(&["x", "y"])));

        let q = Pattern::t("?x", "a", "b")
            .opt(Pattern::t("?x", "c", "?y"))
            .filter(Condition::bound("y").not());
        let dq = possible_domains(&q);
        assert_eq!(dq.len(), 1);
        assert!(dq.contains(&vset(&["x"])));
    }

    #[test]
    fn domains_minus_keeps_left() {
        let p = Pattern::t("?x", "a", "b").minus(Pattern::t("?x", "c", "?y"));
        let d = possible_domains(&p);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vset(&["x"])));
    }
}
