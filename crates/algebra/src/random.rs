//! Random pattern generation for property-based cross-validation.
//!
//! The equivalence theorems of the paper (`P ≡ Q`, `P ≡s Q`) quantify
//! over *all* graphs, which no test can enumerate; the project instead
//! validates its transformations on large samples of (pattern, graph)
//! pairs. This module is the pattern half of that sampling: a seeded
//! recursive generator over a configurable vocabulary and operator set.

use crate::analysis::Operators;
use crate::condition::Condition;
use crate::pattern::{Pattern, TermPattern, TriplePattern};
use crate::variable::Variable;
use owql_rdf::Iri;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_pattern`].
#[derive(Clone, Debug)]
pub struct PatternConfig {
    /// Variable pool.
    pub vars: Vec<Variable>,
    /// IRI pool (should overlap the IRIs of the graphs the pattern will
    /// be evaluated on, or nothing will ever match).
    pub iris: Vec<Iri>,
    /// Maximum recursion depth (`0` produces a bare triple pattern).
    pub max_depth: usize,
    /// Operators the generator may use.
    pub allowed: Operators,
    /// Probability that a triple-pattern position is a variable.
    pub var_probability: f64,
}

impl PatternConfig {
    /// A sensible default over `n_vars` variables `?v0..` and `n_iris`
    /// IRIs `i0..`, full SPARQL, depth 3.
    pub fn standard(n_vars: usize, n_iris: usize) -> PatternConfig {
        PatternConfig {
            vars: (0..n_vars)
                .map(|i| Variable::new(&format!("v{i}")))
                .collect(),
            iris: (0..n_iris).map(|i| Iri::new(&format!("i{i}"))).collect(),
            max_depth: 3,
            allowed: Operators::SPARQL,
            var_probability: 0.5,
        }
    }

    /// Restricts the generator to `allowed` operators.
    pub fn with_operators(mut self, allowed: Operators) -> PatternConfig {
        self.allowed = allowed;
        self
    }

    /// Sets the maximum depth.
    pub fn with_depth(mut self, depth: usize) -> PatternConfig {
        self.max_depth = depth;
        self
    }
}

fn random_term(rng: &mut StdRng, cfg: &PatternConfig) -> TermPattern {
    if rng.gen_bool(cfg.var_probability) {
        TermPattern::Var(cfg.vars[rng.gen_range(0..cfg.vars.len())])
    } else {
        TermPattern::Iri(cfg.iris[rng.gen_range(0..cfg.iris.len())])
    }
}

fn random_triple(rng: &mut StdRng, cfg: &PatternConfig) -> TriplePattern {
    TriplePattern {
        s: random_term(rng, cfg),
        p: random_term(rng, cfg),
        o: random_term(rng, cfg),
    }
}

fn random_condition(rng: &mut StdRng, cfg: &PatternConfig, depth: usize) -> Condition {
    if depth == 0 {
        match rng.gen_range(0..3) {
            0 => Condition::Bound(cfg.vars[rng.gen_range(0..cfg.vars.len())]),
            1 => Condition::EqConst(
                cfg.vars[rng.gen_range(0..cfg.vars.len())],
                cfg.iris[rng.gen_range(0..cfg.iris.len())],
            ),
            _ => Condition::EqVar(
                cfg.vars[rng.gen_range(0..cfg.vars.len())],
                cfg.vars[rng.gen_range(0..cfg.vars.len())],
            ),
        }
    } else {
        match rng.gen_range(0..4) {
            0 => random_condition(rng, cfg, depth - 1).not(),
            1 => random_condition(rng, cfg, depth - 1).and(random_condition(rng, cfg, depth - 1)),
            2 => random_condition(rng, cfg, depth - 1).or(random_condition(rng, cfg, depth - 1)),
            _ => random_condition(rng, cfg, 0),
        }
    }
}

fn random_pattern_inner(rng: &mut StdRng, cfg: &PatternConfig, depth: usize) -> Pattern {
    if depth == 0 {
        return Pattern::Triple(random_triple(rng, cfg));
    }
    // Pick among the allowed operators (plus "stop here").
    let mut choices: Vec<u8> = vec![0]; // 0 = triple
    if cfg.allowed.contains(Operators::AND) {
        choices.push(1);
    }
    if cfg.allowed.contains(Operators::UNION) {
        choices.push(2);
    }
    if cfg.allowed.contains(Operators::OPT) {
        choices.push(3);
    }
    if cfg.allowed.contains(Operators::FILTER) {
        choices.push(4);
    }
    if cfg.allowed.contains(Operators::SELECT) {
        choices.push(5);
    }
    if cfg.allowed.contains(Operators::NS) {
        choices.push(6);
    }
    if cfg.allowed.contains(Operators::MINUS) {
        choices.push(7);
    }
    match choices[rng.gen_range(0..choices.len())] {
        1 => {
            random_pattern_inner(rng, cfg, depth - 1).and(random_pattern_inner(rng, cfg, depth - 1))
        }
        2 => random_pattern_inner(rng, cfg, depth - 1).union(random_pattern_inner(
            rng,
            cfg,
            depth - 1,
        )),
        3 => {
            random_pattern_inner(rng, cfg, depth - 1).opt(random_pattern_inner(rng, cfg, depth - 1))
        }
        4 => random_pattern_inner(rng, cfg, depth - 1).filter(random_condition(rng, cfg, 1)),
        5 => {
            let inner = random_pattern_inner(rng, cfg, depth - 1);
            let inner_vars: Vec<Variable> =
                crate::analysis::pattern_vars(&inner).into_iter().collect();
            if inner_vars.is_empty() {
                inner
            } else {
                let keep = rng.gen_range(1..=inner_vars.len());
                let mut vs = inner_vars;
                // Deterministic subset: shuffle by index draws.
                for i in (1..vs.len()).rev() {
                    vs.swap(i, rng.gen_range(0..=i));
                }
                vs.truncate(keep);
                inner.select(vs)
            }
        }
        6 => random_pattern_inner(rng, cfg, depth - 1).ns(),
        7 => random_pattern_inner(rng, cfg, depth - 1).minus(random_pattern_inner(
            rng,
            cfg,
            depth - 1,
        )),
        _ => Pattern::Triple(random_triple(rng, cfg)),
    }
}

/// Generates a random pattern; deterministic in `seed`.
pub fn random_pattern(cfg: &PatternConfig, seed: u64) -> Pattern {
    assert!(!cfg.vars.is_empty() && !cfg.iris.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    random_pattern_inner(&mut rng, cfg, cfg.max_depth)
}

/// Generates `count` random patterns with consecutive seeds.
pub fn random_patterns(cfg: &PatternConfig, base_seed: u64, count: usize) -> Vec<Pattern> {
    (0..count)
        .map(|i| random_pattern(cfg, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{in_fragment, operators};

    #[test]
    fn deterministic_in_seed() {
        let cfg = PatternConfig::standard(3, 4);
        assert_eq!(random_pattern(&cfg, 7), random_pattern(&cfg, 7));
    }

    #[test]
    fn respects_operator_restriction() {
        let cfg = PatternConfig::standard(3, 4).with_operators(Operators::AUF);
        for seed in 0..200 {
            let p = random_pattern(&cfg, seed);
            assert!(
                in_fragment(&p, Operators::AUF),
                "seed {seed} produced {p} with {:?}",
                operators(&p)
            );
        }
    }

    #[test]
    fn depth_zero_is_triple() {
        let cfg = PatternConfig::standard(2, 2).with_depth(0);
        for seed in 0..20 {
            assert!(matches!(random_pattern(&cfg, seed), Pattern::Triple(_)));
        }
    }

    #[test]
    fn generates_varied_operators() {
        let cfg = PatternConfig::standard(3, 3).with_depth(4);
        let mut seen_union = false;
        let mut seen_opt = false;
        for seed in 0..300 {
            let ops = operators(&random_pattern(&cfg, seed));
            seen_union |= ops.contains(Operators::UNION);
            seen_opt |= ops.contains(Operators::OPT);
        }
        assert!(seen_union && seen_opt);
    }

    #[test]
    fn batch_generation() {
        let cfg = PatternConfig::standard(2, 2);
        assert_eq!(random_patterns(&cfg, 0, 10).len(), 10);
    }
}
