//! Testing-based equivalence checking for graph patterns.
//!
//! The paper compares patterns under two relations (Section 2.1 and
//! Section 4):
//!
//! * plain equivalence `P₁ ≡ P₂` — equal answer sets on every graph;
//! * subsumption equivalence `P₁ ≡s P₂` — mutually ⊑-covering answer
//!   sets on every graph.
//!
//! Both quantify over all graphs and are undecidable for full SPARQL,
//! so this module offers the next best thing: a *refutation-complete
//! sampler*. A [`Refuted`](EquivalenceResult::Refuted) verdict carries
//! a concrete distinguishing graph (sound); an
//! [`Indistinguishable`](EquivalenceResult::Indistinguishable) verdict
//! certifies agreement on a bounded-exhaustive family over the
//! patterns' own vocabulary plus random graphs.
//!
//! The evaluation function is a parameter, so the check stays in this
//! crate without depending on an engine; `owql-eval` users pass
//! `|p, g| owql_eval::evaluate(p, g)`.

use crate::analysis::{pattern_iris, triple_patterns};
use crate::mapping_set::MappingSet;
use crate::pattern::Pattern;
use crate::Mapping;
use owql_rdf::{Graph, Iri, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The relation to test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `⟦P₁⟧G = ⟦P₂⟧G`.
    Equivalent,
    /// `⟦P₁⟧G ⊑ ⟦P₂⟧G` and `⟦P₂⟧G ⊑ ⟦P₁⟧G`.
    SubsumptionEquivalent,
    /// `⟦P₁⟧G ⊆ ⟦P₂⟧G` (containment, one direction).
    Contained,
}

impl Relation {
    fn holds(self, a: &MappingSet, b: &MappingSet) -> bool {
        match self {
            Relation::Equivalent => a == b,
            Relation::SubsumptionEquivalent => a.subsumed_by(b) && b.subsumed_by(a),
            Relation::Contained => a.subset_of(b),
        }
    }
}

/// Verdict of an equivalence test.
#[derive(Clone, Debug)]
pub enum EquivalenceResult {
    /// The relation held on every tested graph.
    Indistinguishable {
        /// How many graphs were tested.
        graphs_tested: usize,
    },
    /// A concrete graph on which the relation fails.
    Refuted {
        /// The distinguishing graph.
        witness: Graph,
    },
}

impl EquivalenceResult {
    /// `true` iff no counterexample was found.
    pub fn holds(&self) -> bool {
        matches!(self, EquivalenceResult::Indistinguishable { .. })
    }
}

/// Options for [`check_relation`].
#[derive(Clone, Debug)]
pub struct EquivalenceOptions {
    /// Size of the exhaustive candidate-triple universe (cost `2^n`).
    pub universe_size: usize,
    /// Number of additional random graphs.
    pub random_graphs: usize,
    /// Triples per random graph.
    pub random_graph_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EquivalenceOptions {
    fn default() -> Self {
        EquivalenceOptions {
            universe_size: 9,
            random_graphs: 40,
            random_graph_size: 14,
            seed: 0xE0,
        }
    }
}

/// Builds the candidate triple universe from both patterns (see
/// `owql_theory::checks` for the rationale: instantiations over a tiny
/// shared value pool interact, which is where differences hide).
fn universe(p1: &Pattern, p2: &Pattern, opts: &EquivalenceOptions) -> Vec<Triple> {
    let mut value_pool: Vec<Iri> = vec![Iri::new("eq_v0"), Iri::new("eq_v1")];
    value_pool.extend(pattern_iris(p1));
    value_pool.extend(pattern_iris(p2));
    value_pool.dedup();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut out: Vec<Triple> = Vec::new();
    for t in triple_patterns(p1).into_iter().chain(triple_patterns(p2)) {
        let vars: Vec<_> = t.vars().into_iter().collect();
        let combos = value_pool.len().pow(vars.len() as u32);
        let tries = combos.min(32);
        for k in 0..tries {
            let m = if combos <= 32 {
                let mut idx = k;
                let mut m = Mapping::new();
                for &v in &vars {
                    m = m.bind(v, value_pool[idx % value_pool.len()]);
                    idx /= value_pool.len();
                }
                m
            } else {
                Mapping::from_pairs(
                    vars.iter()
                        .map(|&v| (v, value_pool[rng.gen_range(0..value_pool.len())])),
                )
            };
            if let Some(triple) = t.instantiate(&m) {
                if !out.contains(&triple) {
                    out.push(triple);
                }
            }
        }
    }
    for i in (1..out.len()).rev() {
        out.swap(i, rng.gen_range(0..=i));
    }
    out.truncate(opts.universe_size.min(14));
    out
}

/// Tests `relation` between `p1` and `p2` on a bounded-exhaustive plus
/// randomized graph family, using the supplied evaluator.
pub fn check_relation(
    p1: &Pattern,
    p2: &Pattern,
    relation: Relation,
    eval: &impl Fn(&Pattern, &Graph) -> MappingSet,
    opts: &EquivalenceOptions,
) -> EquivalenceResult {
    let uni = universe(p1, p2, opts);
    let mut tested = 0usize;
    // Exhaustive phase over the universe's power set.
    for mask in 0u32..(1u32 << uni.len()) {
        let g: Graph = uni
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect();
        tested += 1;
        if !relation.holds(&eval(p1, &g), &eval(p2, &g)) {
            return EquivalenceResult::Refuted { witness: g };
        }
    }
    // Random phase.
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xFEED);
    for _ in 0..opts.random_graphs {
        let mut g = Graph::new();
        for _ in 0..opts.random_graph_size {
            if uni.is_empty() {
                break;
            }
            g.insert(uni[rng.gen_range(0..uni.len())]);
        }
        tested += 1;
        if !relation.holds(&eval(p1, &g), &eval(p2, &g)) {
            return EquivalenceResult::Refuted { witness: g };
        }
    }
    EquivalenceResult::Indistinguishable {
        graphs_tested: tested,
    }
}

/// A small structural evaluator implementing the paper's semantics
/// directly over [`MappingSet`] — **total** on every [`Pattern`] and
/// [`crate::condition::Condition`] variant. It exists so equivalence
/// checks (and the lint crate's differential tests) have a reference
/// evaluation without a dependency cycle on `owql-eval`; when
/// performance matters, pass an engine-backed closure to
/// [`check_relation`] instead.
pub fn structural_eval(p: &Pattern, g: &Graph) -> MappingSet {
    match p {
        Pattern::Triple(t) => g
            .iter()
            .filter_map(|&triple| {
                let mut m = Mapping::new();
                for (tp, val) in t.components().into_iter().zip(triple.components()) {
                    match tp {
                        crate::pattern::TermPattern::Iri(i) => {
                            if i != val {
                                return None;
                            }
                        }
                        crate::pattern::TermPattern::Var(v) => match m.get(v) {
                            None => m = m.bind(v, val),
                            Some(x) if x == val => {}
                            Some(_) => return None,
                        },
                    }
                }
                Some(m)
            })
            .collect(),
        Pattern::And(a, b) => structural_eval(a, g).join(&structural_eval(b, g)),
        Pattern::Union(a, b) => structural_eval(a, g).union(&structural_eval(b, g)),
        Pattern::Opt(a, b) => structural_eval(a, g).left_outer_join(&structural_eval(b, g)),
        Pattern::Minus(a, b) => structural_eval(a, g).difference(&structural_eval(b, g)),
        Pattern::Filter(q, r) => structural_eval(q, g).filter(r),
        Pattern::Select(vars, q) => structural_eval(q, g).project(vars),
        Pattern::Ns(q) => structural_eval(q, g).maximal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    /// Alias kept for the test bodies below; `structural_eval` is the
    /// public, total evaluator (it used to be a test-local partial one
    /// that panicked with `unimplemented!` on OPT/MINUS/FILTER/SELECT).
    fn mini_eval(p: &Pattern, g: &Graph) -> MappingSet {
        structural_eval(p, g)
    }

    #[test]
    fn detects_equivalence_of_commuted_and() {
        let p1 = Pattern::t("?x", "a", "?y").and(Pattern::t("?y", "b", "?z"));
        let p2 = Pattern::t("?y", "b", "?z").and(Pattern::t("?x", "a", "?y"));
        let r = check_relation(
            &p1,
            &p2,
            Relation::Equivalent,
            &mini_eval,
            &EquivalenceOptions::default(),
        );
        assert!(r.holds());
    }

    #[test]
    fn refutes_distinct_patterns_with_witness() {
        let p1 = Pattern::t("?x", "a", "?y");
        let p2 = Pattern::t("?x", "b", "?y");
        match check_relation(
            &p1,
            &p2,
            Relation::Equivalent,
            &mini_eval,
            &EquivalenceOptions::default(),
        ) {
            EquivalenceResult::Refuted { witness } => {
                assert_ne!(mini_eval(&p1, &witness), mini_eval(&p2, &witness));
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn subsumption_equivalence_vs_plain() {
        // NS(t ∪ (t AND t')) vs (t ∪ (t AND t')): ≡s but not ≡.
        let t = Pattern::t("?x", "a", "b");
        let tt = t.clone().and(Pattern::t("?x", "c", "?y"));
        let union = t.clone().union(tt);
        let ns = union.clone().ns();
        assert!(check_relation(
            &union,
            &ns,
            Relation::SubsumptionEquivalent,
            &mini_eval,
            &EquivalenceOptions::default()
        )
        .holds());
        assert!(!check_relation(
            &union,
            &ns,
            Relation::Equivalent,
            &mini_eval,
            &EquivalenceOptions::default()
        )
        .holds());
    }

    #[test]
    fn containment_is_directional() {
        let small = Pattern::t("?x", "a", "b");
        let big = small.clone().union(Pattern::t("?x", "c", "?y"));
        assert!(check_relation(
            &small,
            &big,
            Relation::Contained,
            &mini_eval,
            &EquivalenceOptions::default()
        )
        .holds());
        assert!(!check_relation(
            &big,
            &small,
            Relation::Contained,
            &mini_eval,
            &EquivalenceOptions::default()
        )
        .holds());
    }

    /// Regression: the structural evaluator used to be partial and hit
    /// `unimplemented!("mini evaluator")` on OPT, MINUS, FILTER, and
    /// SELECT — reachable through any `check_relation` call on such
    /// patterns. It is now total and implements the paper's semantics.
    #[test]
    fn structural_eval_is_total_over_all_pattern_variants() {
        use crate::condition::Condition;
        use owql_rdf::graph::graph_from;

        let g = graph_from(&[("1", "a", "b"), ("1", "c", "2"), ("3", "a", "b")]);
        // OPT: left-outer-join semantics (Example 3.1's shape).
        let opt = Pattern::t("?x", "a", "b").opt(Pattern::t("?x", "c", "?y"));
        let out = structural_eval(&opt, &g);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Mapping::from_str_pairs(&[("x", "1"), ("y", "2")])));
        assert!(out.contains(&Mapping::from_str_pairs(&[("x", "3")])));
        // FILTER over the OPT keeps only the extended row.
        let filtered = opt.clone().filter(Condition::bound("y"));
        assert_eq!(structural_eval(&filtered, &g).len(), 1);
        // MINUS removes compatible rows.
        let minus = Pattern::t("?x", "a", "b").minus(Pattern::t("?x", "c", "?y"));
        let out = structural_eval(&minus, &g);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Mapping::from_str_pairs(&[("x", "3")])));
        // SELECT projects.
        let select = Pattern::t("?x", "c", "?y").select(["?y"]);
        let out = structural_eval(&select, &g);
        assert!(out.contains(&Mapping::from_str_pairs(&[("y", "2")])));
        // ...and check_relation itself now works across these variants.
        let r = check_relation(
            &opt.clone().ns(),
            &opt,
            Relation::Equivalent,
            &structural_eval,
            &EquivalenceOptions::default(),
        );
        assert!(r.holds(), "NS over well-designed OPT is the identity");
    }
}
