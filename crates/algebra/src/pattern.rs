//! The graph-pattern AST of NS–SPARQL.
//!
//! Section 2.1 defines SPARQL graph patterns over triple patterns with
//! the operators `AND`, `UNION`, `OPT`, `FILTER`, `SELECT`; Section 5.1
//! extends them with the paper's new **NS** ("not subsumed") operator.
//! Appendix D additionally uses a derived `MINUS` operator, which we
//! carry as an explicit AST node together with its desugaring into
//! `OPT`/`FILTER` (see [`Pattern::desugar_minus`]).

use crate::condition::Condition;
use crate::variable::Variable;
use owql_rdf::{Iri, Triple};
use std::collections::BTreeSet;

/// A position of a triple pattern: either an IRI or a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermPattern {
    /// A constant IRI.
    Iri(Iri),
    /// A variable.
    Var(Variable),
}

impl TermPattern {
    /// Parses `"?X"` as a variable and anything else as an IRI.
    pub fn parse(text: &str) -> TermPattern {
        if let Some(name) = text.strip_prefix('?') {
            TermPattern::Var(Variable::new(name))
        } else {
            TermPattern::Iri(Iri::new(text))
        }
    }

    /// The variable, if this is a variable position.
    pub fn as_var(self) -> Option<Variable> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Iri(_) => None,
        }
    }

    /// The IRI, if this is a constant position.
    pub fn as_iri(self) -> Option<Iri> {
        match self {
            TermPattern::Iri(i) => Some(i),
            TermPattern::Var(_) => None,
        }
    }

    /// `true` iff this position is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

impl From<Iri> for TermPattern {
    fn from(i: Iri) -> Self {
        TermPattern::Iri(i)
    }
}

impl From<Variable> for TermPattern {
    fn from(v: Variable) -> Self {
        TermPattern::Var(v)
    }
}

impl From<&str> for TermPattern {
    fn from(text: &str) -> Self {
        TermPattern::parse(text)
    }
}

/// A triple pattern `t ∈ (I ∪ V) × (I ∪ V) × (I ∪ V)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPattern,
    /// Predicate position.
    pub p: TermPattern,
    /// Object position.
    pub o: TermPattern,
}

impl TriplePattern {
    /// Builds a triple pattern; string positions starting with `?` become
    /// variables.
    pub fn new(
        s: impl Into<TermPattern>,
        p: impl Into<TermPattern>,
        o: impl Into<TermPattern>,
    ) -> Self {
        TriplePattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// The three positions as an array.
    pub fn components(self) -> [TermPattern; 3] {
        [self.s, self.p, self.o]
    }

    /// `var(t)`: the variables of the triple pattern, sorted.
    pub fn vars(self) -> BTreeSet<Variable> {
        self.components()
            .into_iter()
            .filter_map(TermPattern::as_var)
            .collect()
    }

    /// The IRIs mentioned in the triple pattern, sorted.
    pub fn iris(self) -> BTreeSet<Iri> {
        self.components()
            .into_iter()
            .filter_map(TermPattern::as_iri)
            .collect()
    }

    /// `true` iff all three positions are variables — the "variable-only"
    /// triple patterns excluded by Lemma G.2.
    pub fn is_variable_only(self) -> bool {
        self.components().into_iter().all(TermPattern::is_var)
    }

    /// Instantiates the pattern under `µ`; `None` if some variable is
    /// unbound (`var(t) ⊄ dom(µ)`).
    pub fn instantiate(self, m: &crate::mapping::Mapping) -> Option<Triple> {
        let resolve = |tp: TermPattern| match tp {
            TermPattern::Iri(i) => Some(i),
            TermPattern::Var(v) => m.get(v),
        };
        Some(Triple {
            s: resolve(self.s)?,
            p: resolve(self.p)?,
            o: resolve(self.o)?,
        })
    }

    /// Renames variables according to `f`.
    pub fn rename_vars(self, f: &impl Fn(Variable) -> Variable) -> TriplePattern {
        let map = |tp: TermPattern| match tp {
            TermPattern::Var(v) => TermPattern::Var(f(v)),
            c => c,
        };
        TriplePattern {
            s: map(self.s),
            p: map(self.p),
            o: map(self.o),
        }
    }
}

/// Convenience constructor: `tp("?x", "founder", "?y")`.
pub fn tp(
    s: impl Into<TermPattern>,
    p: impl Into<TermPattern>,
    o: impl Into<TermPattern>,
) -> TriplePattern {
    TriplePattern::new(s, p, o)
}

/// An NS–SPARQL graph pattern.
///
/// The recursive grammar of Sections 2.1 and 5.1:
///
/// * a triple pattern is a graph pattern;
/// * `(P₁ AND P₂)`, `(P₁ UNION P₂)`, `(P₁ OPT P₂)` are graph patterns;
/// * `(SELECT V WHERE P)` and `(P FILTER R)` are graph patterns;
/// * `NS(P)` is a graph pattern (Section 5.1);
/// * `(P₁ MINUS P₂)` is a *derived* graph pattern (Appendix D) with
///   direct semantics `Ω₁ ∖ Ω₂`; [`Pattern::desugar_minus`] removes it.
///
/// Patterns are built with the fluent combinators:
///
/// ```
/// use owql_algebra::pattern::{tp, Pattern};
/// // (?o, stands_for, sharing_rights) AND
/// //   ((?p, founder, ?o) UNION (?p, supporter, ?o))   — Example 2.2
/// let p = Pattern::triple(tp("?o", "stands_for", "sharing_rights"))
///     .and(Pattern::triple(tp("?p", "founder", "?o"))
///         .union(Pattern::triple(tp("?p", "supporter", "?o"))))
///     .select(["?p"]);
/// assert_eq!(p.to_string(),
///     "(SELECT {?p} WHERE ((?o, stands_for, sharing_rights) AND ((?p, founder, ?o) UNION (?p, supporter, ?o))))");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `(P₁ AND P₂)` — join.
    And(Box<Pattern>, Box<Pattern>),
    /// `(P₁ UNION P₂)` — union.
    Union(Box<Pattern>, Box<Pattern>),
    /// `(P₁ OPT P₂)` — left-outer-join (optional information).
    Opt(Box<Pattern>, Box<Pattern>),
    /// `(P FILTER R)` — selection.
    Filter(Box<Pattern>, Condition),
    /// `(SELECT V WHERE P)` — projection onto `V`.
    Select(BTreeSet<Variable>, Box<Pattern>),
    /// `NS(P)` — only the subsumption-maximal answers (Section 5.1).
    Ns(Box<Pattern>),
    /// `(P₁ MINUS P₂)` — derived difference operator (Appendix D).
    Minus(Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// The surface-syntax name of this node's operator (`"TRIPLE"`,
    /// `"AND"`, `"UNION"`, `"OPT"`, `"FILTER"`, `"SELECT"`, `"NS"`,
    /// `"MINUS"`) — the node-kind tag the observability layer
    /// (`owql-obs`) and the plan annotator key per-operator metrics on.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Pattern::Triple(_) => "TRIPLE",
            Pattern::And(..) => "AND",
            Pattern::Union(..) => "UNION",
            Pattern::Opt(..) => "OPT",
            Pattern::Filter(..) => "FILTER",
            Pattern::Select(..) => "SELECT",
            Pattern::Ns(_) => "NS",
            Pattern::Minus(..) => "MINUS",
        }
    }

    /// Wraps a triple pattern.
    pub fn triple(t: TriplePattern) -> Pattern {
        Pattern::Triple(t)
    }

    /// Shorthand: `Pattern::t("?x", "p", "?y")`.
    pub fn t(
        s: impl Into<TermPattern>,
        p: impl Into<TermPattern>,
        o: impl Into<TermPattern>,
    ) -> Pattern {
        Pattern::Triple(tp(s, p, o))
    }

    /// `(self AND other)`.
    pub fn and(self, other: Pattern) -> Pattern {
        Pattern::And(Box::new(self), Box::new(other))
    }

    /// `(self UNION other)`.
    pub fn union(self, other: Pattern) -> Pattern {
        Pattern::Union(Box::new(self), Box::new(other))
    }

    /// `(self OPT other)`.
    pub fn opt(self, other: Pattern) -> Pattern {
        Pattern::Opt(Box::new(self), Box::new(other))
    }

    /// `(self FILTER cond)`.
    pub fn filter(self, cond: Condition) -> Pattern {
        Pattern::Filter(Box::new(self), cond)
    }

    /// `(SELECT vars WHERE self)`.
    pub fn select<V: Into<Variable>>(self, vars: impl IntoIterator<Item = V>) -> Pattern {
        Pattern::Select(vars.into_iter().map(Into::into).collect(), Box::new(self))
    }

    /// `NS(self)`.
    pub fn ns(self) -> Pattern {
        Pattern::Ns(Box::new(self))
    }

    /// `(self MINUS other)`.
    pub fn minus(self, other: Pattern) -> Pattern {
        Pattern::Minus(Box::new(self), Box::new(other))
    }

    /// Conjunction of patterns, left-associated. Panics on empty input.
    pub fn and_all(ps: impl IntoIterator<Item = Pattern>) -> Pattern {
        ps.into_iter()
            .reduce(Pattern::and)
            .expect("and_all of empty iterator")
    }

    /// Union of patterns, left-associated. Panics on empty input.
    pub fn union_all(ps: impl IntoIterator<Item = Pattern>) -> Pattern {
        ps.into_iter()
            .reduce(Pattern::union)
            .expect("union_all of empty iterator")
    }

    /// The top-level disjuncts of a (possibly nested) `UNION` spine.
    ///
    /// `((A UNION B) UNION C)` yields `[A, B, C]`; a non-union pattern
    /// yields itself.
    pub fn disjuncts(&self) -> Vec<&Pattern> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pattern, out: &mut Vec<&'a Pattern>) {
            match p {
                Pattern::Union(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Renames every variable occurrence (including `SELECT` sets and
    /// filter conditions) according to `f`.
    ///
    /// Used by the renaming constructions of Appendices E and F; `f`
    /// must be injective on the variables of the pattern for the result
    /// to be a faithful renaming.
    pub fn rename_vars(&self, f: &impl Fn(Variable) -> Variable) -> Pattern {
        match self {
            Pattern::Triple(t) => Pattern::Triple(t.rename_vars(f)),
            Pattern::And(a, b) => a.rename_vars(f).and(b.rename_vars(f)),
            Pattern::Union(a, b) => a.rename_vars(f).union(b.rename_vars(f)),
            Pattern::Opt(a, b) => a.rename_vars(f).opt(b.rename_vars(f)),
            Pattern::Filter(p, r) => p.rename_vars(f).filter(r.rename_vars(f)),
            Pattern::Select(vs, p) => Pattern::Select(
                vs.iter().map(|&v| f(v)).collect(),
                Box::new(p.rename_vars(f)),
            ),
            Pattern::Ns(p) => p.rename_vars(f).ns(),
            Pattern::Minus(a, b) => a.rename_vars(f).minus(b.rename_vars(f)),
        }
    }

    /// Structural size (number of AST nodes, counting each triple
    /// pattern and condition node as 1) — the measure used by the
    /// NS-elimination blowup experiment (E7).
    pub fn size(&self) -> usize {
        match self {
            Pattern::Triple(_) => 1,
            Pattern::And(a, b)
            | Pattern::Union(a, b)
            | Pattern::Opt(a, b)
            | Pattern::Minus(a, b) => 1 + a.size() + b.size(),
            Pattern::Filter(p, r) => 1 + p.size() + r.size(),
            Pattern::Select(_, p) | Pattern::Ns(p) => 1 + p.size(),
        }
    }

    /// Replaces every `MINUS` node by its Appendix-D desugaring
    ///
    /// ```text
    /// P₁ MINUS P₂ = (P₁ OPT (P₂ AND (?x₁, ?x₂, ?x₃))) FILTER ¬bound(?x₁)
    /// ```
    ///
    /// with `?x₁ ?x₂ ?x₃` fresh. The result is a core SPARQL (or
    /// NS–SPARQL) pattern with identical semantics on every graph.
    pub fn desugar_minus(&self) -> Pattern {
        let mut counter = 0usize;
        self.desugar_minus_inner(&mut counter)
    }

    fn desugar_minus_inner(&self, counter: &mut usize) -> Pattern {
        match self {
            Pattern::Triple(t) => Pattern::Triple(*t),
            Pattern::And(a, b) => a
                .desugar_minus_inner(counter)
                .and(b.desugar_minus_inner(counter)),
            Pattern::Union(a, b) => a
                .desugar_minus_inner(counter)
                .union(b.desugar_minus_inner(counter)),
            Pattern::Opt(a, b) => a
                .desugar_minus_inner(counter)
                .opt(b.desugar_minus_inner(counter)),
            Pattern::Filter(p, r) => p.desugar_minus_inner(counter).filter(r.clone()),
            Pattern::Select(vs, p) => {
                Pattern::Select(vs.clone(), Box::new(p.desugar_minus_inner(counter)))
            }
            Pattern::Ns(p) => p.desugar_minus_inner(counter).ns(),
            Pattern::Minus(a, b) => {
                let a = a.desugar_minus_inner(counter);
                let b = b.desugar_minus_inner(counter);
                // Fresh variables not clashing with anything in the whole
                // pattern: a reserved namespace plus a counter.
                let id = *counter;
                *counter += 1;
                let x1 = Variable::new(&format!("__minus_{id}_1"));
                let x2 = Variable::new(&format!("__minus_{id}_2"));
                let x3 = Variable::new(&format!("__minus_{id}_3"));
                a.opt(b.and(Pattern::Triple(tp(x1, x2, x3))))
                    .filter(Condition::Bound(x1).not())
            }
        }
    }

    /// `true` iff the pattern contains an NS node.
    pub fn contains_ns(&self) -> bool {
        match self {
            Pattern::Ns(_) => true,
            Pattern::Triple(_) => false,
            Pattern::And(a, b)
            | Pattern::Union(a, b)
            | Pattern::Opt(a, b)
            | Pattern::Minus(a, b) => a.contains_ns() || b.contains_ns(),
            Pattern::Filter(p, _) | Pattern::Select(_, p) => p.contains_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;

    #[test]
    fn term_pattern_parsing() {
        assert_eq!(
            TermPattern::parse("?X"),
            TermPattern::Var(Variable::new("X"))
        );
        assert_eq!(TermPattern::parse("abc"), TermPattern::Iri(Iri::new("abc")));
        assert!(TermPattern::parse("?X").is_var());
        assert_eq!(TermPattern::parse("abc").as_iri(), Some(Iri::new("abc")));
        assert_eq!(TermPattern::parse("abc").as_var(), None);
    }

    #[test]
    fn triple_pattern_vars_and_iris() {
        let t = tp("?x", "founder", "?y");
        let vars: Vec<String> = t.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["?x", "?y"]);
        let iris: Vec<&str> = t.iris().iter().map(|i| i.as_str()).collect();
        assert_eq!(iris, vec!["founder"]);
        assert!(!t.is_variable_only());
        assert!(tp("?a", "?b", "?c").is_variable_only());
    }

    #[test]
    fn instantiation() {
        let t = tp("?x", "founder", "TPB");
        let m = Mapping::from_str_pairs(&[("x", "Peter")]);
        assert_eq!(
            t.instantiate(&m),
            Some(Triple::new("Peter", "founder", "TPB"))
        );
        assert_eq!(t.instantiate(&Mapping::new()), None);
    }

    #[test]
    fn builders_compose() {
        let p = Pattern::t("?x", "a", "b")
            .and(Pattern::t("?x", "c", "?y"))
            .opt(Pattern::t("?y", "d", "?z"))
            .filter(Condition::bound("x"))
            .select(["?x", "?z"])
            .ns();
        assert!(matches!(p, Pattern::Ns(_)));
        // 3 triples + AND + OPT + FILTER node + condition + SELECT + NS = 9
        assert_eq!(p.size(), 9);
    }

    #[test]
    fn disjuncts_flatten_union_spine() {
        let p = Pattern::union_all(vec![
            Pattern::t("a", "b", "c"),
            Pattern::t("d", "e", "f"),
            Pattern::t("g", "h", "i"),
        ]);
        assert_eq!(p.disjuncts().len(), 3);
        assert_eq!(Pattern::t("a", "b", "c").disjuncts().len(), 1);
    }

    #[test]
    fn rename_vars_covers_all_operators() {
        let p = Pattern::t("?a", "p", "?b")
            .filter(Condition::eq_var("a", "b"))
            .select(["?a"])
            .ns()
            .minus(Pattern::t("?a", "q", "?c"));
        let renamed = p.rename_vars(&|v| Variable::new(&format!("{}x", v.name())));
        let expected = Pattern::t("?ax", "p", "?bx")
            .filter(Condition::eq_var("ax", "bx"))
            .select(["?ax"])
            .ns()
            .minus(Pattern::t("?ax", "q", "?cx"));
        assert_eq!(renamed, expected);
    }

    #[test]
    fn desugar_minus_removes_all_minus_nodes() {
        let p = Pattern::t("?a", "p", "?b")
            .minus(Pattern::t("?a", "q", "?c"))
            .minus(Pattern::t("?a", "r", "?d"));
        let d = p.desugar_minus();
        fn has_minus(p: &Pattern) -> bool {
            match p {
                Pattern::Minus(..) => true,
                Pattern::Triple(_) => false,
                Pattern::And(a, b) | Pattern::Union(a, b) | Pattern::Opt(a, b) => {
                    has_minus(a) || has_minus(b)
                }
                Pattern::Filter(q, _) | Pattern::Select(_, q) | Pattern::Ns(q) => has_minus(q),
            }
        }
        assert!(!has_minus(&d));
        // Two MINUS nodes desugared with distinct fresh variables.
        assert!(d.size() > p.size());
    }

    #[test]
    fn contains_ns_detection() {
        assert!(Pattern::t("a", "b", "c").ns().contains_ns());
        assert!(!Pattern::t("a", "b", "c").contains_ns());
        assert!(Pattern::t("a", "b", "c")
            .and(Pattern::t("d", "e", "f").ns())
            .contains_ns());
    }

    #[test]
    #[should_panic(expected = "and_all of empty")]
    fn and_all_empty_panics() {
        Pattern::and_all(vec![]);
    }
}
